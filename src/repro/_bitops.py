"""Packed-bit primitives shared across the library.

All NVM contents in this reproduction are represented as numpy ``uint8``
arrays of *packed* bytes (8 bits per element).  This module provides the
vectorised bit-level operations that the NVM simulator, the write schemes,
and the featurizers are built on:

* population count (number of set bits) of packed byte arrays, both as
  a scalar total and per row of a matrix (the batch write pipeline),
* Hamming distance between equal-length byte buffers, scalar and
  row-wise,
* packing/unpacking between byte buffers and 0/1 bit vectors,
* circular bit rotation of a packed buffer (used by MinShift),
* integer <-> fixed-width byte-buffer conversion helpers.

The popcount of a byte array uses a precomputed 256-entry table, which is
the standard trick for vectorised popcounts in numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "POPCOUNT_TABLE",
    "popcount",
    "popcount_rows",
    "hamming_distance",
    "hamming_rows",
    "hamming_to_rows",
    "hamming_cross",
    "pack_bits",
    "unpack_bits",
    "rotate_bits",
    "bytes_to_array",
    "array_to_bytes",
    "int_to_buffer",
    "buffer_to_int",
]

#: Number of set bits for every possible byte value.
POPCOUNT_TABLE: np.ndarray = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.uint16)


def popcount(buf: np.ndarray) -> int:
    """Total number of set bits in a packed ``uint8`` array.

    Works on arrays of any shape; the count is over all elements.
    """
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    return int(POPCOUNT_TABLE[buf].sum())


def popcount_rows(buf: np.ndarray) -> np.ndarray:
    """Per-row popcount of a 2-D packed ``uint8`` array.

    Returns an ``int64`` vector with one count per row.
    """
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    if buf.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {buf.shape}")
    return POPCOUNT_TABLE[buf].sum(axis=1).astype(np.int64)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance (number of differing bits) between packed buffers.

    ``a`` and ``b`` must have the same shape.
    """
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return popcount(np.bitwise_xor(a, b))


def hamming_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row Hamming distance between two packed ``(n, width)`` matrices.

    Row ``i`` of the result is ``hamming_distance(a[i], b[i])`` — the
    row-wise sibling of :func:`hamming_distance`.  (Callers that already
    hold the XOR mask should use :func:`popcount_rows` directly, as the
    multi-row write path does.)
    """
    a = np.ascontiguousarray(a, dtype=np.uint8)
    b = np.ascontiguousarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim != 2:
        raise ValueError(f"expected 2-D arrays, got shape {a.shape}")
    return popcount_rows(np.bitwise_xor(a, b))


#: Whether this numpy ships the hardware-popcount ufunc (numpy >= 2.0).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _as_words(buf: np.ndarray) -> np.ndarray:
    """Reinterpret packed rows as ``uint64`` words when the layout allows.

    A row width that is a multiple of 8 bytes on a C-contiguous buffer can
    be viewed as 64-bit words, cutting the element count of a popcount
    kernel by 8x.  Falls back to the ``uint8`` buffer otherwise (including
    platforms/slices where the reinterpretation is rejected).
    """
    if buf.shape[-1] % 8 == 0 and buf.flags.c_contiguous:
        try:
            return buf.view(np.uint64)
        except ValueError:  # pragma: no cover - exotic strides/alignment
            pass
    return buf


def hamming_to_rows(rows: np.ndarray, payload: np.ndarray) -> np.ndarray:
    """Hamming distance of one packed payload to each row of a matrix.

    The probe engine's scoring kernel: ``rows`` is an ``(n, width)``
    packed ``uint8`` matrix (a contiguous content-cache window) and
    ``payload`` a ``(width,)`` packed buffer.  Exact integer popcounts —
    the result equals ``popcount_rows(rows ^ payload)`` element for
    element — computed with the hardware popcount ufunc over 64-bit words
    when this numpy provides it.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    payload = np.ascontiguousarray(payload, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D row matrix, got shape {rows.shape}")
    if payload.shape != (rows.shape[1],):
        raise ValueError(
            f"payload shape {payload.shape} does not match row width "
            f"({rows.shape[1]},)"
        )
    if not _HAS_BITWISE_COUNT:  # pragma: no cover - numpy < 2.0 fallback
        return popcount_rows(np.bitwise_xor(rows, payload))
    r = _as_words(rows)
    p = _as_words(payload)
    if r.dtype != p.dtype:  # one view succeeded, the other did not
        r, p = rows, payload  # pragma: no cover - defensive
    return np.bitwise_count(np.bitwise_xor(r, p)).sum(axis=1, dtype=np.int64)


def hamming_cross(rows: np.ndarray, payloads: np.ndarray) -> np.ndarray:
    """All-pairs Hamming distances between payloads and rows.

    ``rows`` is ``(n, width)`` and ``payloads`` ``(m, width)``; the result
    is an ``(m, n)`` ``int32`` matrix with ``out[j, i] =
    hamming_distance(payloads[j], rows[i])`` — the cluster-grouped probe
    scoring of the batch pop path.  Callers bound the ``m * n * width``
    intermediate by chunking over payload rows.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    payloads = np.ascontiguousarray(payloads, dtype=np.uint8)
    if rows.ndim != 2 or payloads.ndim != 2:
        raise ValueError(
            f"expected 2-D matrices, got {rows.shape} and {payloads.shape}"
        )
    if rows.shape[1] != payloads.shape[1]:
        raise ValueError(
            f"row width mismatch: {rows.shape[1]} vs {payloads.shape[1]}"
        )
    r = _as_words(rows)
    p = _as_words(payloads)
    if r.dtype != p.dtype:  # pragma: no cover - defensive
        r, p = rows, payloads
    xor = np.bitwise_xor(r[None, :, :], p[:, None, :])
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(xor).sum(axis=2, dtype=np.int32)
    return (  # pragma: no cover - numpy < 2.0 fallback
        POPCOUNT_TABLE[xor.view(np.uint8).reshape(*xor.shape[:2], -1)]
        .sum(axis=2)
        .astype(np.int32)
    )


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 bit vector (or matrix, row-wise) into ``uint8`` bytes.

    The bit length must be a multiple of 8.  Bit 0 of the vector becomes
    the most-significant bit of byte 0 (numpy ``packbits`` convention).
    """
    bits = np.asarray(bits)
    if bits.shape[-1] % 8 != 0:
        raise ValueError(f"bit length {bits.shape[-1]} is not a multiple of 8")
    return np.packbits(bits.astype(np.uint8), axis=-1)


def unpack_bits(buf: np.ndarray) -> np.ndarray:
    """Unpack packed ``uint8`` bytes into a 0/1 bit vector (row-wise)."""
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    return np.unpackbits(buf, axis=-1)


def rotate_bits(buf: np.ndarray, shift: int) -> np.ndarray:
    """Circularly rotate a packed buffer *left* by ``shift`` bit positions.

    A positive shift moves each bit toward lower bit indices (the bit at
    position ``shift`` moves to position 0), matching ``np.roll`` with a
    negative offset on the unpacked representation.
    """
    buf = np.ascontiguousarray(buf, dtype=np.uint8)
    nbits = buf.size * 8
    if nbits == 0:
        return buf.copy()
    shift %= nbits
    if shift == 0:
        return buf.copy()
    bits = np.unpackbits(buf)
    return np.packbits(np.roll(bits, -shift))


def bytes_to_array(data: bytes, size: int | None = None) -> np.ndarray:
    """Convert ``bytes`` to a ``uint8`` array, optionally zero-padded.

    If ``size`` is given, the result is exactly ``size`` bytes: shorter
    inputs are right-padded with zeros and longer inputs raise
    ``ValueError`` (silently truncating stored values would corrupt data).
    """
    arr = np.frombuffer(data, dtype=np.uint8)
    if size is None:
        return arr.copy()
    if arr.size > size:
        raise ValueError(f"value of {arr.size} bytes exceeds bucket size {size}")
    if arr.size == size:
        return arr.copy()
    out = np.zeros(size, dtype=np.uint8)
    out[: arr.size] = arr
    return out


def array_to_bytes(arr: np.ndarray) -> bytes:
    """Convert a ``uint8`` array back to ``bytes``."""
    return np.ascontiguousarray(arr, dtype=np.uint8).tobytes()


def int_to_buffer(value: int, nbytes: int) -> np.ndarray:
    """Encode a non-negative integer as a big-endian fixed-width buffer."""
    if value < 0:
        raise ValueError("only non-negative integers can be encoded")
    return bytes_to_array(int(value).to_bytes(nbytes, "big"), nbytes)


def buffer_to_int(buf: np.ndarray) -> int:
    """Decode a big-endian fixed-width buffer back to an integer."""
    return int.from_bytes(array_to_bytes(buf), "big")

"""Configuration for the PNW key/value store."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["PNWConfig"]


@dataclass(frozen=True)
class PNWConfig:
    """All tunables of a :class:`~repro.core.store.PNWStore`.

    The defaults mirror the paper's evaluation setup where it states one
    (k from the Fig. 6 sweeps, 4-byte words, 64-byte cache lines, load
    factor-driven retraining) and sensible engineering choices elsewhere.

    Parameters
    ----------
    num_buckets:
        Capacity of the NVM data zone, in values.
    value_bytes:
        Fixed size of stored values.
    key_bytes:
        Fixed key width; keys are zero-padded.  Each bucket stores
        ``key_bytes + value_bytes`` (the K/V pair, §V-A).
    n_clusters:
        K for the k-means model.
    index_placement:
        ``"dram"`` (Fig. 2a — wear-free, rebuilt on recovery) or
        ``"nvm"`` (Fig. 2b — persistent path hashing, wear accounted).
    featurizer:
        ``"bit"`` — one feature per bit (exact Hamming geometry, right for
        small values); ``"byte"`` — one feature per byte (cheap for large
        values); ``"auto"`` — bit up to 128-byte buckets, byte above.
    pca_components:
        Project features with PCA before clustering (``None`` disables).
        The paper applies PCA for large values such as 4 KB pages.
    update_mode:
        ``"endurance"`` — UPDATE = DELETE + steered PUT (paper's choice);
        ``"latency"`` — UPDATE writes in place through the index.
    load_factor:
        When the live fraction of the zone exceeds this, the model manager
        schedules a retrain (§V-C).
    auto_train_fraction:
        Live fraction that triggers the *first* training of a store that
        started empty (a store warmed with ``warm_up`` trains immediately).
    retrain_check_interval:
        How many mutations between load-factor checks.
    refresh_mode:
        How a retrain triggered on an already-trained store refreshes
        the model.  ``"full"`` (the paper's Algorithm 1) refits the
        featurizer and K-Means from scratch; ``"incremental"`` keeps the
        fitted featurizer and nudges the existing centroids with
        mini-batch K-Means (``MiniBatchKMeans.partial_fit``, §V-C's
        retraining made incremental), which never changes ``n_clusters``
        — so the pool rebuild stays consistent — and avoids stalling the
        write path on a full refit.  The *first* training (and crash
        recovery) is always full.
    refresh_batch_size:
        Mini-batch size of one incremental refresh pass over the zone.
    probe_limit:
        Free-list candidates scored per PUT to find the minimum-Hamming
        target within the predicted cluster (§IV).  ``0`` degrades to a
        plain FIFO pop (Algorithm 2's simplified pseudocode); ``-1``
        scores the whole free list.
    n_init, max_iter:
        K-means restart count and Lloyd iteration cap.
    seed:
        Seed for every stochastic component.
    word_bytes, cacheline_bytes:
        Accounting granularities of the simulated device.
    track_bit_wear:
        Enable per-bit wear counters (Fig. 13).
    persist_flags:
        Keep the per-bucket validity bitmap on NVM so a DRAM-index store
        can :meth:`recover` after a crash.  The paper's Fig. 2a
        architecture keeps flags with the DRAM index (no NVM cost, no
        crash recovery); set ``False`` to reproduce that exactly.
    shards:
        Hash-partition the key space over this many independent zones,
        each with its own model, pool, index, and flag bitmap.  ``1``
        (the default) is the paper's single-zone store.  The field is
        consumed by :func:`repro.shard.make_store` /
        :class:`repro.shard.ShardedPNWStore`, which split ``num_buckets``
        across the shards; a plain :class:`PNWStore` ignores it.
    executor:
        How :class:`repro.shard.ShardedPNWStore` runs its shards:
        ``"thread"`` (the default — per-shard stores in-process, batched
        through a thread pool) or ``"process"`` (one long-lived worker
        process per shard over shared-memory zones, escaping the GIL for
        real multi-core scaling).  Byte-identity contract: both executors
        produce identical store state and reports.  A plain
        :class:`PNWStore` ignores it.
    tier_mode:
        DRAM tier policy, consumed by :func:`repro.shard.make_store`:
        ``"off"`` (no tier — the bare store), ``"write_through"`` (read
        cache only; durable state byte-identical to no tier),
        ``"write_back"`` (every mutation staged in DRAM and flushed in
        coalesced batches), or ``"predictive"`` (per-op longevity
        routing via :class:`repro.tier.LongevityClassifier`).  The
        store classes themselves ignore it; the wrapping lives in
        :class:`repro.tier.TieredStore`.
    tier_cache_entries:
        Capacity of the tier's DRAM read cache, in entries (0 disables
        the read cache).
    tier_writeback_entries:
        Global bound on dirty write-back entries across all shards —
        both the per-shard buffer sizing and the pressure flush
        trigger, and therefore the maximum data lost to a crash.
    tier_flush_ops:
        Interval flush trigger: a dirty entry older than this many tier
        mutations is flushed even if no size/pressure trigger fired.
    media_fault_rate:
        Fraction of the zone's data-cell *bits* that are wear-weakened
        (``0.0`` — the default — disables the media fault model
        entirely; the store is byte-identical to one without it).  Each
        weakened cell draws an endurance budget of remaining successful
        flips from the seeded :class:`~repro.nvm.faults.FaultModel`; a
        flip attempted past the budget fails and the cell becomes
        stuck-at its current value.  Requires ``seed`` so the faulty
        cell set is deterministic (and reproducible by a respawned
        process worker).
    media_fault_budget:
        Upper bound of the per-cell endurance budget draw
        (``rng.integers(0, budget + 1)``).  ``0`` means every weakened
        cell starts depleted — the first flip attempt sticks it — which
        is the acceptance-test configuration.
    media_verify:
        Read-back-verify every commit-stage write and relocate ops that
        landed on stuck bits (retiring the faulty row).  On by default;
        turn off only for ablation benchmarks that want to *measure*
        silent corruption.
    media_retire_watermark:
        Fraction of ``num_buckets`` whose retirement flips the store
        into degraded mode: further ``put``/``update`` batches are shed
        with :class:`~repro.errors.DegradedModeError` (reads and
        deletes still served) so a worn zone fails loudly instead of
        thrashing the last few healthy rows.
    rebalance_mode:
        Load-aware routing on the sharded store.  ``"off"`` (default)
        pins the virtual-bucket table to its FNV-default layout — the
        store is bit-identical to pure ``hash % n_shards`` routing.
        ``"watermark"`` arms the
        :class:`~repro.shard.rebalance.Rebalancer`: when any shard's
        free pool fraction falls under ``rebalance_low_watermark``
        while a meaningfully freer sibling exists, whole virtual
        buckets of keys are migrated between zones through the ordinary
        engine batch pipeline.  A plain :class:`PNWStore` ignores it.
    rebalance_policy:
        Which bucket-move planner a rebalance pass runs: ``"greedy"``
        (repeated best-single-move local search minimizing the maximum
        fractional shard load, warm-started from the current table) or
        ``"hot_bucket"`` (move only the single hottest bucket off the
        most loaded shard per pass).
    router_vbuckets:
        Virtual buckets *per shard* in the routing table (the universe
        is ``router_vbuckets * shards``).  More buckets mean finer
        migration granularity at the cost of a larger table.
    rebalance_low_watermark:
        Free-pool fraction under which a shard is considered starved:
        a rebalance pass triggers when the minimum per-shard free
        fraction drops below this while the max-min spread exceeds it
        too (i.e. a move can actually help).
    rebalance_check_interval:
        Mutations between watermark checks (checked batch-wise at the
        sharded store's entry points and the ingest dispatch path).
    rebalance_max_keys:
        Keys per migration batch: a bucket's keys are copied (and later
        deleted from the donor) in engine-stage batches of at most this
        many, bounding what one mid-migration crash can leave behind.
    rebalance_wear_factor:
        Optional wear trigger: ``> 0`` additionally fires a rebalance
        pass when the max/min per-shard mean-wear ratio exceeds this
        factor, and breaks recipient ties toward the least-worn shard
        (the SoftWear-style wear-leveling flavour of the same move).
        ``0`` (default) leaves occupancy as the only trigger.
    """

    num_buckets: int
    value_bytes: int
    key_bytes: int = 8
    n_clusters: int = 8
    index_placement: str = "dram"
    featurizer: str = "auto"
    pca_components: int | None = None
    update_mode: str = "endurance"
    load_factor: float = 0.9
    auto_train_fraction: float = 0.1
    retrain_check_interval: int = 128
    refresh_mode: str = "full"
    refresh_batch_size: int = 256
    probe_limit: int = 64
    n_init: int = 2
    max_iter: int = 50
    seed: int | None = None
    word_bytes: int = 4
    cacheline_bytes: int = 64
    track_bit_wear: bool = False
    persist_flags: bool = True
    shards: int = 1
    executor: str = "thread"
    kmeans_jobs: int = field(default=1)
    tier_mode: str = "off"
    tier_cache_entries: int = 1024
    tier_writeback_entries: int = 256
    tier_flush_ops: int = 1024
    media_fault_rate: float = 0.0
    media_fault_budget: int = 0
    media_verify: bool = True
    media_retire_watermark: float = 0.05
    rebalance_mode: str = "off"
    rebalance_policy: str = "greedy"
    router_vbuckets: int = 64
    rebalance_low_watermark: float = 0.2
    rebalance_check_interval: int = 32
    rebalance_max_keys: int = 256
    rebalance_wear_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.num_buckets <= 0:
            raise ConfigError(f"num_buckets must be positive, got {self.num_buckets}")
        if self.value_bytes <= 0:
            raise ConfigError(f"value_bytes must be positive, got {self.value_bytes}")
        if self.key_bytes <= 0:
            raise ConfigError(f"key_bytes must be positive, got {self.key_bytes}")
        if self.n_clusters < 1:
            raise ConfigError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.index_placement not in ("dram", "nvm"):
            raise ConfigError(
                f"index_placement must be 'dram' or 'nvm', got {self.index_placement!r}"
            )
        if self.featurizer not in ("auto", "bit", "byte"):
            raise ConfigError(
                f"featurizer must be 'auto', 'bit' or 'byte', got {self.featurizer!r}"
            )
        if self.update_mode not in ("endurance", "latency"):
            raise ConfigError(
                f"update_mode must be 'endurance' or 'latency', got {self.update_mode!r}"
            )
        if not 0.0 < self.load_factor <= 1.0:
            raise ConfigError(f"load_factor must be in (0, 1], got {self.load_factor}")
        if not 0.0 <= self.auto_train_fraction <= 1.0:
            raise ConfigError(
                f"auto_train_fraction must be in [0, 1], got {self.auto_train_fraction}"
            )
        if self.refresh_mode not in ("full", "incremental"):
            raise ConfigError(
                f"refresh_mode must be 'full' or 'incremental', "
                f"got {self.refresh_mode!r}"
            )
        if self.refresh_batch_size < 1:
            raise ConfigError(
                f"refresh_batch_size must be >= 1, got {self.refresh_batch_size}"
            )
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.shards > self.num_buckets:
            raise ConfigError(
                f"shards={self.shards} exceeds num_buckets={self.num_buckets}; "
                "every shard needs at least one bucket"
            )
        if self.executor not in ("thread", "process"):
            raise ConfigError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.tier_mode not in ("off", "write_through", "write_back", "predictive"):
            raise ConfigError(
                f"tier_mode must be 'off', 'write_through', 'write_back' or "
                f"'predictive', got {self.tier_mode!r}"
            )
        if self.tier_cache_entries < 0:
            raise ConfigError(
                f"tier_cache_entries must be >= 0, got {self.tier_cache_entries}"
            )
        if self.tier_writeback_entries < 1:
            raise ConfigError(
                f"tier_writeback_entries must be >= 1, "
                f"got {self.tier_writeback_entries}"
            )
        if self.tier_flush_ops < 1:
            raise ConfigError(
                f"tier_flush_ops must be >= 1, got {self.tier_flush_ops}"
            )
        if not 0.0 <= self.media_fault_rate < 1.0:
            raise ConfigError(
                f"media_fault_rate must be in [0, 1), got {self.media_fault_rate}"
            )
        if self.media_fault_budget < 0:
            raise ConfigError(
                f"media_fault_budget must be >= 0, got {self.media_fault_budget}"
            )
        if not 0.0 < self.media_retire_watermark <= 1.0:
            raise ConfigError(
                f"media_retire_watermark must be in (0, 1], "
                f"got {self.media_retire_watermark}"
            )
        if self.rebalance_mode not in ("off", "watermark"):
            raise ConfigError(
                f"rebalance_mode must be 'off' or 'watermark', "
                f"got {self.rebalance_mode!r}"
            )
        if self.rebalance_policy not in ("greedy", "hot_bucket"):
            raise ConfigError(
                f"rebalance_policy must be 'greedy' or 'hot_bucket', "
                f"got {self.rebalance_policy!r}"
            )
        if self.router_vbuckets < 1:
            raise ConfigError(
                f"router_vbuckets must be >= 1, got {self.router_vbuckets}"
            )
        if not 0.0 < self.rebalance_low_watermark < 1.0:
            raise ConfigError(
                f"rebalance_low_watermark must be in (0, 1), "
                f"got {self.rebalance_low_watermark}"
            )
        if self.rebalance_check_interval < 1:
            raise ConfigError(
                f"rebalance_check_interval must be >= 1, "
                f"got {self.rebalance_check_interval}"
            )
        if self.rebalance_max_keys < 1:
            raise ConfigError(
                f"rebalance_max_keys must be >= 1, got {self.rebalance_max_keys}"
            )
        if self.rebalance_wear_factor < 0.0:
            raise ConfigError(
                f"rebalance_wear_factor must be >= 0, "
                f"got {self.rebalance_wear_factor}"
            )
        if self.media_fault_rate > 0.0 and self.seed is None:
            raise ConfigError(
                "media_fault_rate > 0 requires a seed: the faulty-cell map "
                "must be deterministic so recovery and respawned process "
                "workers rebuild the same media"
            )
        if self.bucket_bytes % self.word_bytes != 0:
            raise ConfigError(
                f"bucket size {self.bucket_bytes} (key_bytes + value_bytes) must "
                f"be a multiple of word_bytes={self.word_bytes}"
            )

    @property
    def bucket_bytes(self) -> int:
        """Bytes per data-zone bucket: the stored K/V pair."""
        return self.key_bytes + self.value_bytes

    @property
    def media_enabled(self) -> bool:
        """Whether the wear-out fault model is active for this store."""
        return self.media_fault_rate > 0.0

    @property
    def resolved_featurizer(self) -> str:
        """The concrete featurizer after resolving ``"auto"``."""
        if self.featurizer != "auto":
            return self.featurizer
        return "bit" if self.bucket_bytes <= 128 else "byte"

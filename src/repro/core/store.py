"""The PNW key/value store (paper §V, Figures 2 and 5, Algorithms 1-3).

``PNWStore`` wires the four components of the paper's architecture
together: the ML model and dynamic address pool on DRAM, the hash index
on DRAM or NVM, and the K/V data zone on NVM.

The store's PUT path is Algorithm 2: predict the cluster of the
to-be-written pair, pop the most similar free address from the pool,
data-comparison-write the pair there, and update the index.  DELETE is
Algorithm 3: reset the entry's flag, re-label the freed address by the
data it still holds, and recycle it into the pool.  UPDATE follows the
endurance mode by default (DELETE + steered PUT, §V-B3).

Every mutation executes through the staged write-path engine
(:mod:`repro.engine`): the batch entry points here are thin delegates
to one :class:`~repro.engine.pipeline.MutationEngine` whose
plan → steer → commit → account stages implement the pipeline once for
PUT, UPDATE, and DELETE alike.  The store keeps what the engine drives:
component construction, the validity bitmap, the retrain policy, and
crash recovery.

A per-bucket validity bitmap is kept in a small dedicated NVM region —
the paper's "flag bit ... for deleting a K/V pair from the data zone"
(§V-A3) — which is what makes crash recovery of the DRAM-index
architecture (Fig. 2a) possible: :meth:`recover` rebuilds the index,
model, and pool purely from NVM state.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..engine.pipeline import MutationEngine
from ..errors import DegradedModeError, MediaError, PoolExhaustedError, ReproError
from ..index.base import KeyIndex
from ..index.dram_hash import DRAMHashIndex
from ..index.path_hashing import PathHashingIndex
from ..nvm.device import SimulatedNVM
from ..nvm.faults import FaultModel
from ..nvm.hybrid import HybridMemory
from ..nvm.stats import MediaStats
from .address_pool import DynamicAddressPool
from .config import PNWConfig
from .media import BadRowDirectory, MediaScrubber
from .model_manager import ModelManager
from .reports import OperationReport, StoreMetrics

__all__ = ["PNWStore", "OperationReport", "StoreMetrics"]


class PNWStore:
    """Predict-and-Write K/V store on simulated hybrid DRAM-NVM memory.

    ``zone`` optionally backs the durable regions (data zone, validity
    bitmap, both wear counters) with a :class:`~repro.nvm.shm.SharedZone`
    view instead of private arrays.  A shard worker process builds its
    store this way: the buffers outlive the worker, so a respawned worker
    re-attaches the same zone and runs the ordinary :meth:`recover` path.
    Buffers are used as-is — a fresh segment is zero-filled (the normal
    empty-store state) and a post-crash segment holds the dead worker's
    durable state.
    """

    def __init__(self, config: PNWConfig, *, zone=None) -> None:
        self.config = config
        self.zone = zone
        # Media fault machinery first: the fault model plugs into the
        # device, and the retirement directory must exist before the
        # first pool build so re-attached retirements are re-blocked.
        faults = None
        if config.media_enabled:
            stuck = (
                zone.view("stuck")
                if zone is not None and zone.has_region("stuck")
                else None
            )
            faults = FaultModel(
                config.num_buckets,
                config.bucket_bytes,
                fault_rate=config.media_fault_rate,
                fault_budget=config.media_fault_budget,
                seed=config.seed,
                stuck=stuck,
            )
        self.bad_rows = BadRowDirectory(
            config.num_buckets,
            bitmap=zone.view("retired") if zone is not None else None,
        )
        self.media_stats = MediaStats()
        self.scrubber = MediaScrubber(config.num_buckets) if config.media_enabled else None
        self._retire_limit = max(
            1, int(np.ceil(config.media_retire_watermark * config.num_buckets))
        )
        self.memory = HybridMemory(
            config.num_buckets,
            config.bucket_bytes,
            cacheline_bytes=config.cacheline_bytes,
            word_bytes=config.word_bytes,
            track_bit_wear=config.track_bit_wear,
            nvm_data=zone.view("data") if zone is not None else None,
            nvm_stats=zone.data_stats() if zone is not None else None,
            nvm_faults=faults,
        )
        # Validity bitmap: one bit per bucket, packed into 4-byte NVM words
        # in its own region so data-zone wear numbers stay pure.  With
        # persist_flags=False (the paper's Fig. 2a), flags live in DRAM
        # alongside the index and crash recovery is unavailable.
        bitmap_words = -(-config.num_buckets // 32)
        self.flags_nvm = SimulatedNVM(
            bitmap_words,
            4,
            data=zone.view("flags") if zone is not None else None,
            stats=zone.flag_stats() if zone is not None else None,
        )
        self._valid_dram = (
            np.zeros(config.num_buckets, dtype=bool)
            if not config.persist_flags
            else None
        )

        self.index: KeyIndex = self._build_index()
        self.manager = ModelManager(config)
        self.pool = self._new_pool(1)
        self.pool.rebuild(
            np.zeros(config.num_buckets, dtype=np.int64),
            np.arange(config.num_buckets),
        )
        self.metrics = StoreMetrics()
        self.engine = MutationEngine(self)
        self._live_count = 0
        self._mutations_since_check = 0

    def _build_index(self) -> KeyIndex:
        if self.config.index_placement == "dram":
            return DRAMHashIndex(self.config.key_bytes, self.memory.dram)
        # Size the path-hashing top level so total capacity comfortably
        # exceeds the data zone (top level alone >= num_buckets).
        exponent = max(3, int(np.ceil(np.log2(self.config.num_buckets))) + 1)
        return PathHashingIndex(
            self.config.key_bytes,
            levels_exponent=exponent,
            reserved_levels=min(4, exponent + 1),
        )

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nvm(self) -> SimulatedNVM:
        """The data-zone device (where Fig. 6's writes are counted)."""
        return self.memory.nvm

    def _new_pool(self, n_clusters: int) -> DynamicAddressPool:
        """A pool wired to this store's device: its probe engine caches
        free addresses' contents in DRAM (filled through the device's
        unaccounted ``gather_into`` path) so Hamming probes score
        contiguous cache rows instead of gathering buckets per pop."""
        pool = DynamicAddressPool(
            n_clusters,
            self.config.num_buckets,
            content_reader=self.nvm.gather_into,
            row_bytes=self.config.bucket_bytes,
        )
        # Re-condemn retired rows on every pool construction (__init__,
        # retrain, crash, recover): retirement is durable media state,
        # pool blocking is its per-instance projection.
        retired = self.bad_rows.retired_addresses()
        if retired.size:
            pool.block_many(retired)
        return pool

    def _normalize(self, key: bytes) -> bytes:
        return KeyIndex.normalize_key(key, self.config.key_bytes)

    def _set_valid(self, address: int, valid: bool) -> None:
        """Flip the bucket's validity bit (NVM bitmap or DRAM mirror)."""
        if self._valid_dram is not None:
            self._valid_dram[address] = valid
            self.memory.dram.write(1)
            return
        word_id, bit = divmod(address, 32)
        word = self.flags_nvm.peek(word_id)
        byte_id, bit_in_byte = divmod(bit, 8)
        if valid:
            word[byte_id] |= 1 << bit_in_byte
        else:
            word[byte_id] &= ~(1 << bit_in_byte) & 0xFF
        self.flags_nvm.write(word_id, word)

    def _set_valid_many(self, addresses: np.ndarray, valid: bool) -> None:
        """Batch :meth:`_set_valid` with per-word coalescing.

        The bitmap *contents* end up identical to per-address flag writes,
        but each touched 4-byte flag word is programmed once per batch
        instead of once per address — the bitmap half of the batch
        pipeline's write saving.  (Flag-region write counts therefore
        differ from the sequential path; data-zone accounting stays
        byte-identical.)  Callers must not mix sets and clears of the same
        address in one call.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if self._valid_dram is not None:
            for address in addresses:
                self._valid_dram[address] = valid
                self.memory.dram.write(1)
            return
        word_ids, bits = np.divmod(addresses, 32)
        for word_id in np.unique(word_ids):
            word = self.flags_nvm.peek(int(word_id))
            for bit in bits[word_ids == word_id]:
                byte_id, bit_in_byte = divmod(int(bit), 8)
                if valid:
                    word[byte_id] |= 1 << bit_in_byte
                else:
                    word[byte_id] &= ~(1 << bit_in_byte) & 0xFF
            self.flags_nvm.write(int(word_id), word)

    def _is_valid(self, address: int) -> bool:
        if self._valid_dram is not None:
            return bool(self._valid_dram[address])
        word_id, bit = divmod(address, 32)
        word = self.flags_nvm.peek(word_id)
        byte_id, bit_in_byte = divmod(bit, 8)
        return bool(word[byte_id] >> bit_in_byte & 1)

    def _index_lines_snapshot(self) -> int:
        if isinstance(self.index, PathHashingIndex):
            return self.index.nvm.stats.total_lines_touched
        return 0

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def warm_up(self, old_data: np.ndarray) -> None:
        """Fill the zone with "old data" and train the initial model.

        This is the paper's experimental bootstrap (§VI-A): contents are
        loaded without wear accounting (they predate the measurement), the
        model is trained on them (Algorithm 1), and every address joins the
        pool under its content's cluster — available for replacement.
        """
        old_data = np.atleast_2d(np.ascontiguousarray(old_data, dtype=np.uint8))
        n = old_data.shape[0]
        if n > self.config.num_buckets:
            raise ValueError(
                f"{n} warm-up rows exceed the {self.config.num_buckets}-bucket zone"
            )
        if old_data.shape[1] == self.config.value_bytes:
            rows = np.zeros((n, self.config.bucket_bytes), dtype=np.uint8)
            rows[:, self.config.key_bytes :] = old_data
        elif old_data.shape[1] == self.config.bucket_bytes:
            rows = old_data
        else:
            raise ValueError(
                f"warm-up rows are {old_data.shape[1]} bytes; expected "
                f"value_bytes={self.config.value_bytes} or "
                f"bucket_bytes={self.config.bucket_bytes}"
            )
        self.nvm.load_many(0, rows)
        self.retrain()

    def retrain(self) -> None:
        """Retrain the model on the whole zone and rebuild the pool.

        Live buckets stay out of the pool; free buckets are re-filed under
        their fresh labels.  The hash index is untouched — "we do not need
        to move or change anything in the hash table on NVM" (§V-C).
        With ``refresh_mode="incremental"`` a trained model is refreshed
        in place by mini-batch K-Means (same ``n_clusters``) instead of
        refit from scratch, so the pool rebuild is the only full-zone
        pass left on the retrain path.
        """
        contents = self.nvm.contents
        self.manager.train(np.asarray(contents))
        assert self.manager.model is not None
        free = self.pool.free_addresses()
        n_clusters = self.manager.model.n_clusters
        self.pool = self._new_pool(n_clusters)
        if free.size:
            labels = self.manager.labels_for(np.asarray(contents)[free])
            self.pool.rebuild(labels, free)
        self.metrics.retrains += 1

    def _maybe_retrain(self) -> bool:
        if self.engine.defer_retrain:
            # Migration batches don't advance the retrain clock: the
            # load-factor check simply runs on the next regular mutation.
            return False
        self._mutations_since_check += 1
        if self._mutations_since_check < self.config.retrain_check_interval:
            return False
        self._mutations_since_check = 0
        if self.manager.should_retrain(self.live_fraction):
            self.retrain()
            return True
        return False

    # ------------------------------------------------------------------ #
    # K/V operations (thin delegates to the staged engine)                #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT (Algorithm 2).  Existing keys follow the update mode.

        A thin single-pair wrapper over :meth:`put_many`, so the
        sequential and batched paths are literally the same code.
        """
        return self.put_many([(key, value)])[0]

    def put_many(
        self,
        pairs: Iterable[tuple[bytes, bytes | np.ndarray]],
        *,
        unique: bool = False,
    ) -> list[OperationReport]:
        """Batched PUT: vectorized Algorithm 2 over many K/V pairs.

        The engine featurizes the whole batch as one matrix, predicts
        every cluster in one K-Means call, bulk-pops best-match addresses
        from the pool, and commits the data-comparison writes through the
        device's multi-row path — while leaving the store byte-identical
        (data zone, flag bitmap, index, wear counters, pool order) to
        calling :meth:`put` once per pair in order.  To guarantee that,
        the plan stage chunks the batch so a retrain check can only fire
        where the sequential loop would run it, and pairs whose key
        already exists are routed through the update mode exactly like a
        sequential PUT.  (The byte-identical guarantee holds for the raw
        bit/byte featurizers — the defaults; with PCA attached, batch and
        single-row features agree only to float tolerance, so a near-tie
        between centroids can steer a pair differently.)

        With ``unique=True`` the whole batch is validated first and a
        :class:`DuplicateKeyError` is raised — before anything is
        written — if any key already exists or appears twice in the
        batch (the batch form of :meth:`put_unique`).

        Value validation happens up front: an oversized value rejects the
        batch before any mutation.  A :class:`PoolExhaustedError`
        mid-batch commits the already-placed prefix (as the sequential
        loop would) before escaping; the escaping exception carries
        ``committed_reports`` — the in-order reports of every pair of
        *this call* that fully committed — so callers can retry exactly
        the remainder.  Returns one report per pair, in order.
        """
        return self.engine.put_many(pairs, unique=unique)

    def get(self, key: bytes) -> bytes:
        """GET (§V-B4): index lookup, then a data-zone read.

        A missing key raises :class:`KeyNotFoundError` (a
        :class:`KeyError` subclass), like every miss on both store
        types.
        """
        key = self._normalize(key)
        address = self.index.get(key)
        bucket = self.nvm.read(address)
        self.metrics.gets += 1
        return bucket[self.config.key_bytes :].tobytes()

    def get_many(self, keys: Iterable[bytes]) -> list[bytes]:
        """Read many keys in order (one padded value per key).

        The bulk read of the shard rebalancer's migration batches — for
        a process-executor shard it turns a bucket copy into one RPC
        round-trip instead of one per key.  A missing key raises
        :class:`KeyNotFoundError` like :meth:`get`.
        """
        return [self.get(key) for key in keys]

    def delete(self, key: bytes) -> OperationReport:
        """DELETE (Algorithm 3): flag reset + address recycling.

        A thin single-key wrapper over :meth:`delete_many`.
        """
        return self.delete_many([key])[0]

    def delete_many(self, keys: Iterable[bytes]) -> list[OperationReport]:
        """Batched DELETE: one vectorized re-labeling for many keys.

        Index removals and flag resets run per key in order; the freed
        buckets' contents are then gathered once, re-labeled in a single
        K-Means call (Algorithm 3, line 3, batched — deletes never change
        bucket contents, so the labels match per-key prediction exactly),
        and recycled into the pool in key order.  The result is
        state-identical to calling :meth:`delete` once per key.

        A missing key raises :class:`KeyNotFoundError` after the
        already-deleted prefix is fully recycled — the state a sequential
        loop leaves when it dies on that key.  The escaping exception
        carries ``committed_reports`` (the prefix's reports).
        """
        return self.engine.delete_many(keys)

    def update(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """UPDATE (§V-B3): endurance (delete+put) or latency (in place)."""
        return self.engine.update_single(self._normalize(key), value)

    def update_many(
        self, pairs: Iterable[tuple[bytes, bytes | np.ndarray]]
    ) -> list[OperationReport]:
        """Batched UPDATE, state-identical to :meth:`update` per pair.

        Endurance mode replays the sequential interleaving — delete one,
        steer one — but amortises every model call: the old contents are
        re-labeled and the new payloads' cluster orders predicted in two
        vectorized calls per chunk, and the steered writes are flushed
        through the multi-row device path.  Latency mode batches the
        in-place writes directly.  Chunks end at duplicate keys (a later
        update of the same key must observe the earlier one) and, in
        endurance mode, at retrain-check boundaries.

        A missing key raises :class:`KeyNotFoundError` after the
        already-updated prefix is fully applied, like a sequential loop;
        the exception carries ``committed_reports``.  Value sizes are
        validated up front (an oversized value anywhere rejects the
        batch before any mutation).  A mid-batch
        :class:`PoolExhaustedError` carries ``committed_reports`` like
        :meth:`put_many`.  Returns the per-pair UPDATE reports in order.
        """
        return self.engine.update_many(pairs)

    # ------------------------------------------------------------------ #
    # recovery                                                            #
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Drop every DRAM structure, simulating a power failure.

        The media layer splits across the line: scrub checksums and the
        patrol cursor are DRAM (they reset), while the retirement bitmap
        and the fault model's stuck cells are media facts that survive —
        on a shared zone they literally live in the segment.
        """
        self.manager = ModelManager(self.config)
        self.pool = self._new_pool(1)
        self.pool.rebuild(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        if self.config.index_placement == "dram":
            self.index = self._build_index()
        self._live_count = 0
        if self.scrubber is not None:
            self.scrubber.reset()

    def recover(self) -> None:
        """Rebuild all DRAM state from NVM (§V-A1: the model "can be
        reconstructed after a crash").

        Scans the validity bitmap, re-inserts live keys into a fresh DRAM
        index (NVM indexes survive on their own), retrains the model on
        the zone, and refiles free addresses into the pool.
        """
        if self._valid_dram is not None:
            raise ReproError(
                "recover() needs the persistent validity bitmap; this store "
                "was built with persist_flags=False (the paper's Fig. 2a "
                "architecture, which cannot rebuild liveness after a crash)"
            )
        live = np.array(
            [a for a in range(self.config.num_buckets) if self._is_valid(a)],
            dtype=np.int64,
        )
        if self.config.index_placement == "dram" and len(self.index) == 0:
            for address in live:
                bucket = self.nvm.peek(int(address))
                key = bucket[: self.config.key_bytes].tobytes()
                self.index.put(key, int(address))
        self._live_count = int(live.size)

        contents = np.asarray(self.nvm.contents)
        self.manager.train(contents)
        assert self.manager.model is not None
        free_mask = np.ones(self.config.num_buckets, dtype=bool)
        free_mask[live] = False
        free = np.flatnonzero(free_mask)
        self.pool = self._new_pool(self.manager.model.n_clusters)
        if free.size:
            self.pool.rebuild(self.manager.labels_for(contents[free]), free)
        if self.scrubber is not None:
            # Checksums died with DRAM; re-trust the media for live rows
            # (every one of them passed write-verify before the crash).
            self.scrubber.rebuild(self.nvm, live)

    # ------------------------------------------------------------------ #
    # media health (write-verify support, retirement, patrol scrubbing)   #
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        """True once media retirement crossed the capacity watermark.

        A degraded store sheds ``put``/``update`` batches with
        :class:`~repro.errors.DegradedModeError` (reads and deletes are
        still served) so a worn-out zone fails loudly instead of
        thrashing its last healthy rows.
        """
        return self.config.media_enabled and self.bad_rows.count >= self._retire_limit

    def _retire_address(self, address: int) -> None:
        """Condemn a row: record it, block it in the pool, and drop its
        patrol checksum.  Idempotent."""
        if self.bad_rows.retire(address):
            self.media_stats.rows_retired += 1
        self.pool.block(address)
        if self.scrubber is not None:
            self.scrubber.forget(address)

    def _media_place(
        self,
        payload: np.ndarray,
        cluster: int | None = None,
        order: np.ndarray | None = None,
    ) -> tuple[int, object]:
        """Write ``payload`` to a *verified* fresh address.

        Pops best-match candidates through the ordinary Hamming probe
        path (§IV) and read-back-verifies each landing; candidates whose
        rows turn out stuck are retired and the probe continues.  Raises
        :class:`~repro.errors.PoolExhaustedError` when no healthy row is
        left.  Returns ``(address, write_report)``.
        """
        if cluster is None:
            if self.manager.is_trained:
                cluster = int(self.manager.predict(payload))
                order = self.manager.fallback_order(payload)
            else:
                cluster, order = 0, None
        while True:
            address = self.pool.get_best(
                cluster, payload, self.config.probe_limit, order
            )
            report = self.nvm.write(address, payload)
            if np.array_equal(self.nvm.peek(address), payload):
                return address, report
            self.media_stats.verify_failures += 1
            self._retire_address(address)

    def _relocate_live_row(self, address: int, row: np.ndarray) -> int:
        """Move an occupied row off failing media (scrub path).

        Ordering is crash-safe: the copy is written and flagged valid
        before the index repoints and the old flag clears, so a crash
        mid-move leaves at least one valid, correct copy (recovery's
        index rebuild picks one; the loser is merely leaked until the
        next full rebuild).
        """
        key = row[: self.config.key_bytes].tobytes()
        new_address, _report = self._media_place(row)
        self._set_valid(new_address, True)
        self.index.put(key, new_address)
        self._set_valid(address, False)
        self._retire_address(address)
        if self.scrubber is not None:
            self.scrubber.note(new_address, row)
        self.media_stats.relocations += 1
        return new_address

    def scrub(self, limit: int | None = None) -> dict[str, int]:
        """One patrol pass: read up to ``limit`` occupied rows (all, when
        ``None``), compare each against its stored checksum, and
        proactively relocate rows sitting on latent stuck cells.

        Raises :class:`~repro.errors.MediaError` if any row contradicts
        its checksum (acknowledged-data corruption — write-verify is
        designed to make this impossible), and
        :class:`~repro.errors.DegradedModeError` if this pass's
        retirements pushed the store over the capacity watermark.  A
        relocation that finds the pool exhausted is *deferred* — the row
        stays where it is, still readable — and reported in the summary.
        """
        if self.scrubber is None:
            return {"scanned": 0, "relocated": 0, "deferred": 0, "mismatches": 0}
        n = self.config.num_buckets
        budget = n if limit is None else max(0, min(int(limit), n))
        was_degraded = self.degraded
        scanned = relocated = deferred = 0
        mismatches: list[int] = []
        cursor = self.scrubber.cursor
        for step in range(n):
            if scanned >= budget:
                break
            address = (cursor + step) % n
            self.scrubber.cursor = (address + 1) % n
            if not self._is_valid(address):
                continue
            scanned += 1
            row = self.nvm.read(address)  # accounted patrol read
            if not self.scrubber.check(address, row):
                self.media_stats.checksum_mismatches += 1
                mismatches.append(address)
                continue
            if self.nvm.media_probe(address) > 0:
                self.media_stats.latent_faults_found += 1
                try:
                    self._relocate_live_row(address, row)
                    relocated += 1
                except PoolExhaustedError:
                    deferred += 1
        self.media_stats.rows_scrubbed += scanned
        self.media_stats.scrub_passes += 1
        if mismatches:
            raise MediaError(
                f"scrub found {len(mismatches)} row(s) contradicting their "
                f"checksums (addresses {mismatches[:8]}): acknowledged data "
                "was corrupted in place"
            )
        if not was_degraded and self.degraded:
            exc = DegradedModeError(
                f"scrub retirements crossed the capacity watermark: "
                f"{self.bad_rows.count}/{self.config.num_buckets} rows retired "
                f"(limit {self._retire_limit}); store is shedding writes"
            )
            exc.committed_reports = []
            raise exc
        return {
            "scanned": scanned,
            "relocated": relocated,
            "deferred": deferred,
            "mismatches": 0,
        }

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    def __contains__(self, key: bytes) -> bool:
        return self._normalize(key) in self.index

    def __len__(self) -> int:
        return self._live_count

    @property
    def live_fraction(self) -> float:
        """Occupied fraction of the data zone (checked against the load
        factor)."""
        return self._live_count / self.config.num_buckets

    def put_unique(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT that refuses to overwrite (for insert-only workloads).

        Shares :meth:`put_many`'s ``unique`` path — the engine plan
        stage's :func:`~repro.engine.plan.check_unique` — so the single
        and batched insert-only paths raise the same
        :class:`DuplicateKeyError` on the same (normalized) key, and a
        rejected insert never mutates the store.
        """
        return self.put_many([(key, value)], unique=True)[0]

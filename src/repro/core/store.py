"""The PNW key/value store (paper §V, Figures 2 and 5, Algorithms 1-3).

``PNWStore`` wires the four components of the paper's architecture
together: the ML model and dynamic address pool on DRAM, the hash index
on DRAM or NVM, and the K/V data zone on NVM.

The store's PUT path is Algorithm 2: predict the cluster of the
to-be-written pair, pop the most similar free address from the pool,
data-comparison-write the pair there, and update the index.  DELETE is
Algorithm 3: reset the entry's flag, re-label the freed address by the
data it still holds, and recycle it into the pool.  UPDATE follows the
endurance mode by default (DELETE + steered PUT, §V-B3).

A per-bucket validity bitmap is kept in a small dedicated NVM region —
the paper's "flag bit ... for deleting a K/V pair from the data zone"
(§V-A3) — which is what makes crash recovery of the DRAM-index
architecture (Fig. 2a) possible: :meth:`recover` rebuilds the index,
model, and pool purely from NVM state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._bitops import bytes_to_array
from ..errors import DuplicateKeyError, KeyNotFoundError, ReproError
from ..index.base import KeyIndex
from ..index.dram_hash import DRAMHashIndex
from ..index.path_hashing import PathHashingIndex
from ..nvm.device import SimulatedNVM
from ..nvm.hybrid import HybridMemory
from .address_pool import DynamicAddressPool
from .config import PNWConfig
from .model_manager import ModelManager

__all__ = ["PNWStore", "OperationReport", "StoreMetrics"]


@dataclass(frozen=True)
class OperationReport:
    """Cost breakdown of one mutating store operation."""

    op: str
    key: bytes
    address: int
    cluster: int
    fallback_used: bool
    bit_updates: int
    words_touched: int
    lines_touched: int
    nvm_latency_ns: float
    predict_ns: float
    index_lines: int
    retrained: bool

    @property
    def total_latency_ns(self) -> float:
        """Modeled NVM time plus measured prediction time — the paper's
        end-to-end write latency decomposition (§VI-E)."""
        return self.nvm_latency_ns + self.predict_ns


@dataclass
class StoreMetrics:
    """Operation counters for one store instance."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    updates: int = 0
    retrains: int = 0
    fallbacks: int = 0
    reports: list[OperationReport] = field(default_factory=list)
    keep_reports: bool = False

    def record(self, report: OperationReport) -> None:
        if self.keep_reports:
            self.reports.append(report)


class PNWStore:
    """Predict-and-Write K/V store on simulated hybrid DRAM-NVM memory."""

    def __init__(self, config: PNWConfig) -> None:
        self.config = config
        self.memory = HybridMemory(
            config.num_buckets,
            config.bucket_bytes,
            cacheline_bytes=config.cacheline_bytes,
            word_bytes=config.word_bytes,
            track_bit_wear=config.track_bit_wear,
        )
        # Validity bitmap: one bit per bucket, packed into 4-byte NVM words
        # in its own region so data-zone wear numbers stay pure.  With
        # persist_flags=False (the paper's Fig. 2a), flags live in DRAM
        # alongside the index and crash recovery is unavailable.
        bitmap_words = -(-config.num_buckets // 32)
        self.flags_nvm = SimulatedNVM(bitmap_words, 4)
        self._valid_dram = (
            np.zeros(config.num_buckets, dtype=bool)
            if not config.persist_flags
            else None
        )

        self.index: KeyIndex = self._build_index()
        self.manager = ModelManager(config)
        self.pool = DynamicAddressPool(1, config.num_buckets)
        self.pool.rebuild(
            np.zeros(config.num_buckets, dtype=np.int64),
            np.arange(config.num_buckets),
        )
        self.metrics = StoreMetrics()
        self._live_count = 0
        self._mutations_since_check = 0

    def _build_index(self) -> KeyIndex:
        if self.config.index_placement == "dram":
            return DRAMHashIndex(self.config.key_bytes, self.memory.dram)
        # Size the path-hashing top level so total capacity comfortably
        # exceeds the data zone (top level alone >= num_buckets).
        exponent = max(3, int(np.ceil(np.log2(self.config.num_buckets))) + 1)
        return PathHashingIndex(
            self.config.key_bytes,
            levels_exponent=exponent,
            reserved_levels=min(4, exponent + 1),
        )

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nvm(self) -> SimulatedNVM:
        """The data-zone device (where Fig. 6's writes are counted)."""
        return self.memory.nvm

    def _encode_pair(self, key: bytes, value: bytes | np.ndarray) -> np.ndarray:
        """Pack a K/V pair into one bucket payload."""
        if isinstance(value, np.ndarray):
            value = value.tobytes()
        payload = np.empty(self.config.bucket_bytes, dtype=np.uint8)
        payload[: self.config.key_bytes] = bytes_to_array(key, self.config.key_bytes)
        payload[self.config.key_bytes :] = bytes_to_array(
            value, self.config.value_bytes
        )
        return payload

    def _normalize(self, key: bytes) -> bytes:
        return KeyIndex.normalize_key(key, self.config.key_bytes)

    def _set_valid(self, address: int, valid: bool) -> None:
        """Flip the bucket's validity bit (NVM bitmap or DRAM mirror)."""
        if self._valid_dram is not None:
            self._valid_dram[address] = valid
            self.memory.dram.write(1)
            return
        word_id, bit = divmod(address, 32)
        word = self.flags_nvm.peek(word_id)
        byte_id, bit_in_byte = divmod(bit, 8)
        if valid:
            word[byte_id] |= 1 << bit_in_byte
        else:
            word[byte_id] &= ~(1 << bit_in_byte) & 0xFF
        self.flags_nvm.write(word_id, word)

    def _is_valid(self, address: int) -> bool:
        if self._valid_dram is not None:
            return bool(self._valid_dram[address])
        word_id, bit = divmod(address, 32)
        word = self.flags_nvm.peek(word_id)
        byte_id, bit_in_byte = divmod(bit, 8)
        return bool(word[byte_id] >> bit_in_byte & 1)

    def _index_lines_snapshot(self) -> int:
        if isinstance(self.index, PathHashingIndex):
            return self.index.nvm.stats.total_lines_touched
        return 0

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def warm_up(self, old_data: np.ndarray) -> None:
        """Fill the zone with "old data" and train the initial model.

        This is the paper's experimental bootstrap (§VI-A): contents are
        loaded without wear accounting (they predate the measurement), the
        model is trained on them (Algorithm 1), and every address joins the
        pool under its content's cluster — available for replacement.
        """
        old_data = np.atleast_2d(np.ascontiguousarray(old_data, dtype=np.uint8))
        n = old_data.shape[0]
        if n > self.config.num_buckets:
            raise ValueError(
                f"{n} warm-up rows exceed the {self.config.num_buckets}-bucket zone"
            )
        if old_data.shape[1] == self.config.value_bytes:
            rows = np.zeros((n, self.config.bucket_bytes), dtype=np.uint8)
            rows[:, self.config.key_bytes :] = old_data
        elif old_data.shape[1] == self.config.bucket_bytes:
            rows = old_data
        else:
            raise ValueError(
                f"warm-up rows are {old_data.shape[1]} bytes; expected "
                f"value_bytes={self.config.value_bytes} or "
                f"bucket_bytes={self.config.bucket_bytes}"
            )
        self.nvm.load_many(0, rows)
        self.retrain()

    def retrain(self) -> None:
        """Retrain the model on the whole zone and rebuild the pool.

        Live buckets stay out of the pool; free buckets are re-filed under
        their fresh labels.  The hash index is untouched — "we do not need
        to move or change anything in the hash table on NVM" (§V-C).
        """
        contents = self.nvm.contents
        self.manager.train(np.asarray(contents))
        assert self.manager.model is not None
        free = self.pool.free_addresses()
        n_clusters = self.manager.model.n_clusters
        self.pool = DynamicAddressPool(n_clusters, self.config.num_buckets)
        if free.size:
            labels = self.manager.labels_for(np.asarray(contents)[free])
            self.pool.rebuild(labels, free)
        self.metrics.retrains += 1

    def _maybe_retrain(self) -> bool:
        self._mutations_since_check += 1
        if self._mutations_since_check < self.config.retrain_check_interval:
            return False
        self._mutations_since_check = 0
        if self.manager.should_retrain(self.live_fraction):
            self.retrain()
            return True
        return False

    # ------------------------------------------------------------------ #
    # K/V operations                                                      #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT (Algorithm 2).  Existing keys follow the update mode."""
        key = self._normalize(key)
        if key in self.index:
            return self.update(key, value)

        payload = self._encode_pair(key, value)
        predict_before = self.manager.predict_ns_total
        if self.manager.is_trained:
            order = self.manager.fallback_order(payload)
            cluster = int(order[0])
        else:
            order = None
            cluster = 0
        predict_ns = self.manager.predict_ns_total - predict_before

        fallback_used = self.pool.cluster_sizes()[cluster] == 0
        address = self.pool.get_best(
            cluster,
            lambda addrs: self.nvm.hamming_many(addrs, payload),
            self.config.probe_limit,
            order,
        )
        if fallback_used:
            self.metrics.fallbacks += 1

        index_lines_before = self._index_lines_snapshot()
        report = self.nvm.write(address, payload)
        self._set_valid(address, True)
        self.index.put(key, address)
        index_lines = self._index_lines_snapshot() - index_lines_before

        self._live_count += 1
        self.metrics.puts += 1
        retrained = self._maybe_retrain()
        op = OperationReport(
            op="put",
            key=key,
            address=address,
            cluster=cluster,
            fallback_used=fallback_used,
            bit_updates=report.bit_updates,
            words_touched=report.words_touched,
            lines_touched=report.lines_touched,
            nvm_latency_ns=report.latency_ns,
            predict_ns=float(predict_ns),
            index_lines=index_lines,
            retrained=retrained,
        )
        self.metrics.record(op)
        return op

    def get(self, key: bytes) -> bytes:
        """GET (§V-B4): index lookup, then a data-zone read."""
        key = self._normalize(key)
        address = self.index.get(key)
        bucket = self.nvm.read(address)
        self.metrics.gets += 1
        return bucket[self.config.key_bytes :].tobytes()

    def delete(self, key: bytes) -> OperationReport:
        """DELETE (Algorithm 3): flag reset + address recycling."""
        key = self._normalize(key)
        address = self.index.delete(key)
        self._set_valid(address, False)

        old = self.nvm.peek(address)
        predict_before = self.manager.predict_ns_total
        cluster = self.manager.predict(old) if self.manager.is_trained else 0
        predict_ns = self.manager.predict_ns_total - predict_before
        if cluster >= self.pool.n_clusters:
            cluster = 0
        self.pool.release(address, cluster)

        self._live_count -= 1
        self.metrics.deletes += 1
        op = OperationReport(
            op="delete",
            key=key,
            address=address,
            cluster=cluster,
            fallback_used=False,
            bit_updates=0,
            words_touched=0,
            lines_touched=0,
            nvm_latency_ns=0.0,
            predict_ns=float(predict_ns),
            index_lines=0,
            retrained=False,
        )
        self.metrics.record(op)
        return op

    def update(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """UPDATE (§V-B3): endurance (delete+put) or latency (in place)."""
        key = self._normalize(key)
        if key not in self.index:
            raise KeyNotFoundError(f"key {key!r} not found")
        self.metrics.updates += 1
        if self.config.update_mode == "endurance":
            self.delete(key)
            report = self.put(key, value)
            return report
        # Latency mode: straight through the index, in place, no steering.
        address = self.index.get(key)
        payload = self._encode_pair(key, value)
        report = self.nvm.write(address, payload)
        op = OperationReport(
            op="update",
            key=key,
            address=address,
            cluster=-1,
            fallback_used=False,
            bit_updates=report.bit_updates,
            words_touched=report.words_touched,
            lines_touched=report.lines_touched,
            nvm_latency_ns=report.latency_ns,
            predict_ns=0.0,
            index_lines=0,
            retrained=False,
        )
        self.metrics.record(op)
        return op

    # ------------------------------------------------------------------ #
    # recovery                                                            #
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Drop every DRAM structure, simulating a power failure."""
        self.manager = ModelManager(self.config)
        self.pool = DynamicAddressPool(1, self.config.num_buckets)
        self.pool.rebuild(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        if self.config.index_placement == "dram":
            self.index = self._build_index()
        self._live_count = 0

    def recover(self) -> None:
        """Rebuild all DRAM state from NVM (§V-A1: the model "can be
        reconstructed after a crash").

        Scans the validity bitmap, re-inserts live keys into a fresh DRAM
        index (NVM indexes survive on their own), retrains the model on
        the zone, and refiles free addresses into the pool.
        """
        if self._valid_dram is not None:
            raise ReproError(
                "recover() needs the persistent validity bitmap; this store "
                "was built with persist_flags=False (the paper's Fig. 2a "
                "architecture, which cannot rebuild liveness after a crash)"
            )
        live = np.array(
            [a for a in range(self.config.num_buckets) if self._is_valid(a)],
            dtype=np.int64,
        )
        if self.config.index_placement == "dram" and len(self.index) == 0:
            for address in live:
                bucket = self.nvm.peek(int(address))
                key = bucket[: self.config.key_bytes].tobytes()
                self.index.put(key, int(address))
        self._live_count = int(live.size)

        contents = np.asarray(self.nvm.contents)
        self.manager.train(contents)
        assert self.manager.model is not None
        free_mask = np.ones(self.config.num_buckets, dtype=bool)
        free_mask[live] = False
        free = np.flatnonzero(free_mask)
        self.pool = DynamicAddressPool(
            self.manager.model.n_clusters, self.config.num_buckets
        )
        if free.size:
            self.pool.rebuild(self.manager.labels_for(contents[free]), free)

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    def __contains__(self, key: bytes) -> bool:
        return self._normalize(key) in self.index

    def __len__(self) -> int:
        return self._live_count

    @property
    def live_fraction(self) -> float:
        """Occupied fraction of the data zone (checked against the load
        factor)."""
        return self._live_count / self.config.num_buckets

    def put_unique(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT that refuses to overwrite (for insert-only workloads)."""
        if self._normalize(key) in self.index:
            raise DuplicateKeyError(f"key {key!r} already exists")
        return self.put(key, value)

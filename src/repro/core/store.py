"""The PNW key/value store (paper §V, Figures 2 and 5, Algorithms 1-3).

``PNWStore`` wires the four components of the paper's architecture
together: the ML model and dynamic address pool on DRAM, the hash index
on DRAM or NVM, and the K/V data zone on NVM.

The store's PUT path is Algorithm 2: predict the cluster of the
to-be-written pair, pop the most similar free address from the pool,
data-comparison-write the pair there, and update the index.  DELETE is
Algorithm 3: reset the entry's flag, re-label the freed address by the
data it still holds, and recycle it into the pool.  UPDATE follows the
endurance mode by default (DELETE + steered PUT, §V-B3).

A per-bucket validity bitmap is kept in a small dedicated NVM region —
the paper's "flag bit ... for deleting a K/V pair from the data zone"
(§V-A3) — which is what makes crash recovery of the DRAM-index
architecture (Fig. 2a) possible: :meth:`recover` rebuilds the index,
model, and pool purely from NVM state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    PoolExhaustedError,
    ReproError,
)
from ..index.base import KeyIndex
from ..index.dram_hash import DRAMHashIndex
from ..index.path_hashing import PathHashingIndex
from ..nvm.device import SimulatedNVM
from ..nvm.hybrid import HybridMemory
from .address_pool import DynamicAddressPool
from .config import PNWConfig
from .model_manager import ModelManager

__all__ = ["PNWStore", "OperationReport", "StoreMetrics"]


@dataclass(frozen=True)
class OperationReport:
    """Cost breakdown of one mutating store operation."""

    op: str
    key: bytes
    address: int
    cluster: int
    fallback_used: bool
    bit_updates: int
    words_touched: int
    lines_touched: int
    nvm_latency_ns: float
    predict_ns: float
    index_lines: int
    retrained: bool

    @property
    def total_latency_ns(self) -> float:
        """Modeled NVM time plus measured prediction time — the paper's
        end-to-end write latency decomposition (§VI-E)."""
        return self.nvm_latency_ns + self.predict_ns


@dataclass
class StoreMetrics:
    """Operation counters for one store instance."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    updates: int = 0
    retrains: int = 0
    fallbacks: int = 0
    reports: list[OperationReport] = field(default_factory=list)
    keep_reports: bool = False

    def record(self, report: OperationReport) -> None:
        if self.keep_reports:
            self.reports.append(report)

    @classmethod
    def merge(cls, parts: Iterable["StoreMetrics"]) -> "StoreMetrics":
        """Sum several stores' counters into one merged snapshot.

        The sharded store keeps one :class:`StoreMetrics` per shard; this
        is the whole-store view.  Kept reports are concatenated part by
        part (shard order, each shard's own chronological order) — a
        per-shard timeline, not a global one, because concurrent shard
        pipelines have no cross-shard operation order.  The result is a
        snapshot: it does not track the parts afterwards.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one StoreMetrics")
        merged = cls(keep_reports=any(part.keep_reports for part in parts))
        for part in parts:
            merged.puts += part.puts
            merged.gets += part.gets
            merged.deletes += part.deletes
            merged.updates += part.updates
            merged.retrains += part.retrains
            merged.fallbacks += part.fallbacks
            merged.reports.extend(part.reports)
        return merged


class PNWStore:
    """Predict-and-Write K/V store on simulated hybrid DRAM-NVM memory."""

    def __init__(self, config: PNWConfig) -> None:
        self.config = config
        self.memory = HybridMemory(
            config.num_buckets,
            config.bucket_bytes,
            cacheline_bytes=config.cacheline_bytes,
            word_bytes=config.word_bytes,
            track_bit_wear=config.track_bit_wear,
        )
        # Validity bitmap: one bit per bucket, packed into 4-byte NVM words
        # in its own region so data-zone wear numbers stay pure.  With
        # persist_flags=False (the paper's Fig. 2a), flags live in DRAM
        # alongside the index and crash recovery is unavailable.
        bitmap_words = -(-config.num_buckets // 32)
        self.flags_nvm = SimulatedNVM(bitmap_words, 4)
        self._valid_dram = (
            np.zeros(config.num_buckets, dtype=bool)
            if not config.persist_flags
            else None
        )

        self.index: KeyIndex = self._build_index()
        self.manager = ModelManager(config)
        self.pool = self._new_pool(1)
        self.pool.rebuild(
            np.zeros(config.num_buckets, dtype=np.int64),
            np.arange(config.num_buckets),
        )
        self.metrics = StoreMetrics()
        self._live_count = 0
        self._mutations_since_check = 0

    def _build_index(self) -> KeyIndex:
        if self.config.index_placement == "dram":
            return DRAMHashIndex(self.config.key_bytes, self.memory.dram)
        # Size the path-hashing top level so total capacity comfortably
        # exceeds the data zone (top level alone >= num_buckets).
        exponent = max(3, int(np.ceil(np.log2(self.config.num_buckets))) + 1)
        return PathHashingIndex(
            self.config.key_bytes,
            levels_exponent=exponent,
            reserved_levels=min(4, exponent + 1),
        )

    # ------------------------------------------------------------------ #
    # helpers                                                             #
    # ------------------------------------------------------------------ #

    @property
    def nvm(self) -> SimulatedNVM:
        """The data-zone device (where Fig. 6's writes are counted)."""
        return self.memory.nvm

    def _new_pool(self, n_clusters: int) -> DynamicAddressPool:
        """A pool wired to this store's device: its probe engine caches
        free addresses' contents in DRAM (filled through the device's
        unaccounted ``gather_into`` path) so Hamming probes score
        contiguous cache rows instead of gathering buckets per pop."""
        return DynamicAddressPool(
            n_clusters,
            self.config.num_buckets,
            content_reader=self.nvm.gather_into,
            row_bytes=self.config.bucket_bytes,
        )

    def _encode_pair(self, key: bytes, value: bytes | np.ndarray) -> np.ndarray:
        """Pack a K/V pair into one bucket payload."""
        return self._encode_pairs([self._normalize(key)], [value])[0]

    def _encode_pairs(
        self, keys: list[bytes], values: list[bytes | np.ndarray]
    ) -> np.ndarray:
        """Pack normalized keys and their values into an ``(n, bucket_bytes)``
        payload matrix — the single-matrix featurizer input of the batch
        pipeline.  Values are validated up front, so an oversized value
        rejects the batch before anything is written."""
        value_bytes = self.config.value_bytes
        self._validate_values(values)
        parts: list[bytes] = []
        for key, value in zip(keys, values):
            if isinstance(value, np.ndarray):
                value = value.tobytes()
            parts.append(key)
            parts.append(value.ljust(value_bytes, b"\x00"))
        return (
            np.frombuffer(b"".join(parts), dtype=np.uint8)
            .reshape(len(keys), self.config.bucket_bytes)
            .copy()
        )

    def _validate_values(self, values: list[bytes | np.ndarray]) -> None:
        """Reject oversized values without materialising anything.

        Batch entry points run this over the *whole* batch before the
        first mutation, so a bad value anywhere — even past a chunk
        boundary — rejects the batch with the store untouched.
        """
        value_bytes = self.config.value_bytes
        for value in values:
            size = value.nbytes if isinstance(value, np.ndarray) else len(value)
            if size > value_bytes:
                raise ValueError(
                    f"value of {size} bytes exceeds bucket size {value_bytes}"
                )

    def _normalize(self, key: bytes) -> bytes:
        return KeyIndex.normalize_key(key, self.config.key_bytes)

    def _set_valid(self, address: int, valid: bool) -> None:
        """Flip the bucket's validity bit (NVM bitmap or DRAM mirror)."""
        if self._valid_dram is not None:
            self._valid_dram[address] = valid
            self.memory.dram.write(1)
            return
        word_id, bit = divmod(address, 32)
        word = self.flags_nvm.peek(word_id)
        byte_id, bit_in_byte = divmod(bit, 8)
        if valid:
            word[byte_id] |= 1 << bit_in_byte
        else:
            word[byte_id] &= ~(1 << bit_in_byte) & 0xFF
        self.flags_nvm.write(word_id, word)

    def _set_valid_many(self, addresses: np.ndarray, valid: bool) -> None:
        """Batch :meth:`_set_valid` with per-word coalescing.

        The bitmap *contents* end up identical to per-address flag writes,
        but each touched 4-byte flag word is programmed once per batch
        instead of once per address — the bitmap half of the batch
        pipeline's write saving.  (Flag-region write counts therefore
        differ from the sequential path; data-zone accounting stays
        byte-identical.)  Callers must not mix sets and clears of the same
        address in one call.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if self._valid_dram is not None:
            for address in addresses:
                self._valid_dram[address] = valid
                self.memory.dram.write(1)
            return
        word_ids, bits = np.divmod(addresses, 32)
        for word_id in np.unique(word_ids):
            word = self.flags_nvm.peek(int(word_id))
            for bit in bits[word_ids == word_id]:
                byte_id, bit_in_byte = divmod(int(bit), 8)
                if valid:
                    word[byte_id] |= 1 << bit_in_byte
                else:
                    word[byte_id] &= ~(1 << bit_in_byte) & 0xFF
            self.flags_nvm.write(int(word_id), word)

    def _is_valid(self, address: int) -> bool:
        if self._valid_dram is not None:
            return bool(self._valid_dram[address])
        word_id, bit = divmod(address, 32)
        word = self.flags_nvm.peek(word_id)
        byte_id, bit_in_byte = divmod(bit, 8)
        return bool(word[byte_id] >> bit_in_byte & 1)

    def _index_lines_snapshot(self) -> int:
        if isinstance(self.index, PathHashingIndex):
            return self.index.nvm.stats.total_lines_touched
        return 0

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def warm_up(self, old_data: np.ndarray) -> None:
        """Fill the zone with "old data" and train the initial model.

        This is the paper's experimental bootstrap (§VI-A): contents are
        loaded without wear accounting (they predate the measurement), the
        model is trained on them (Algorithm 1), and every address joins the
        pool under its content's cluster — available for replacement.
        """
        old_data = np.atleast_2d(np.ascontiguousarray(old_data, dtype=np.uint8))
        n = old_data.shape[0]
        if n > self.config.num_buckets:
            raise ValueError(
                f"{n} warm-up rows exceed the {self.config.num_buckets}-bucket zone"
            )
        if old_data.shape[1] == self.config.value_bytes:
            rows = np.zeros((n, self.config.bucket_bytes), dtype=np.uint8)
            rows[:, self.config.key_bytes :] = old_data
        elif old_data.shape[1] == self.config.bucket_bytes:
            rows = old_data
        else:
            raise ValueError(
                f"warm-up rows are {old_data.shape[1]} bytes; expected "
                f"value_bytes={self.config.value_bytes} or "
                f"bucket_bytes={self.config.bucket_bytes}"
            )
        self.nvm.load_many(0, rows)
        self.retrain()

    def retrain(self) -> None:
        """Retrain the model on the whole zone and rebuild the pool.

        Live buckets stay out of the pool; free buckets are re-filed under
        their fresh labels.  The hash index is untouched — "we do not need
        to move or change anything in the hash table on NVM" (§V-C).
        """
        contents = self.nvm.contents
        self.manager.train(np.asarray(contents))
        assert self.manager.model is not None
        free = self.pool.free_addresses()
        n_clusters = self.manager.model.n_clusters
        self.pool = self._new_pool(n_clusters)
        if free.size:
            labels = self.manager.labels_for(np.asarray(contents)[free])
            self.pool.rebuild(labels, free)
        self.metrics.retrains += 1

    def _maybe_retrain(self) -> bool:
        self._mutations_since_check += 1
        if self._mutations_since_check < self.config.retrain_check_interval:
            return False
        self._mutations_since_check = 0
        if self.manager.should_retrain(self.live_fraction):
            self.retrain()
            return True
        return False

    # ------------------------------------------------------------------ #
    # K/V operations                                                      #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT (Algorithm 2).  Existing keys follow the update mode.

        A thin single-pair wrapper over :meth:`put_many`, so the
        sequential and batched paths are literally the same code.
        """
        return self.put_many([(key, value)])[0]

    def put_many(
        self,
        pairs: Iterable[tuple[bytes, bytes | np.ndarray]],
        *,
        unique: bool = False,
    ) -> list[OperationReport]:
        """Batched PUT: vectorized Algorithm 2 over many K/V pairs.

        The pipeline featurizes the whole batch as one matrix, predicts
        every cluster in one K-Means call, bulk-pops best-match addresses
        from the pool, and commits the data-comparison writes through the
        device's multi-row path — while leaving the store byte-identical
        (data zone, flag bitmap, index, wear counters, pool order) to
        calling :meth:`put` once per pair in order.  To guarantee that,
        the batch is internally chunked so a retrain check can only fire
        where the sequential loop would run it, and pairs whose key
        already exists are routed through the update mode exactly like a
        sequential PUT.  (The byte-identical guarantee holds for the raw
        bit/byte featurizers — the defaults; with PCA attached, batch and
        single-row features agree only to float tolerance, so a near-tie
        between centroids can steer a pair differently.)

        With ``unique=True`` the whole batch is validated first and a
        :class:`DuplicateKeyError` is raised — before anything is
        written — if any key already exists or appears twice in the
        batch (the batch form of :meth:`put_unique`).

        Value validation happens up front: an oversized value rejects the
        batch before any mutation.  A :class:`PoolExhaustedError`
        mid-batch commits the already-placed prefix (as the sequential
        loop would) before escaping; the escaping exception carries
        ``committed_reports`` — the in-order reports of every pair of
        *this call* that fully committed — so callers can retry exactly
        the remainder.  Returns one report per pair, in order.
        """
        items = [(self._normalize(key), value) for key, value in pairs]
        self._validate_values([value for _, value in items])
        if unique:
            seen: set[bytes] = set()
            for key, _ in items:
                if key in self.index or key in seen:
                    raise DuplicateKeyError(f"key {key!r} already exists")
                seen.add(key)
        reports: list[OperationReport] = []
        i, n = 0, len(items)
        while i < n:
            key, value = items[i]
            if key in self.index:
                reports.append(self._batch_step(reports, self.update, key, value))
                i += 1
                continue
            # Open a chunk of fresh, distinct keys.  Its length is capped
            # so the next retrain check can fire only at the chunk's last
            # operation — after every deferred write has landed — which
            # is exactly where the sequential loop would retrain.
            cap = self.config.retrain_check_interval - self._mutations_since_check
            chunk_keys, chunk_values, taken = [key], [value], {key}
            i += 1
            pending_update: tuple[bytes, bytes | np.ndarray] | None = None
            while i < n and len(chunk_keys) < cap:
                next_key, next_value = items[i]
                if next_key in taken:
                    break
                if next_key in self.index:
                    pending_update = (next_key, next_value)
                    i += 1
                    break
                chunk_keys.append(next_key)
                chunk_values.append(next_value)
                taken.add(next_key)
                i += 1
            reports.extend(
                self._batch_step(reports, self._put_chunk, chunk_keys, chunk_values)
            )
            if pending_update is not None:
                reports.append(
                    self._batch_step(reports, self.update, *pending_update)
                )
        return reports

    def _batch_step(self, reports, step, *args):
        """Run one piece of a batch call; on :class:`PoolExhaustedError`
        stamp the exception with ``committed_reports`` — everything this
        batch call committed so far (earlier chunks plus the failing
        chunk's flushed prefix) — so callers can see exactly which pairs
        landed before the pool ran dry."""
        try:
            return step(*args)
        except PoolExhaustedError as exc:
            exc.committed_reports = list(reports) + list(
                exc.__dict__.pop("chunk_reports", [])
            )
            raise

    def _put_chunk(
        self, keys: list[bytes], values: list[bytes | np.ndarray]
    ) -> list[OperationReport]:
        """Steered PUT of fresh, distinct keys as one vectorized batch.

        Caller guarantees: no key is in the index, keys are distinct, and
        the chunk is short enough that a retrain check can only fire at
        its last operation.  Deferring the data writes to one multi-row
        commit is safe because chunk writes only land on just-popped
        addresses, which are no longer candidates for later pops — so
        every Hamming probe sees exactly the bytes the sequential loop
        would have seen.
        """
        m = len(keys)
        payloads = self._encode_pairs(keys, values)
        predict_before = self.manager.predict_ns_total
        if self.manager.is_trained:
            orders = self.manager.fallback_order_many(payloads)
            clusters = np.ascontiguousarray(orders[:, 0], dtype=np.int64)
        else:
            orders = None
            clusters = np.zeros(m, dtype=np.int64)
        predict_ns = float(self.manager.predict_ns_total - predict_before) / m
        try:
            # The payload matrix goes straight to the probe engine, which
            # scores each row against its cluster's DRAM content cache —
            # no per-request scorer closures, no device gathers per pop.
            addresses, fallbacks = self.pool.get_best_many(
                clusters, payloads, self.config.probe_limit, orders
            )
        except PoolExhaustedError as exc:
            # Commit the prefix the pool did serve — the state a
            # sequential loop leaves behind when it dies on this PUT.
            done = int(exc.partial_addresses.size)
            exc.chunk_reports = (
                self._commit_puts(
                    keys[:done], payloads[:done], exc.partial_addresses,
                    exc.partial_fallbacks, clusters[:done], predict_ns,
                )
                if done
                else []
            )
            raise
        return self._commit_puts(
            keys, payloads, addresses, fallbacks, clusters, predict_ns
        )

    def _commit_puts(
        self,
        keys: list[bytes],
        payloads: np.ndarray,
        addresses: np.ndarray,
        fallbacks: np.ndarray,
        clusters: np.ndarray,
        predict_ns: float,
    ) -> list[OperationReport]:
        """Flush a chunk of placed PUTs: multi-row write, coalesced flag
        bits, per-op index inserts and retrain checks, reports."""
        m = len(keys)
        self.metrics.fallbacks += int(np.count_nonzero(fallbacks))
        write_reports = self.nvm.write_many(addresses, payloads[:m])
        self._set_valid_many(addresses, True)
        reports: list[OperationReport] = []
        for i in range(m):
            index_lines_before = self._index_lines_snapshot()
            self.index.put(keys[i], int(addresses[i]))
            index_lines = self._index_lines_snapshot() - index_lines_before
            self._live_count += 1
            self.metrics.puts += 1
            retrained = self._maybe_retrain()
            op = OperationReport(
                op="put",
                key=keys[i],
                address=int(addresses[i]),
                cluster=int(clusters[i]),
                fallback_used=bool(fallbacks[i]),
                bit_updates=write_reports[i].bit_updates,
                words_touched=write_reports[i].words_touched,
                lines_touched=write_reports[i].lines_touched,
                nvm_latency_ns=write_reports[i].latency_ns,
                predict_ns=predict_ns,
                index_lines=index_lines,
                retrained=retrained,
            )
            self.metrics.record(op)
            reports.append(op)
        return reports

    def get(self, key: bytes) -> bytes:
        """GET (§V-B4): index lookup, then a data-zone read."""
        key = self._normalize(key)
        address = self.index.get(key)
        bucket = self.nvm.read(address)
        self.metrics.gets += 1
        return bucket[self.config.key_bytes :].tobytes()

    def delete(self, key: bytes) -> OperationReport:
        """DELETE (Algorithm 3): flag reset + address recycling.

        A thin single-key wrapper over :meth:`delete_many`.
        """
        return self.delete_many([key])[0]

    def delete_many(self, keys: Iterable[bytes]) -> list[OperationReport]:
        """Batched DELETE: one vectorized re-labeling for many keys.

        Index removals and flag resets run per key in order; the freed
        buckets' contents are then gathered once, re-labeled in a single
        K-Means call (Algorithm 3, line 3, batched — deletes never change
        bucket contents, so the labels match per-key prediction exactly),
        and recycled into the pool in key order.  The result is
        state-identical to calling :meth:`delete` once per key.

        A missing key raises :class:`KeyNotFoundError` after the
        already-deleted prefix is fully recycled — the state a sequential
        loop leaves when it dies on that key.
        """
        normalized = [self._normalize(key) for key in keys]
        done: list[tuple[bytes, int]] = []
        error: KeyNotFoundError | None = None
        for key in normalized:
            try:
                address = self.index.delete(key)
            except KeyNotFoundError as exc:
                error = exc
                break
            self._set_valid(address, False)
            done.append((key, address))
        reports = self._commit_deletes(done)
        if error is not None:
            raise error
        return reports

    def _commit_deletes(
        self, done: list[tuple[bytes, int]]
    ) -> list[OperationReport]:
        """Re-label and recycle already-unindexed addresses, in order."""
        if not done:
            return []
        m = len(done)
        addresses = np.array([address for _, address in done], dtype=np.int64)
        predict_before = self.manager.predict_ns_total
        if self.manager.is_trained:
            clusters = self.manager.predict_many(self.nvm.peek_many(addresses))
        else:
            clusters = np.zeros(m, dtype=np.int64)
        predict_ns = float(self.manager.predict_ns_total - predict_before) / m
        reports: list[OperationReport] = []
        for i, (key, address) in enumerate(done):
            cluster = int(clusters[i])
            if cluster >= self.pool.n_clusters:
                cluster = 0
            self.pool.release(address, cluster)
            self._live_count -= 1
            self.metrics.deletes += 1
            op = OperationReport(
                op="delete",
                key=key,
                address=address,
                cluster=cluster,
                fallback_used=False,
                bit_updates=0,
                words_touched=0,
                lines_touched=0,
                nvm_latency_ns=0.0,
                predict_ns=predict_ns,
                index_lines=0,
                retrained=False,
            )
            self.metrics.record(op)
            reports.append(op)
        return reports

    def update(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """UPDATE (§V-B3): endurance (delete+put) or latency (in place)."""
        key = self._normalize(key)
        if key not in self.index:
            raise KeyNotFoundError(f"key {key!r} not found")
        self.metrics.updates += 1
        if self.config.update_mode == "endurance":
            self.delete(key)
            report = self.put(key, value)
            return report
        # Latency mode: straight through the index, in place, no steering.
        address = self.index.get(key)
        payload = self._encode_pair(key, value)
        report = self.nvm.write(address, payload)
        op = OperationReport(
            op="update",
            key=key,
            address=address,
            cluster=-1,
            fallback_used=False,
            bit_updates=report.bit_updates,
            words_touched=report.words_touched,
            lines_touched=report.lines_touched,
            nvm_latency_ns=report.latency_ns,
            predict_ns=0.0,
            index_lines=0,
            retrained=False,
        )
        self.metrics.record(op)
        return op

    def update_many(
        self, pairs: Iterable[tuple[bytes, bytes | np.ndarray]]
    ) -> list[OperationReport]:
        """Batched UPDATE, state-identical to :meth:`update` per pair.

        Endurance mode replays the sequential interleaving — delete one,
        steer one — but amortises every model call: the old contents are
        re-labeled and the new payloads' cluster orders predicted in two
        vectorized calls per chunk, and the steered writes are flushed
        through the multi-row device path.  Latency mode batches the
        in-place writes directly.  Chunks end at duplicate keys (a later
        update of the same key must observe the earlier one) and, in
        endurance mode, at retrain-check boundaries.

        A missing key raises :class:`KeyNotFoundError` after the
        already-updated prefix is fully applied, like a sequential loop.
        Value sizes are validated up front (an oversized value anywhere
        rejects the batch before any mutation).  A mid-batch
        :class:`PoolExhaustedError` carries ``committed_reports`` like
        :meth:`put_many`.  Returns the per-pair UPDATE reports in order.
        """
        items = [(self._normalize(key), value) for key, value in pairs]
        self._validate_values([value for _, value in items])
        endurance = self.config.update_mode == "endurance"
        reports: list[OperationReport] = []
        i, n = 0, len(items)
        while i < n:
            key, value = items[i]
            if key not in self.index:
                raise KeyNotFoundError(f"key {key!r} not found")
            cap = (
                self.config.retrain_check_interval - self._mutations_since_check
                if endurance
                else n
            )
            chunk: list[tuple[bytes, bytes | np.ndarray]] = [(key, value)]
            taken = {key}
            i += 1
            missing_key: bytes | None = None
            while i < n and len(chunk) < cap:
                next_key, next_value = items[i]
                if next_key in taken:
                    break
                if next_key not in self.index:
                    missing_key = next_key
                    i += 1
                    break
                chunk.append((next_key, next_value))
                taken.add(next_key)
                i += 1
            if endurance:
                reports.extend(
                    self._batch_step(reports, self._update_chunk_endurance, chunk)
                )
            else:
                reports.extend(self._update_chunk_latency(chunk))
            if missing_key is not None:
                raise KeyNotFoundError(f"key {missing_key!r} not found")
        return reports

    def _update_chunk_latency(
        self, chunk: list[tuple[bytes, bytes | np.ndarray]]
    ) -> list[OperationReport]:
        """In-place batch update: one multi-row write, no steering."""
        keys = [key for key, _ in chunk]
        payloads = self._encode_pairs(keys, [value for _, value in chunk])
        self.metrics.updates += len(chunk)
        addresses = np.array([self.index.get(key) for key in keys], dtype=np.int64)
        write_reports = self.nvm.write_many(addresses, payloads)
        reports: list[OperationReport] = []
        for i, write_report in enumerate(write_reports):
            op = OperationReport(
                op="update",
                key=keys[i],
                address=int(addresses[i]),
                cluster=-1,
                fallback_used=False,
                bit_updates=write_report.bit_updates,
                words_touched=write_report.words_touched,
                lines_touched=write_report.lines_touched,
                nvm_latency_ns=write_report.latency_ns,
                predict_ns=0.0,
                index_lines=0,
                retrained=False,
            )
            self.metrics.record(op)
            reports.append(op)
        return reports

    def _update_chunk_endurance(
        self, chunk: list[tuple[bytes, bytes | np.ndarray]]
    ) -> list[OperationReport]:
        """Delete-plus-steered-PUT over a chunk of distinct, present keys.

        The whole pool-visible event sequence — release ``i`` before pop
        ``i``, pops in key order — runs inside one
        :meth:`DynamicAddressPool.get_best_many` call with interleaved
        ``releases``, so the batch path has no per-op pop loop left while
        preserving the sequential interleaving exactly (a freed address
        is eligible for its own key's steered PUT and every later one).
        Predictions are batched up front — valid for the whole chunk
        because the model cannot retrain before the chunk's last
        operation, and bucket contents relevant to any probe are
        untouched until the deferred multi-row flush.  The store-side
        half of each delete (index removal, flag reset, counters) touches
        neither the pool nor the data zone, so replaying it after the
        bulk pop leaves identical state and identical accounting.
        """
        m = len(chunk)
        keys = [key for key, _ in chunk]
        payloads = self._encode_pairs(keys, [value for _, value in chunk])
        # Unaccounted gather of the soon-to-be-freed contents; the
        # accounted index/NVM traffic happens per-op in the replay,
        # exactly as in sequential updates.
        old_addresses = np.array([self.index.peek(key) for key in keys],
                                 dtype=np.int64)
        predict_before = self.manager.predict_ns_total
        if self.manager.is_trained:
            delete_clusters = self.manager.predict_many(
                self.nvm.peek_many(old_addresses)
            )
            orders = self.manager.fallback_order_many(payloads)
            put_clusters = np.ascontiguousarray(orders[:, 0], dtype=np.int64)
        else:
            delete_clusters = np.zeros(m, dtype=np.int64)
            orders = None
            put_clusters = np.zeros(m, dtype=np.int64)
        predict_ns = (
            float(self.manager.predict_ns_total - predict_before) / (2 * m)
        )

        releases: list[tuple[int, int]] = []
        for i in range(m):
            cluster = int(delete_clusters[i])
            if cluster >= self.pool.n_clusters:
                cluster = 0
            releases.append((int(old_addresses[i]), cluster))

        new_addresses = np.empty(m, dtype=np.int64)
        fallbacks = np.zeros(m, dtype=bool)
        try:
            new_addresses, fallbacks = self.pool.get_best_many(
                put_clusters, payloads, self.config.probe_limit, orders,
                releases=releases,
            )
        except PoolExhaustedError as exc:
            committed = int(exc.partial_addresses.size)
            new_addresses[:committed] = exc.partial_addresses
            fallbacks[:committed] = exc.partial_fallbacks
            # The failing request's release landed before its pop died,
            # so its delete half is replayed (and recorded) too.
            applied = int(getattr(exc, "releases_applied", committed))
            delete_reports = self._replay_update_deletes(
                keys, releases, applied, predict_ns
            )
            exc.chunk_reports = self._commit_update_chunk(
                keys, payloads, new_addresses, fallbacks, put_clusters,
                predict_ns, delete_reports, committed,
            )
            raise
        delete_reports = self._replay_update_deletes(keys, releases, m, predict_ns)
        return self._commit_update_chunk(
            keys, payloads, new_addresses, fallbacks, put_clusters,
            predict_ns, delete_reports, m,
        )

    def _replay_update_deletes(
        self,
        keys: list[bytes],
        releases: list[tuple[int, int]],
        count: int,
        predict_ns: float,
    ) -> list[OperationReport]:
        """Store-side half of the first ``count`` endurance-update
        deletes, whose pool-side releases the probe engine already
        interleaved with the pops: index removal, flag reset, and
        counters per key, in key order."""
        reports: list[OperationReport] = []
        for i in range(count):
            self.metrics.updates += 1
            address = int(self.index.delete(keys[i]))
            self._set_valid(address, False)
            self._live_count -= 1
            self.metrics.deletes += 1
            reports.append(
                OperationReport(
                    op="delete",
                    key=keys[i],
                    address=address,
                    cluster=releases[i][1],
                    fallback_used=False,
                    bit_updates=0,
                    words_touched=0,
                    lines_touched=0,
                    nvm_latency_ns=0.0,
                    predict_ns=predict_ns,
                    index_lines=0,
                    retrained=False,
                )
            )
            # Replay the PUT-side membership check of the sequential
            # path (update -> put -> "key in index", always False
            # here): on an NVM index that lookup is accounted read
            # traffic, and skipping it would make batched and
            # sequential runs report different index wear.
            _ = keys[i] in self.index
        return reports

    def _commit_update_chunk(
        self,
        keys: list[bytes],
        payloads: np.ndarray,
        new_addresses: np.ndarray,
        fallbacks: np.ndarray,
        put_clusters: np.ndarray,
        predict_ns: float,
        delete_reports: list[OperationReport],
        committed: int,
    ) -> list[OperationReport]:
        """Flush the placed prefix of an endurance-update chunk.

        Mirrors :meth:`_commit_puts` but interleaves each key's delete
        report before its put report, matching the sequential record
        order; a trailing delete whose steered PUT found the pool empty
        is still recorded (its delete *did* happen) before the error
        escapes.
        """
        self.metrics.fallbacks += int(np.count_nonzero(fallbacks[:committed]))
        write_reports = self.nvm.write_many(
            new_addresses[:committed], payloads[:committed]
        )
        if committed:
            self._set_valid_many(new_addresses[:committed], True)
        reports: list[OperationReport] = []
        for i in range(committed):
            self.metrics.record(delete_reports[i])
            index_lines_before = self._index_lines_snapshot()
            self.index.put(keys[i], int(new_addresses[i]))
            index_lines = self._index_lines_snapshot() - index_lines_before
            self._live_count += 1
            self.metrics.puts += 1
            retrained = self._maybe_retrain()
            op = OperationReport(
                op="put",
                key=keys[i],
                address=int(new_addresses[i]),
                cluster=int(put_clusters[i]),
                fallback_used=bool(fallbacks[i]),
                bit_updates=write_reports[i].bit_updates,
                words_touched=write_reports[i].words_touched,
                lines_touched=write_reports[i].lines_touched,
                nvm_latency_ns=write_reports[i].latency_ns,
                predict_ns=predict_ns,
                index_lines=index_lines,
                retrained=retrained,
            )
            self.metrics.record(op)
            reports.append(op)
        if len(delete_reports) > committed:
            self.metrics.record(delete_reports[committed])
        return reports

    # ------------------------------------------------------------------ #
    # recovery                                                            #
    # ------------------------------------------------------------------ #

    def crash(self) -> None:
        """Drop every DRAM structure, simulating a power failure."""
        self.manager = ModelManager(self.config)
        self.pool = self._new_pool(1)
        self.pool.rebuild(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        if self.config.index_placement == "dram":
            self.index = self._build_index()
        self._live_count = 0

    def recover(self) -> None:
        """Rebuild all DRAM state from NVM (§V-A1: the model "can be
        reconstructed after a crash").

        Scans the validity bitmap, re-inserts live keys into a fresh DRAM
        index (NVM indexes survive on their own), retrains the model on
        the zone, and refiles free addresses into the pool.
        """
        if self._valid_dram is not None:
            raise ReproError(
                "recover() needs the persistent validity bitmap; this store "
                "was built with persist_flags=False (the paper's Fig. 2a "
                "architecture, which cannot rebuild liveness after a crash)"
            )
        live = np.array(
            [a for a in range(self.config.num_buckets) if self._is_valid(a)],
            dtype=np.int64,
        )
        if self.config.index_placement == "dram" and len(self.index) == 0:
            for address in live:
                bucket = self.nvm.peek(int(address))
                key = bucket[: self.config.key_bytes].tobytes()
                self.index.put(key, int(address))
        self._live_count = int(live.size)

        contents = np.asarray(self.nvm.contents)
        self.manager.train(contents)
        assert self.manager.model is not None
        free_mask = np.ones(self.config.num_buckets, dtype=bool)
        free_mask[live] = False
        free = np.flatnonzero(free_mask)
        self.pool = self._new_pool(self.manager.model.n_clusters)
        if free.size:
            self.pool.rebuild(self.manager.labels_for(contents[free]), free)

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    def __contains__(self, key: bytes) -> bool:
        return self._normalize(key) in self.index

    def __len__(self) -> int:
        return self._live_count

    @property
    def live_fraction(self) -> float:
        """Occupied fraction of the data zone (checked against the load
        factor)."""
        return self._live_count / self.config.num_buckets

    def put_unique(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT that refuses to overwrite (for insert-only workloads).

        Shares :meth:`put_many`'s ``unique`` path, so the single and
        batched insert-only paths raise the same
        :class:`DuplicateKeyError` on the same (normalized) key, and a
        rejected insert never mutates the store.
        """
        return self.put_many([(key, value)], unique=True)[0]

"""Row retirement and patrol scrubbing for worn NVM media.

Companion to :class:`~repro.nvm.faults.FaultModel`: the fault model makes
cells fail, this module makes the store survive it.

* :class:`BadRowDirectory` — the persistent registry of retired rows,
  backed by a packed bitmap that lives inside the shared-memory zone
  layout (region ``"retired"``) so process workers and post-crash
  recovery all see the same condemnations.  A retired row is removed
  from the address pool's free lists and never handed out again.
* :class:`MediaScrubber` — DRAM-side patrol state: one CRC32 checksum
  per occupied row (refreshed on every verified write) plus a cursor, so
  :meth:`PNWStore.scrub` can patrol-read the zone incrementally and
  (a) relocate rows sitting on latent stuck cells before a future write
  tears them, and (b) alarm with :class:`~repro.errors.MediaError` if an
  occupied row's bytes ever contradict their checksum — which the
  write-verify path is designed to make impossible.
* :class:`BackgroundScrubber` — a daemon thread driving scrub passes on
  an interval, the "background" in background scrubber.

Checksums are volatile by design (a real controller would keep them in
per-row ECC metadata; we rebuild them from the media on recovery), so
:meth:`MediaScrubber.reset` is part of the store's crash surface while
the :class:`BadRowDirectory` explicitly is not.
"""

from __future__ import annotations

import threading
import zlib

import numpy as np

from ..errors import DegradedModeError, MediaError

__all__ = ["BadRowDirectory", "MediaScrubber", "BackgroundScrubber", "row_checksum"]


def row_checksum(row: np.ndarray) -> int:
    """CRC32 of one bucket's bytes (the scrubber's per-row checksum)."""
    return zlib.crc32(row.tobytes()) & 0xFFFFFFFF


class BadRowDirectory:
    """Packed bitmap of retired (condemned) row addresses.

    ``bitmap`` may be an externally owned ``uint8`` array of
    ``ceil(num_buckets / 8)`` bytes — typically the shared zone's
    ``"retired"`` region — in which case retirements recorded by one
    process are immediately visible to every other mapping.  Bit ``a``
    of the bitmap (little-endian within each byte) marks address ``a``.
    """

    def __init__(self, num_buckets: int, bitmap: np.ndarray | None = None) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        nbytes = -(-num_buckets // 8)
        if bitmap is None:
            bitmap = np.zeros(nbytes, dtype=np.uint8)
        if bitmap.shape != (nbytes,) or bitmap.dtype != np.uint8:
            raise ValueError(
                f"bitmap must be uint8 ({nbytes},), got {bitmap.dtype} {bitmap.shape}"
            )
        self.num_buckets = int(num_buckets)
        self._bits = bitmap

    def _locate(self, address: int) -> tuple[int, int]:
        if not 0 <= address < self.num_buckets:
            raise ValueError(
                f"address {address} out of range [0, {self.num_buckets})"
            )
        byte, bit = divmod(int(address), 8)
        return byte, 1 << bit

    def retire(self, address: int) -> bool:
        """Condemn ``address``; returns False if it was already retired."""
        byte, mask = self._locate(address)
        if self._bits[byte] & mask:
            return False
        self._bits[byte] |= mask
        return True

    def is_retired(self, address: int) -> bool:
        byte, mask = self._locate(address)
        return bool(self._bits[byte] & mask)

    @property
    def count(self) -> int:
        """Number of retired rows."""
        return int(np.unpackbits(self._bits).sum())

    def retired_addresses(self) -> np.ndarray:
        """Sorted int64 array of every condemned address."""
        flat = np.unpackbits(self._bits, bitorder="little")[: self.num_buckets]
        return np.flatnonzero(flat).astype(np.int64)


class MediaScrubber:
    """Volatile patrol state: per-row checksums and the patrol cursor.

    Owned by a media-enabled :class:`~repro.core.store.PNWStore`; the
    store's commit path calls :meth:`note` / :meth:`note_many` after
    every verified write so patrol reads always have a ground truth to
    compare against.  ``known`` guards rows whose checksum was never
    recorded (e.g. right after recovery rebuilt state from the media
    itself — those are re-trusted, not compared).
    """

    def __init__(self, num_buckets: int) -> None:
        self.num_buckets = int(num_buckets)
        self.row_sums = np.zeros(num_buckets, dtype=np.uint32)
        self.known = np.zeros(num_buckets, dtype=bool)
        self.cursor = 0

    def note(self, address: int, row: np.ndarray) -> None:
        """Record the checksum of a just-written (verified) row."""
        self.row_sums[address] = row_checksum(row)
        self.known[address] = True

    def note_many(self, addresses: np.ndarray, rows: np.ndarray) -> None:
        for address, row in zip(addresses, rows):
            self.note(int(address), row)

    def forget(self, address: int) -> None:
        """Drop the checksum of a deleted/relocated-away row."""
        self.known[address] = False

    def check(self, address: int, row: np.ndarray) -> bool:
        """True iff the row matches its recorded checksum (vacuously true
        for rows with no recorded checksum)."""
        if not self.known[address]:
            return True
        return self.row_sums[address] == row_checksum(row)

    def reset(self) -> None:
        """Crash surface: checksums and cursor are DRAM, so they die."""
        self.row_sums.fill(0)
        self.known.fill(False)
        self.cursor = 0

    def rebuild(self, nvm, addresses: np.ndarray) -> None:
        """Recovery: re-trust the media for the surviving live rows."""
        self.reset()
        for address in addresses:
            self.note(int(address), nvm.peek(int(address)))


class BackgroundScrubber:
    """Daemon thread calling ``store.scrub(rows_per_pass)`` on an interval.

    Media alarms (:class:`~repro.errors.MediaError`, including the
    degraded-mode subclass) don't kill the thread — they are latched on
    :attr:`last_error` for the owner to inspect, because a patrol loop
    that dies silently is worse than one that keeps patrolling a sick
    device.  Works against any store exposing ``scrub`` (plain, sharded,
    or tiered).
    """

    def __init__(self, store, *, interval: float = 0.05,
                 rows_per_pass: int | None = None) -> None:
        self.store = store
        self.interval = float(interval)
        self.rows_per_pass = rows_per_pass
        self.passes = 0
        self.last_error: MediaError | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundScrubber":
        if self._thread is not None:
            raise RuntimeError("scrubber already started")
        self._thread = threading.Thread(
            target=self._run, name="pnw-scrubber", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.store.scrub(self.rows_per_pass)
            except (DegradedModeError, MediaError) as exc:
                self.last_error = exc
            self.passes += 1

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "BackgroundScrubber":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""The dynamic address pool (paper §V-A2, Fig. 5, Algorithm 1).

One free-list per k-means cluster, holding the NVM addresses whose
*current contents* the model assigned to that cluster.  A PUT asks the
pool for an address from the predicted cluster; when that cluster is
exhausted the pool walks the caller-supplied fallback order (clusters
sorted by centroid distance, §V-C).  Deleted addresses are recycled into
the cluster of the data they still hold (Algorithm 3, lines 3-4).

The pool also keeps the paper's per-address availability flag — here a
boolean vector — which guards against double-release and lets the store
compute its live fraction against the load factor.

**The probe engine.**  PNW "determines the best memory location ... by
computing the minimum hamming distance between the new data and existing
free memory locations" (§IV), which makes per-candidate scoring the
store's hot loop.  The pool therefore keeps its probe state in
contiguous DRAM arrays rather than Python lists:

* each cluster's free list is an array-backed FIFO window
  (:class:`_ClusterFreeList`) with O(1) front pops and no per-pop
  list→array conversion;
* when built with a ``content_reader``, the pool maintains a **DRAM
  content cache** — one contiguous ``uint8`` matrix per cluster holding
  each free address's current device bytes, filled on :meth:`rebuild` /
  :meth:`release` and evicted on pop — so scoring a probe window is one
  vectorized popcount over contiguous rows instead of a gather through
  the device per pop;
* :meth:`get_best_many` groups a batch's requests by predicted cluster
  and scores each group against one cache window in a single cross-
  distance kernel, while still applying pops in strict request order.

Every engine path stays byte-identical to scoring candidates one pop at
a time through the device: popcounts are exact integers, ``argmin`` tie-
breaking sees candidates in the same FIFO order, and the fallback walk
and :class:`PoolExhaustedError` partial-prefix semantics are unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._bitops import hamming_cross, hamming_to_rows
from ..errors import PoolExhaustedError

__all__ = ["DynamicAddressPool"]

#: ``content_reader`` signature: gather the current device bytes of
#: ``addresses`` into the pre-allocated ``out`` rows (no accounting).
ContentReader = Callable[[np.ndarray, np.ndarray], None]


class _ClusterFreeList:
    """One cluster's free list: an array-backed FIFO window plus an
    optional row-aligned content cache.

    Valid entries live in ``addrs[head:tail]`` (and ``cache[head:tail]``
    row for row).  Front pops advance ``head`` in O(1); a mid-window pop
    shifts whichever side of the window is shorter, preserving FIFO
    order exactly like ``list.pop(i)``.  Appends compact or grow the
    backing arrays amortized O(1).
    """

    __slots__ = ("addrs", "cache", "head", "tail", "row_bytes")

    def __init__(self, row_bytes: int | None, capacity: int = 0) -> None:
        self.row_bytes = row_bytes
        self.addrs = np.empty(capacity, dtype=np.int64)
        self.cache = (
            np.empty((capacity, row_bytes), dtype=np.uint8)
            if row_bytes is not None
            else None
        )
        self.head = 0
        self.tail = 0

    @property
    def size(self) -> int:
        return self.tail - self.head

    def clear(self) -> None:
        self.head = self.tail = 0

    def reset(self, addresses: np.ndarray) -> int:
        """Replace the window with ``addresses``; returns its length.

        The caller fills ``cache[:n]`` afterwards (one bulk gather per
        cluster — the rebuild fill path).
        """
        n = int(addresses.size)
        if self.addrs.size < n:
            self.addrs = np.empty(n, dtype=np.int64)
            if self.row_bytes is not None:
                self.cache = np.empty((n, self.row_bytes), dtype=np.uint8)
        self.addrs[:n] = addresses
        self.head, self.tail = 0, n
        return n

    def window(self, limit: int) -> np.ndarray:
        """The first ``limit`` free addresses, FIFO order (a view)."""
        return self.addrs[self.head : self.head + limit]

    def cache_window(self, limit: int) -> np.ndarray:
        """Cached contents of the first ``limit`` addresses (a view)."""
        return self.cache[self.head : self.head + limit]

    def append(self, address: int) -> int:
        """Append at the tail; returns the row index for the cache fill."""
        if self.tail == self.addrs.size:
            self._make_room()
        self.addrs[self.tail] = address
        self.tail += 1
        return self.tail - 1

    def _make_room(self) -> None:
        capacity = self.addrs.size
        size = self.size
        if self.head > capacity // 2:
            # Over half the array is popped slack: compact in place.
            self.addrs[:size] = self.addrs[self.head : self.tail]
            if self.cache is not None:
                self.cache[:size] = self.cache[self.head : self.tail]
        else:
            new_capacity = max(8, capacity * 2, size + 1)
            addrs = np.empty(new_capacity, dtype=np.int64)
            addrs[:size] = self.addrs[self.head : self.tail]
            if self.cache is not None:
                cache = np.empty((new_capacity, self.row_bytes), dtype=np.uint8)
                cache[:size] = self.cache[self.head : self.tail]
                self.cache = cache
            self.addrs = addrs
        self.head, self.tail = 0, size

    def pop(self, offset: int) -> int:
        """Remove and return the address ``offset`` entries from the front,
        preserving the FIFO order of the rest (``list.pop(offset)``)."""
        h = self.head
        address = int(self.addrs[h + offset])
        back = self.size - offset - 1
        if offset <= back:
            if offset:
                self.addrs[h + 1 : h + offset + 1] = self.addrs[h : h + offset]
                if self.cache is not None:
                    self.cache[h + 1 : h + offset + 1] = self.cache[h : h + offset]
            self.head = h + 1
        else:
            i = h + offset
            self.addrs[i : self.tail - 1] = self.addrs[i + 1 : self.tail]
            if self.cache is not None:
                self.cache[i : self.tail - 1] = self.cache[i + 1 : self.tail]
            self.tail -= 1
        return address

    def to_list(self) -> list[int]:
        return self.addrs[self.head : self.tail].tolist()


class DynamicAddressPool:
    """Per-cluster free-lists over a fixed address range."""

    def __init__(
        self,
        n_clusters: int,
        num_addresses: int,
        *,
        content_reader: ContentReader | None = None,
        row_bytes: int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if num_addresses < 1:
            raise ValueError(f"num_addresses must be >= 1, got {num_addresses}")
        if (content_reader is None) != (row_bytes is None):
            raise ValueError(
                "content_reader and row_bytes must be given together"
            )
        if row_bytes is not None and row_bytes < 1:
            raise ValueError(f"row_bytes must be >= 1, got {row_bytes}")
        self.n_clusters = n_clusters
        self.num_addresses = num_addresses
        self._reader = content_reader
        self._row_bytes = row_bytes
        self._lists = [_ClusterFreeList(row_bytes) for _ in range(n_clusters)]
        self._available = np.zeros(num_addresses, dtype=bool)
        self._cluster_of = np.full(num_addresses, -1, dtype=np.int64)
        self._blocked = np.zeros(num_addresses, dtype=bool)

    # ------------------------------------------------------------------ #

    @property
    def has_content_cache(self) -> bool:
        """Whether the probe engine can score payloads from DRAM."""
        return self._reader is not None

    @property
    def _free_lists(self) -> list[list[int]]:
        """Per-cluster windows as plain lists — the shape the pre-engine
        implementation stored directly; kept for tests and debugging."""
        return [free_list.to_list() for free_list in self._lists]

    def cache_rows(self, cluster: int) -> tuple[np.ndarray, np.ndarray]:
        """One cluster's ``(addresses, cached_contents)`` — copies, row
        ``i`` of the matrix caching address ``i``'s device bytes."""
        if self._reader is None:
            raise ValueError("this pool was built without a content cache")
        free_list = self._lists[cluster]
        size = free_list.size
        return free_list.window(size).copy(), free_list.cache_window(size).copy()

    def rebuild(self, labels: np.ndarray, free_addresses: np.ndarray) -> None:
        """Reset the pool from a fresh clustering (Algorithm 1).

        ``labels[i]`` is the cluster of address ``free_addresses[i]``.
        Addresses not listed become unavailable (they hold live data).
        With a content cache, every cluster's window is filled with its
        addresses' current device bytes in one bulk gather.
        """
        labels = np.asarray(labels, dtype=np.int64)
        free_addresses = np.asarray(free_addresses, dtype=np.int64)
        if labels.shape != free_addresses.shape:
            raise ValueError(
                f"labels {labels.shape} and addresses {free_addresses.shape} differ"
            )
        if labels.size and not (0 <= labels.min() and labels.max() < self.n_clusters):
            raise ValueError("label out of cluster range")
        if free_addresses.size and self._blocked.any():
            keep = ~self._blocked[free_addresses]
            free_addresses = free_addresses[keep]
            labels = labels[keep]
        for free_list in self._lists:
            free_list.clear()
        self._available[:] = False
        self._cluster_of[:] = -1
        if not free_addresses.size:
            return
        self._available[free_addresses] = True
        self._cluster_of[free_addresses] = labels
        for label in range(self.n_clusters):
            addresses = free_addresses[labels == label]
            if not addresses.size:
                continue
            free_list = self._lists[label]
            n = free_list.reset(addresses)
            if free_list.cache is not None:
                self._reader(addresses, free_list.cache[:n])

    def _candidates(
        self, cluster: int, fallback_order: np.ndarray | None
    ) -> list[int]:
        """Clusters to try, in order (predicted first, then the walk)."""
        if fallback_order is not None:
            return list(np.asarray(fallback_order, dtype=np.int64))
        # Still scan the others so a single-cluster drought does not
        # fail a request the pool could serve.
        return [cluster] + [c for c in range(self.n_clusters) if c != cluster]

    def _pop_at(self, free_list: _ClusterFreeList, offset: int) -> int:
        address = free_list.pop(offset)
        self._available[address] = False
        self._cluster_of[address] = -1
        return address

    def _check_payload(self, payload: np.ndarray) -> np.ndarray:
        if self._reader is None:
            raise ValueError(
                "payload scoring needs the content cache; build the pool "
                "with content_reader/row_bytes (or pass a scorer callable)"
            )
        payload = np.ascontiguousarray(payload, dtype=np.uint8)
        if payload.shape != (self._row_bytes,):
            raise ValueError(
                f"payload shape {payload.shape} does not match cached row "
                f"width ({self._row_bytes},)"
            )
        return payload

    def _check_payloads(self, payloads: np.ndarray, n: int) -> np.ndarray:
        if self._reader is None:
            raise ValueError(
                "payload scoring needs the content cache; build the pool "
                "with content_reader/row_bytes (or pass a scorer callable)"
            )
        payloads = np.ascontiguousarray(np.atleast_2d(payloads), dtype=np.uint8)
        if payloads.shape != (n, self._row_bytes):
            raise ValueError(
                f"payloads shape {payloads.shape} does not match "
                f"({n}, {self._row_bytes})"
            )
        return payloads

    def get(self, cluster: int, fallback_order: np.ndarray | None = None) -> int:
        """Pop a free address from ``cluster`` (Algorithm 2, line 2).

        Falls back along ``fallback_order`` (nearest-centroid-first) when
        the cluster is empty; raises :class:`PoolExhaustedError` when no
        cluster has a free address.
        """
        for candidate in self._candidates(cluster, fallback_order):
            free_list = self._lists[int(candidate)]
            if free_list.size:
                return self._pop_at(free_list, 0)
        raise PoolExhaustedError(
            f"no free address in any of {self.n_clusters} clusters"
        )

    def get_best(
        self,
        cluster: int,
        scorer: Callable[[np.ndarray], np.ndarray] | np.ndarray,
        probe_limit: int,
        fallback_order: np.ndarray | None = None,
    ) -> int:
        """Pop the *best-matching* free address of ``cluster`` (§IV).

        The paper's PNW "determines the best memory location ... by
        computing the minimum hamming distance between the new data and
        existing free memory locations"; clustering bounds the search to
        one free list.  ``scorer`` is either the payload itself (a packed
        ``uint8`` buffer, scored against the DRAM content cache — the
        engine path) or a callable mapping candidate addresses to
        distances (callers with exotic metrics).  At most ``probe_limit``
        candidates from the front of the free list are scored (the whole
        list with ``probe_limit < 0``).  ``probe_limit == 0`` degrades to
        the plain FIFO pop of Algorithm 2's pseudocode — kept as an
        ablation.
        """
        if probe_limit == 0:
            return self.get(cluster, fallback_order)
        payload = scorer if isinstance(scorer, np.ndarray) else None
        if payload is not None:
            payload = self._check_payload(payload)
        for candidate in self._candidates(cluster, fallback_order):
            free_list = self._lists[int(candidate)]
            size = free_list.size
            if not size:
                continue
            limit = size if probe_limit < 0 else min(probe_limit, size)
            if payload is not None:
                scores = hamming_to_rows(free_list.cache_window(limit), payload)
            else:
                # Copy so a mutating scorer cannot corrupt the window
                # (cold path; the hot path passes payload matrices).
                scores = scorer(free_list.window(limit).copy())
            return self._pop_at(free_list, int(np.argmin(scores)))
        raise PoolExhaustedError(
            f"no free address in any of {self.n_clusters} clusters"
        )

    def get_best_many(
        self,
        clusters: np.ndarray,
        scorer: Callable[[int, np.ndarray], np.ndarray] | np.ndarray,
        probe_limit: int,
        fallback_orders: Sequence[np.ndarray] | np.ndarray | None = None,
        releases: Sequence[tuple[int, int] | None] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pop one best-matching free address per request, in order.

        The bulk side of Algorithm 2, line 2: ``clusters[i]`` is request
        ``i``'s predicted cluster, ``fallback_orders[i]`` its
        nearest-first cluster order, and ``scorer`` is either the
        ``(n, row_bytes)`` payload matrix (the engine path: row ``i`` is
        scored against the DRAM content cache, with requests grouped by
        cluster so one cross-distance kernel covers a whole group) or a
        callable ``scorer(i, addrs)`` returning request ``i``'s distances
        to candidate ``addrs``.  Pops are applied strictly in request
        order, so the result — free-list order included — is identical
        to calling :meth:`get_best` once per request.

        ``releases[i]``, when given, is an ``(address, cluster)`` pair
        recycled into the pool immediately *before* request ``i``'s pop —
        the delete half of an endurance-mode UPDATE batch, interleaved
        exactly like the sequential delete-then-put loop (a released
        address is eligible for its own and every later request).

        Returns ``(addresses, fallback_used)`` where ``fallback_used[i]``
        records whether request ``i`` found its predicted cluster empty
        (the condition the store counts as a fallback).  When the pool
        runs dry mid-batch the raised :class:`PoolExhaustedError` carries
        ``partial_addresses`` / ``partial_fallbacks`` with the
        already-popped prefix (plus ``releases_applied`` when releases
        were interleaved), which stays popped — exactly like a
        sequential loop that dies on request ``i``.
        """
        clusters = np.asarray(clusters, dtype=np.int64)
        n = clusters.size
        if releases is not None and len(releases) != n:
            raise ValueError(
                f"{len(releases)} releases for {n} requests"
            )
        addresses = np.empty(n, dtype=np.int64)
        fallback_used = np.zeros(n, dtype=bool)
        payloads = scorer if isinstance(scorer, np.ndarray) else None
        if payloads is not None and n:
            payloads = self._check_payloads(payloads, n)

        # Cluster grouping: score every same-cluster request of the batch
        # against one snapshot of that cluster's cache window in a single
        # kernel.  Valid because without releases the window only loses
        # rows during the call (pops), never gains them, and a surviving
        # row's distance is position-independent; ``live`` tracks which
        # snapshot rows remain, in FIFO order.  With a positive
        # probe_limit no request can ever probe past snapshot row
        # ``probe_limit + n - 1`` (every probe window starts at the
        # current head, and at most ``n`` pops advance it), so the
        # snapshot — and the kernel — are capped there.
        precomputed: dict[int, list] = {}
        row_of: dict[int, int] = {}
        if payloads is not None and probe_limit != 0 and releases is None and n > 1:
            groups: dict[int, list[int]] = {}
            for i in range(n):
                groups.setdefault(int(clusters[i]), []).append(i)
            for cluster, members in groups.items():
                free_list = self._lists[cluster]
                size = free_list.size
                if size == 0 or len(members) < 2:
                    continue
                snap = size if probe_limit < 0 else min(size, probe_limit + n)
                distances = self._cross_distances(
                    free_list.cache_window(snap), payloads[members]
                )
                precomputed[cluster] = [
                    distances, np.arange(snap, dtype=np.int64)
                ]
                for row, i in enumerate(members):
                    row_of[i] = row

        for i in range(n):
            if releases is not None and releases[i] is not None:
                released_address, released_cluster = releases[i]
                self.release(int(released_address), int(released_cluster))
            cluster = int(clusters[i])
            fallback_used[i] = self._lists[cluster].size == 0
            order = None if fallback_orders is None else fallback_orders[i]
            popped = False
            if probe_limit == 0:
                try:
                    addresses[i] = self.get(cluster, order)
                    popped = True
                except PoolExhaustedError as exc:
                    self._stamp_partial(exc, addresses, fallback_used, i, releases)
                    raise
            else:
                for candidate in self._candidates(cluster, order):
                    candidate = int(candidate)
                    free_list = self._lists[candidate]
                    size = free_list.size
                    if not size:
                        continue
                    limit = size if probe_limit < 0 else min(probe_limit, size)
                    entry = precomputed.get(candidate)
                    if entry is not None and candidate == cluster:
                        # A precomputed entry for the predicted cluster
                        # implies request i is one of its group members.
                        scores = entry[0][row_of[i], entry[1][:limit]]
                    elif payloads is not None:
                        scores = hamming_to_rows(
                            free_list.cache_window(limit), payloads[i]
                        )
                    else:
                        scores = scorer(i, free_list.window(limit).copy())
                    best = int(np.argmin(scores))
                    addresses[i] = self._pop_at(free_list, best)
                    if entry is not None:
                        entry[1] = np.delete(entry[1], best)
                    popped = True
                    break
            if not popped and probe_limit != 0:
                exc = PoolExhaustedError(
                    f"no free address in any of {self.n_clusters} clusters"
                )
                self._stamp_partial(exc, addresses, fallback_used, i, releases)
                raise exc
        return addresses, fallback_used

    @staticmethod
    def _stamp_partial(exc, addresses, fallback_used, i, releases) -> None:
        exc.partial_addresses = addresses[:i].copy()
        exc.partial_fallbacks = fallback_used[:i].copy()
        if releases is not None:
            exc.releases_applied = i + 1

    @staticmethod
    def _cross_distances(window: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Group-vs-window distance matrix, chunked to bound the XOR
        intermediate (``chunk * window_rows * row_bytes``) at ~4 MB."""
        m, width = rows.shape
        size = window.shape[0]
        chunk = max(1, (4 << 20) // max(1, size * width))
        if chunk >= m:
            return hamming_cross(window, rows)
        distances = np.empty((m, size), dtype=np.int32)
        for start in range(0, m, chunk):
            distances[start : start + chunk] = hamming_cross(
                window, rows[start : start + chunk]
            )
        return distances

    def release(self, address: int, cluster: int) -> None:
        """Recycle a freed address into ``cluster`` (Algorithm 3, line 4).

        With a content cache the address's current device bytes are read
        into its cache row — the one per-release gather that keeps every
        later probe of this address DRAM-resident.
        """
        if not 0 <= address < self.num_addresses:
            raise ValueError(f"address {address} out of range")
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        if self._available[address]:
            raise ValueError(f"address {address} is already in the pool")
        if self._blocked[address]:
            raise ValueError(f"address {address} is blocked (retired media row)")
        free_list = self._lists[cluster]
        row = free_list.append(int(address))
        if free_list.cache is not None:
            self._reader(
                np.array([address], dtype=np.int64),
                free_list.cache[row : row + 1],
            )
        self._available[address] = True
        self._cluster_of[address] = cluster

    def block(self, address: int) -> None:
        """Permanently remove ``address`` from circulation (media retirement).

        If the address is currently free it is pulled out of its free
        list; either way it can never be released back or handed out
        again — :meth:`rebuild` filters it, :meth:`release` rejects it.
        Blocking is per-pool-instance state: the store re-applies its
        :class:`~repro.core.media.BadRowDirectory` after every pool
        construction, which is what makes retirement survive retrain and
        recovery.
        """
        if not 0 <= address < self.num_addresses:
            raise ValueError(f"address {address} out of range")
        self._blocked[address] = True
        if not self._available[address]:
            return
        cluster = int(self._cluster_of[address])
        free_list = self._lists[cluster]
        window = free_list.window(free_list.size)
        offsets = np.flatnonzero(window == address)
        if offsets.size:
            self._pop_at(free_list, int(offsets[0]))

    def block_many(self, addresses: np.ndarray | Sequence[int]) -> None:
        """Bulk :meth:`block` (re-applying a retirement directory)."""
        for address in np.asarray(addresses, dtype=np.int64):
            self.block(int(address))

    def is_blocked(self, address: int) -> bool:
        return bool(self._blocked[address])

    # ------------------------------------------------------------------ #

    def __contains__(self, address: int) -> bool:
        return bool(self._available[address])

    @property
    def total_free(self) -> int:
        """Free addresses across all clusters."""
        return int(self._available.sum())

    @property
    def free_fraction(self) -> float:
        """Fraction of the address range currently free."""
        return self.total_free / self.num_addresses

    def cluster_sizes(self) -> list[int]:
        """Free-list length per cluster (Fig. 5's table column)."""
        return [free_list.size for free_list in self._lists]

    def cluster_size(self, cluster: int) -> int:
        """Free-list length of one cluster (the hot-path fallback check)."""
        return self._lists[cluster].size

    def free_addresses(self) -> np.ndarray:
        """All currently free addresses (sorted)."""
        return np.flatnonzero(self._available)

    def cluster_of(self, address: int) -> int:
        """Cluster a free address is filed under (-1 if not in the pool)."""
        return int(self._cluster_of[address])

"""The dynamic address pool (paper §V-A2, Fig. 5, Algorithm 1).

One free-list per k-means cluster, holding the NVM addresses whose
*current contents* the model assigned to that cluster.  A PUT asks the
pool for an address from the predicted cluster; when that cluster is
exhausted the pool walks the caller-supplied fallback order (clusters
sorted by centroid distance, §V-C).  Deleted addresses are recycled into
the cluster of the data they still hold (Algorithm 3, lines 3-4).

The pool also keeps the paper's per-address availability flag — here a
boolean vector — which guards against double-release and lets the store
compute its live fraction against the load factor.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import PoolExhaustedError

__all__ = ["DynamicAddressPool"]


class DynamicAddressPool:
    """Per-cluster free-lists over a fixed address range."""

    def __init__(self, n_clusters: int, num_addresses: int) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if num_addresses < 1:
            raise ValueError(f"num_addresses must be >= 1, got {num_addresses}")
        self.n_clusters = n_clusters
        self.num_addresses = num_addresses
        self._free_lists: list[list[int]] = [[] for _ in range(n_clusters)]
        self._available = np.zeros(num_addresses, dtype=bool)
        self._cluster_of = np.full(num_addresses, -1, dtype=np.int64)

    # ------------------------------------------------------------------ #

    def rebuild(self, labels: np.ndarray, free_addresses: np.ndarray) -> None:
        """Reset the pool from a fresh clustering (Algorithm 1).

        ``labels[i]`` is the cluster of address ``free_addresses[i]``.
        Addresses not listed become unavailable (they hold live data).
        """
        labels = np.asarray(labels, dtype=np.int64)
        free_addresses = np.asarray(free_addresses, dtype=np.int64)
        if labels.shape != free_addresses.shape:
            raise ValueError(
                f"labels {labels.shape} and addresses {free_addresses.shape} differ"
            )
        if labels.size and not (0 <= labels.min() and labels.max() < self.n_clusters):
            raise ValueError("label out of cluster range")
        for free_list in self._free_lists:
            free_list.clear()
        self._available[:] = False
        self._cluster_of[:] = -1
        for address, label in zip(free_addresses, labels):
            self._free_lists[label].append(int(address))
            self._available[address] = True
            self._cluster_of[address] = label

    def get(self, cluster: int, fallback_order: np.ndarray | None = None) -> int:
        """Pop a free address from ``cluster`` (Algorithm 2, line 2).

        Falls back along ``fallback_order`` (nearest-centroid-first) when
        the cluster is empty; raises :class:`PoolExhaustedError` when no
        cluster has a free address.
        """
        candidates = (
            [cluster]
            if fallback_order is None
            else list(np.asarray(fallback_order, dtype=np.int64))
        )
        if fallback_order is None:
            # Still scan the others so a single-cluster drought does not
            # fail a request the pool could serve.
            candidates += [c for c in range(self.n_clusters) if c != cluster]
        for candidate in candidates:
            free_list = self._free_lists[int(candidate)]
            if free_list:
                address = free_list.pop(0)
                self._available[address] = False
                self._cluster_of[address] = -1
                return address
        raise PoolExhaustedError(
            f"no free address in any of {self.n_clusters} clusters"
        )

    def get_best(
        self,
        cluster: int,
        scorer: Callable[[np.ndarray], np.ndarray],
        probe_limit: int,
        fallback_order: np.ndarray | None = None,
    ) -> int:
        """Pop the *best-matching* free address of ``cluster`` (§IV).

        The paper's PNW "determines the best memory location ... by
        computing the minimum hamming distance between the new data and
        existing free memory locations"; clustering bounds the search to
        one free list.  ``scorer`` maps candidate addresses to Hamming
        distances; at most ``probe_limit`` candidates from the front of
        the free list are scored (the whole list with ``probe_limit < 0``).
        ``probe_limit == 0`` degrades to the plain FIFO pop of
        Algorithm 2's pseudocode — kept as an ablation.
        """
        if probe_limit == 0:
            return self.get(cluster, fallback_order)
        candidates = (
            [cluster]
            if fallback_order is None
            else list(np.asarray(fallback_order, dtype=np.int64))
        )
        if fallback_order is None:
            candidates += [c for c in range(self.n_clusters) if c != cluster]
        for candidate in candidates:
            free_list = self._free_lists[int(candidate)]
            if not free_list:
                continue
            probes = free_list if probe_limit < 0 else free_list[:probe_limit]
            scores = scorer(np.asarray(probes, dtype=np.int64))
            best = int(np.argmin(scores))
            address = free_list.pop(best)
            self._available[address] = False
            self._cluster_of[address] = -1
            return address
        raise PoolExhaustedError(
            f"no free address in any of {self.n_clusters} clusters"
        )

    def get_best_many(
        self,
        clusters: np.ndarray,
        scorer: Callable[[int, np.ndarray], np.ndarray],
        probe_limit: int,
        fallback_orders: Sequence[np.ndarray] | np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pop one best-matching free address per request, in order.

        The bulk side of Algorithm 2, line 2: ``clusters[i]`` is request
        ``i``'s predicted cluster, ``fallback_orders[i]`` its
        nearest-first cluster order, and ``scorer(i, addrs)`` must return
        the Hamming distances of request ``i``'s payload to the candidate
        ``addrs``.  Pops are applied strictly in request order, so the
        result — free-list order included — is identical to calling
        :meth:`get_best` once per request.

        Returns ``(addresses, fallback_used)`` where ``fallback_used[i]``
        records whether request ``i`` found its predicted cluster empty
        (the condition the store counts as a fallback).  When the pool
        runs dry mid-batch the raised :class:`PoolExhaustedError` carries
        ``partial_addresses`` / ``partial_fallbacks`` with the
        already-popped prefix, which stays popped — exactly like a
        sequential loop that dies on request ``i``.
        """
        clusters = np.asarray(clusters, dtype=np.int64)
        n = clusters.size
        addresses = np.empty(n, dtype=np.int64)
        fallback_used = np.zeros(n, dtype=bool)
        for i in range(n):
            cluster = int(clusters[i])
            fallback_used[i] = len(self._free_lists[cluster]) == 0
            order = None if fallback_orders is None else fallback_orders[i]
            try:
                addresses[i] = self.get_best(
                    cluster,
                    lambda addrs, i=i: scorer(i, addrs),
                    probe_limit,
                    order,
                )
            except PoolExhaustedError as exc:
                exc.partial_addresses = addresses[:i].copy()
                exc.partial_fallbacks = fallback_used[:i].copy()
                raise
        return addresses, fallback_used

    def release(self, address: int, cluster: int) -> None:
        """Recycle a freed address into ``cluster`` (Algorithm 3, line 4)."""
        if not 0 <= address < self.num_addresses:
            raise ValueError(f"address {address} out of range")
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(f"cluster {cluster} out of range")
        if self._available[address]:
            raise ValueError(f"address {address} is already in the pool")
        self._free_lists[cluster].append(int(address))
        self._available[address] = True
        self._cluster_of[address] = cluster

    # ------------------------------------------------------------------ #

    def __contains__(self, address: int) -> bool:
        return bool(self._available[address])

    @property
    def total_free(self) -> int:
        """Free addresses across all clusters."""
        return int(self._available.sum())

    @property
    def free_fraction(self) -> float:
        """Fraction of the address range currently free."""
        return self.total_free / self.num_addresses

    def cluster_sizes(self) -> list[int]:
        """Free-list length per cluster (Fig. 5's table column)."""
        return [len(free_list) for free_list in self._free_lists]

    def cluster_size(self, cluster: int) -> int:
        """Free-list length of one cluster (the hot-path fallback check)."""
        return len(self._free_lists[cluster])

    def free_addresses(self) -> np.ndarray:
        """All currently free addresses (sorted)."""
        return np.flatnonzero(self._available)

    def cluster_of(self, address: int) -> int:
        """Cluster a free address is filed under (-1 if not in the pool)."""
        return int(self._cluster_of[address])

"""Encoding NVM bucket contents as clustering feature vectors (§V-A1).

The paper encodes "each memory location ... as a vector of bits, each of
which is used as a feature/dimension", optionally compressed with PCA for
large buckets.  Two featurizers implement that trade-off:

* ``BitFeaturizer`` — one 0/1 feature per bit.  Squared Euclidean
  distance between bit vectors *equals* Hamming distance, so k-means
  clusters exactly the quantity PNW minimises.  Cost grows with
  ``8 * bucket_bytes`` features.
* ``ByteFeaturizer`` — one 0..255 feature per byte.  8x fewer features;
  Euclidean proximity of byte values correlates with shared high-order
  bits, a good surrogate for Hamming proximity on structured data (and
  the reason the paper reaches for PCA rather than raw bits on 4 KB
  pages).

Either can be composed with :class:`~repro.ml.pca.PCA`.
"""

from __future__ import annotations

import numpy as np

from .._bitops import unpack_bits
from ..errors import NotFittedError
from ..ml.pca import PCA

__all__ = ["Featurizer", "BitFeaturizer", "ByteFeaturizer", "make_featurizer"]


class Featurizer:
    """Base: raw-encode bucket bytes, then optionally project with PCA."""

    def __init__(self, pca_components: int | None = None, seed: int | None = None) -> None:
        self._pca = (
            PCA(n_components=pca_components, seed=seed)
            if pca_components is not None
            else None
        )
        self._fitted = False

    def _encode(self, rows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def fit(self, rows: np.ndarray) -> "Featurizer":
        """Fit the (optional) PCA on raw encodings of ``rows``."""
        encoded = self._encode(np.atleast_2d(rows))
        if self._pca is not None:
            self._pca.fit(encoded)
        self._fitted = True
        return self

    def transform(self, rows: np.ndarray) -> np.ndarray:
        """Feature matrix for packed byte rows ``(n, bucket_bytes)``."""
        if not self._fitted:
            raise NotFittedError("call fit() before transform()")
        encoded = self._encode(np.atleast_2d(rows))
        if self._pca is not None:
            return self._pca.transform(encoded)
        return encoded

    def fit_transform(self, rows: np.ndarray) -> np.ndarray:
        """Fit and transform in one pass."""
        return self.fit(rows).transform(rows)

    def transform_one(self, row: np.ndarray) -> np.ndarray:
        """Feature vector of a single bucket (the PUT hot path)."""
        return self.transform(row[None, :])[0]

    def transform_many(self, rows: np.ndarray) -> np.ndarray:
        """Feature matrix of a batch of buckets (the batched PUT path).

        Encoding is row-wise, so for the raw featurizers each row's
        features are bit-identical to :meth:`transform_one` on that row;
        with PCA attached, BLAS may round matrix and vector products
        differently, so batch and single features agree only to float
        tolerance.
        """
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {rows.shape}")
        return self.transform(rows)


class BitFeaturizer(Featurizer):
    """One feature per bit: exact Hamming geometry."""

    name = "bit"

    def _encode(self, rows: np.ndarray) -> np.ndarray:
        return unpack_bits(np.ascontiguousarray(rows, dtype=np.uint8)).astype(
            np.float64
        )


class ByteFeaturizer(Featurizer):
    """One feature per byte: compact surrogate for large buckets."""

    name = "byte"

    def _encode(self, rows: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(rows, dtype=np.uint8).astype(np.float64)


def make_featurizer(
    kind: str, pca_components: int | None = None, seed: int | None = None
) -> Featurizer:
    """Build a featurizer by name (``"bit"`` or ``"byte"``)."""
    if kind == "bit":
        return BitFeaturizer(pca_components, seed)
    if kind == "byte":
        return ByteFeaturizer(pca_components, seed)
    raise ValueError(f"unknown featurizer {kind!r}")

"""PNW core: the paper's contribution (store, pool, model lifecycle)."""

from .address_pool import DynamicAddressPool
from .config import PNWConfig
from .featurizer import BitFeaturizer, ByteFeaturizer, Featurizer, make_featurizer
from .media import BackgroundScrubber, BadRowDirectory, MediaScrubber
from .model_manager import ModelManager
from .store import OperationReport, PNWStore, StoreMetrics

__all__ = [
    "PNWConfig",
    "PNWStore",
    "OperationReport",
    "StoreMetrics",
    "DynamicAddressPool",
    "ModelManager",
    "BadRowDirectory",
    "MediaScrubber",
    "BackgroundScrubber",
    "Featurizer",
    "BitFeaturizer",
    "ByteFeaturizer",
    "make_featurizer",
]

"""Model lifecycle: training, prediction, and load-factor-driven retraining.

The manager owns the featurizer + k-means pair (both DRAM-resident and
crash-reconstructable, §V-A1), tracks prediction latency — the overhead
the paper reports alongside Fig. 6 — and decides *when* to retrain: the
load factor warns "that the system will need to be retrained in the near
future" (§V-C), and the Fig. 10 experiment retrains explicitly at a phase
boundary.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import NotFittedError
from ..ml.kmeans import KMeans, MiniBatchKMeans
from .config import PNWConfig
from .featurizer import Featurizer, make_featurizer

__all__ = ["ModelManager"]


class ModelManager:
    """Featurizer + k-means with retraining policy and latency accounting."""

    def __init__(self, config: PNWConfig) -> None:
        self.config = config
        self.model: KMeans | None = None
        self.featurizer: Featurizer | None = None
        self.model_version = 0
        self.train_count = 0
        self.refresh_count = 0
        self.predict_count = 0
        self.predict_ns_total = 0
        self.last_train_seconds = 0.0

    @property
    def is_trained(self) -> bool:
        """Whether a model is available for predictions."""
        return self.model is not None

    # ------------------------------------------------------------------ #

    def train(self, rows: np.ndarray) -> None:
        """(Re)train on the current data-zone contents (Algorithm 1).

        ``rows`` is the packed ``(n, bucket_bytes)`` matrix of bucket
        contents.  A fresh featurizer is fitted alongside the model so PCA
        axes track the current data distribution.

        With ``refresh_mode="incremental"`` a *retrain* of an
        already-trained manager is routed through :meth:`refresh`
        instead: the load-factor policy's periodic retrains (§V-C) then
        nudge the existing centroids with mini-batch K-Means rather than
        refitting from scratch, so they never stall the write path on a
        full Lloyd run.  The first training is always full.
        """
        if (
            self.config.refresh_mode == "incremental"
            and self.model is not None
            and self.featurizer is not None
        ):
            self.refresh(rows)
            return
        rows = np.atleast_2d(np.ascontiguousarray(rows, dtype=np.uint8))
        n_clusters = min(self.config.n_clusters, rows.shape[0])
        started = time.perf_counter()
        featurizer = make_featurizer(
            self.config.resolved_featurizer,
            self.config.pca_components,
            self.config.seed,
        )
        features = featurizer.fit_transform(rows)
        model = KMeans(
            n_clusters,
            n_init=self.config.n_init,
            max_iter=self.config.max_iter,
            seed=self.config.seed,
            n_jobs=self.config.kmeans_jobs,
        )
        model.fit(features)
        self.last_train_seconds = time.perf_counter() - started
        self.featurizer = featurizer
        self.model = model
        self.model_version += 1
        self.train_count += 1

    def refresh(self, rows: np.ndarray) -> None:
        """Incrementally refresh the fitted model on the zone's contents.

        One deterministic mini-batch pass (``MiniBatchKMeans.partial_fit``
        over consecutive ``refresh_batch_size`` slices, warm-started from
        the current centroids) replaces the full Lloyd refit.  The
        featurizer is *not* refit — PCA axes stay frozen so the refreshed
        centroids live in the same feature space as every cached
        prediction — and ``n_clusters`` cannot change, so the caller's
        pool rebuild keeps one free list per existing cluster.
        """
        if self.model is None or self.featurizer is None:
            raise NotFittedError("refresh() needs a trained model; call train()")
        rows = np.atleast_2d(np.ascontiguousarray(rows, dtype=np.uint8))
        started = time.perf_counter()
        features = self.featurizer.transform_many(rows)
        refresher = MiniBatchKMeans(
            self.model.n_clusters,
            batch_size=self.config.refresh_batch_size,
            seed=self.config.seed,
        )
        refresher.warm_start(self.model.cluster_centers_)
        batch = self.config.refresh_batch_size
        for start in range(0, features.shape[0], batch):
            refresher.partial_fit(features[start : start + batch])
        self.model.cluster_centers_ = refresher.cluster_centers_
        self.last_train_seconds = time.perf_counter() - started
        self.model_version += 1
        self.refresh_count += 1

    def labels_for(self, rows: np.ndarray) -> np.ndarray:
        """Cluster labels for many buckets (pool rebuilds)."""
        if self.model is None or self.featurizer is None:
            raise NotFittedError("train() has not been called")
        return self.model.predict(self.featurizer.transform(rows))

    def predict(self, bucket: np.ndarray) -> int:
        """Cluster of one bucket's contents (Algorithm 2, line 1).

        Timed with a monotonic clock; the accumulated mean is the
        "latency of prediction per item" the paper reports in Fig. 6.
        """
        return int(self.predict_many(np.asarray(bucket)[None, :])[0])

    def predict_many(self, rows: np.ndarray) -> np.ndarray:
        """Cluster labels of a batch of buckets in one vectorized call.

        The batched side of Algorithm 2, line 1: one featurizer pass and
        one distance computation cover the whole batch.  Row ``i``'s
        label matches :meth:`predict` on that row (same kernel), and the
        whole batch is timed as one prediction interval covering
        ``rows.shape[0]`` items.
        """
        if self.model is None or self.featurizer is None:
            raise NotFittedError("train() has not been called")
        rows = np.atleast_2d(rows)
        started = time.perf_counter_ns()
        distances = self.model.centroid_distances(
            self.featurizer.transform_many(rows)
        )
        labels = np.argmin(distances, axis=1).astype(np.int64)
        self.predict_ns_total += time.perf_counter_ns() - started
        self.predict_count += rows.shape[0]
        return labels

    def fallback_order(self, bucket: np.ndarray) -> np.ndarray:
        """All clusters sorted nearest-first (§V-C).

        ``order[0]`` is the predicted cluster, so the PUT path gets the
        prediction and its fallbacks from one distance computation.  Timed
        like :meth:`predict`.
        """
        return self.fallback_order_many(np.asarray(bucket)[None, :])[0]

    def fallback_order_many(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`fallback_order` for a batch of buckets.

        Returns an ``(n, n_clusters)`` matrix whose row ``i`` sorts all
        clusters nearest-first for bucket ``i`` — the single vectorized
        K-Means call behind ``PNWStore.put_many``.
        """
        if self.model is None or self.featurizer is None:
            raise NotFittedError("train() has not been called")
        rows = np.atleast_2d(rows)
        started = time.perf_counter_ns()
        orders = self.model.centroid_order_by_distance_many(
            self.featurizer.transform_many(rows)
        )
        self.predict_ns_total += time.perf_counter_ns() - started
        self.predict_count += rows.shape[0]
        return orders

    # ------------------------------------------------------------------ #

    @property
    def mean_predict_ns(self) -> float:
        """Mean measured prediction latency per item, in nanoseconds."""
        if self.predict_count == 0:
            return 0.0
        return self.predict_ns_total / self.predict_count

    def should_retrain(self, live_fraction: float) -> bool:
        """Load-factor policy: retrain before clusters run dry (§V-C)."""
        if not self.is_trained:
            return live_fraction >= self.config.auto_train_fraction
        return live_fraction >= self.config.load_factor

"""Operation reports and counters shared by the store and the engine.

These types used to live inside ``core/store.py``; they sit in their own
module now so the staged mutation pipeline (:mod:`repro.engine`) can
build reports without importing the store (which itself imports the
engine).  ``repro.core.store`` re-exports both names, so existing
imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["OperationReport", "StoreMetrics", "BUFFERED_ADDRESS"]

#: Address stamped on reports of ops absorbed by the DRAM tier: no NVM
#: bucket was written (yet), so there is no address to report.
BUFFERED_ADDRESS = -1


@dataclass(frozen=True)
class OperationReport:
    """Cost breakdown of one mutating store operation."""

    op: str
    key: bytes
    address: int
    cluster: int
    fallback_used: bool
    bit_updates: int
    words_touched: int
    lines_touched: int
    nvm_latency_ns: float
    predict_ns: float
    index_lines: int
    retrained: bool

    @property
    def total_latency_ns(self) -> float:
        """Modeled NVM time plus measured prediction time — the paper's
        end-to-end write latency decomposition (§VI-E)."""
        return self.nvm_latency_ns + self.predict_ns

    @property
    def buffered(self) -> bool:
        """Whether this op was absorbed in DRAM by the tier (no NVM
        cells programmed; it becomes durable at the next flush)."""
        return self.address == BUFFERED_ADDRESS

    @classmethod
    def make_buffered(cls, op: str, key: bytes) -> "OperationReport":
        """The zero-cost report of a DRAM-absorbed op: every NVM counter
        is zero because nothing touched the device — the whole point of
        the write-back tier.  ``address``/``cluster`` are
        :data:`BUFFERED_ADDRESS` sentinels (no bucket was chosen)."""
        return cls(
            op=op,
            key=key,
            address=BUFFERED_ADDRESS,
            cluster=BUFFERED_ADDRESS,
            fallback_used=False,
            bit_updates=0,
            words_touched=0,
            lines_touched=0,
            nvm_latency_ns=0.0,
            predict_ns=0.0,
            index_lines=0,
            retrained=False,
        )


@dataclass
class StoreMetrics:
    """Operation counters for one store instance."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    updates: int = 0
    retrains: int = 0
    fallbacks: int = 0
    reports: list[OperationReport] = field(default_factory=list)
    keep_reports: bool = False

    def record(self, report: OperationReport) -> None:
        if self.keep_reports:
            self.reports.append(report)

    @classmethod
    def merge(cls, parts: Iterable["StoreMetrics"]) -> "StoreMetrics":
        """Sum several stores' counters into one merged snapshot.

        The sharded store keeps one :class:`StoreMetrics` per shard; this
        is the whole-store view.  Kept reports are concatenated part by
        part (shard order, each shard's own chronological order) — a
        per-shard timeline, not a global one, because concurrent shard
        pipelines have no cross-shard operation order.  The result is a
        snapshot: it does not track the parts afterwards.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one StoreMetrics")
        merged = cls(keep_reports=any(part.keep_reports for part in parts))
        for part in parts:
            merged.puts += part.puts
            merged.gets += part.gets
            merged.deletes += part.deletes
            merged.updates += part.updates
            merged.retrains += part.retrains
            merged.fallbacks += part.fallbacks
            merged.reports.extend(part.reports)
        return merged

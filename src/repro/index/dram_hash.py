"""DRAM-resident hash index (paper Fig. 2a, the small-key architecture).

A plain dictionary with byte-traffic accounting against the hybrid
memory's DRAM region.  It costs no NVM endurance at all — the whole point
of the placement — but is lost on a crash and must be rebuilt by scanning
the data zone (see ``PNWStore.recover``).
"""

from __future__ import annotations

from ..errors import KeyNotFoundError
from ..nvm.hybrid import DRAMRegion
from .base import KeyIndex

__all__ = ["DRAMHashIndex"]


class DRAMHashIndex(KeyIndex):
    """Dictionary-backed index with DRAM traffic accounting."""

    def __init__(self, key_bytes: int, dram: DRAMRegion | None = None) -> None:
        if key_bytes <= 0:
            raise ValueError(f"key_bytes must be positive, got {key_bytes}")
        self.key_bytes = key_bytes
        self.dram = dram if dram is not None else DRAMRegion()
        self._map: dict[bytes, int] = {}

    def _entry_bytes(self) -> int:
        # Key plus a 64-bit pointer, the footprint of one table entry.
        return self.key_bytes + 8

    def put(self, key: bytes, address: int) -> None:
        key = self.normalize_key(key, self.key_bytes)
        self._map[key] = address
        self.dram.write(self._entry_bytes())

    def get(self, key: bytes) -> int:
        key = self.normalize_key(key, self.key_bytes)
        self.dram.read(self._entry_bytes())
        try:
            return self._map[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def peek(self, key: bytes) -> int:
        key = self.normalize_key(key, self.key_bytes)
        try:
            return self._map[key]
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def delete(self, key: bytes) -> int:
        key = self.normalize_key(key, self.key_bytes)
        self.dram.write(self._entry_bytes())
        try:
            return self._map.pop(key)
        except KeyError:
            raise KeyNotFoundError(f"key {key!r} not found") from None

    def __contains__(self, key: bytes) -> bool:
        return self.normalize_key(key, self.key_bytes) in self._map

    def __len__(self) -> int:
        return len(self._map)

    def items(self):
        """Iterate (key, address) pairs (used by recovery tests)."""
        return self._map.items()

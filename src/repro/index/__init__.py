"""Key indexes: DRAM hash (Fig. 2a) and NVM path hashing (Fig. 2b)."""

from .base import KeyIndex, stable_hash64
from .dram_hash import DRAMHashIndex
from .path_hashing import PathHashingIndex

__all__ = ["KeyIndex", "stable_hash64", "DRAMHashIndex", "PathHashingIndex"]

"""Path Hashing [Zuo & Hua, TPDS 2018] on the simulated NVM.

The write-friendly NVM hash index the paper builds and persists in PCM
(Fig. 2b; §V-A3 "we build and persist a write-friendly hash index in PCM
as introduced in [20]").  Path hashing stores buckets in an *inverted
complete binary tree*:

* the top level has ``2^L`` positions, addressable by hash functions;
* each lower level halves the positions; position ``p`` at level ``d``
  descends to position ``p // 2`` at level ``d + 1``;
* a key hashes to two top-level positions (two independent hash
  functions); it may live at any node on either *path* from those
  positions toward the root, so collisions are absorbed without any
  rehashing or item movement — the property that makes the scheme cheap
  in bit flips;
* ``reserved_levels`` bounds how deep paths go (the full tree is rarely
  needed; the original paper reserves a few levels).

Each slot is stored as one NVM bucket ``[flag | key | address]`` and every
mutation goes through the device's data-comparison write, so the index's
own endurance cost — the thing Fig. 2b trades against crash-free
recovery — is measured, not assumed.  Deletion resets the flag byte only
(one bit flip), exactly the paper's "reset its corresponding bit ...
instead of deleting it".
"""

from __future__ import annotations

import numpy as np

from .._bitops import buffer_to_int, int_to_buffer
from ..errors import CapacityError, KeyNotFoundError
from ..nvm.device import SimulatedNVM
from .base import KeyIndex, stable_hash64

__all__ = ["PathHashingIndex"]

_FLAG_EMPTY = 0
_FLAG_LIVE = 1

_ADDR_BYTES = 8


class PathHashingIndex(KeyIndex):
    """Inverted-binary-tree NVM hash index with two-path placement.

    Parameters
    ----------
    key_bytes:
        Fixed key width.
    levels_exponent:
        Top level holds ``2**levels_exponent`` slots.
    reserved_levels:
        Number of tree levels kept (including the top level).
    nvm:
        Optional shared device; by default the index allocates its own so
        its wear is reported separately from the data zone's.
    """

    def __init__(
        self,
        key_bytes: int,
        levels_exponent: int = 10,
        reserved_levels: int = 4,
        *,
        nvm: SimulatedNVM | None = None,
    ) -> None:
        if key_bytes <= 0:
            raise ValueError(f"key_bytes must be positive, got {key_bytes}")
        if levels_exponent < 1:
            raise ValueError(f"levels_exponent must be >= 1, got {levels_exponent}")
        if not 1 <= reserved_levels <= levels_exponent + 1:
            raise ValueError(
                f"reserved_levels must be in [1, {levels_exponent + 1}], "
                f"got {reserved_levels}"
            )
        self.key_bytes = key_bytes
        self.levels_exponent = levels_exponent
        self.reserved_levels = reserved_levels

        self._level_sizes = [
            2 ** (levels_exponent - d) for d in range(reserved_levels)
        ]
        self._level_offsets = np.concatenate([[0], np.cumsum(self._level_sizes[:-1])])
        total_slots = int(np.sum(self._level_sizes))

        raw_slot = 1 + key_bytes + _ADDR_BYTES
        self.slot_bytes = -(-raw_slot // 4) * 4  # pad to the 4-byte word
        self.nvm = nvm if nvm is not None else SimulatedNVM(
            total_slots, self.slot_bytes
        )
        if self.nvm.num_buckets < total_slots:
            raise ValueError(
                f"device has {self.nvm.num_buckets} buckets; "
                f"index needs {total_slots}"
            )
        self._count = 0

    # ------------------------------------------------------------------ #
    # geometry & codecs                                                   #
    # ------------------------------------------------------------------ #

    @property
    def capacity(self) -> int:
        """Total slots across all reserved levels."""
        return int(np.sum(self._level_sizes))

    def _slot_id(self, level: int, position: int) -> int:
        return int(self._level_offsets[level]) + position

    def _paths(self, key: bytes) -> list[list[int]]:
        """The two root-ward slot paths of ``key`` (slot ids per level)."""
        top = self._level_sizes[0]
        p1 = stable_hash64(key, seed=1) % top
        p2 = stable_hash64(key, seed=2) % top
        paths: list[list[int]] = [[], []]
        for d in range(self.reserved_levels):
            paths[0].append(self._slot_id(d, p1 >> d))
            paths[1].append(self._slot_id(d, p2 >> d))
        return paths

    def _encode(self, flag: int, key: bytes, address: int) -> np.ndarray:
        slot = np.zeros(self.slot_bytes, dtype=np.uint8)
        slot[0] = flag
        slot[1 : 1 + self.key_bytes] = np.frombuffer(key, dtype=np.uint8)
        slot[1 + self.key_bytes : 1 + self.key_bytes + _ADDR_BYTES] = int_to_buffer(
            address, _ADDR_BYTES
        )
        return slot

    def _decode(self, slot: np.ndarray) -> tuple[int, bytes, int]:
        flag = int(slot[0])
        key = slot[1 : 1 + self.key_bytes].tobytes()
        address = buffer_to_int(
            slot[1 + self.key_bytes : 1 + self.key_bytes + _ADDR_BYTES]
        )
        return flag, key, address

    # ------------------------------------------------------------------ #
    # operations                                                          #
    # ------------------------------------------------------------------ #

    def _locate(self, key: bytes) -> int | None:
        """Slot id currently holding ``key``, or ``None``."""
        for path in self._paths(key):
            for slot_id in path:
                flag, slot_key, _ = self._decode(self.nvm.read(slot_id))
                if flag == _FLAG_LIVE and slot_key == key:
                    return slot_id
        return None

    def put(self, key: bytes, address: int) -> None:
        key = self.normalize_key(key, self.key_bytes)
        existing = self._locate(key)
        if existing is not None:
            self.nvm.write(existing, self._encode(_FLAG_LIVE, key, address))
            return
        # Search both paths level by level (top first, keeping lookups
        # short), taking the first empty slot.
        paths = self._paths(key)
        for level in range(self.reserved_levels):
            for path in paths:
                slot_id = path[level]
                flag, _, _ = self._decode(self.nvm.read(slot_id))
                if flag == _FLAG_EMPTY:
                    self.nvm.write(slot_id, self._encode(_FLAG_LIVE, key, address))
                    self._count += 1
                    return
        raise CapacityError(
            f"both paths of key {key!r} are full "
            f"({self.reserved_levels} levels); resize the index"
        )

    def get(self, key: bytes) -> int:
        key = self.normalize_key(key, self.key_bytes)
        slot_id = self._locate(key)
        if slot_id is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        _, _, address = self._decode(self.nvm.read(slot_id))
        return address

    def peek(self, key: bytes) -> int:
        key = self.normalize_key(key, self.key_bytes)
        for path in self._paths(key):
            for slot_id in path:
                flag, slot_key, address = self._decode(self.nvm.peek(slot_id))
                if flag == _FLAG_LIVE and slot_key == key:
                    return address
        raise KeyNotFoundError(f"key {key!r} not found")

    def delete(self, key: bytes) -> int:
        key = self.normalize_key(key, self.key_bytes)
        slot_id = self._locate(key)
        if slot_id is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        slot = self.nvm.read(slot_id)
        _, _, address = self._decode(slot)
        # Reset only the flag byte: a one-bit flip, leaving the stale key
        # and pointer bytes in place (paper §V-A3).
        slot[0] = _FLAG_EMPTY
        self.nvm.write(slot_id, slot)
        self._count -= 1
        return address

    def __contains__(self, key: bytes) -> bool:
        return self._locate(self.normalize_key(key, self.key_bytes)) is not None

    def __len__(self) -> int:
        return self._count

    @property
    def load(self) -> float:
        """Fraction of slots occupied."""
        return self._count / self.capacity

"""Key-index interface: logical keys to physical NVM bucket addresses.

PNW needs exactly one property from its index (paper §V-A3): mapping a
logical key to an *arbitrary* physical address, so the store is free to
steer values anywhere.  Implementations differ in placement: the DRAM
index is wear-free but must be rebuilt after a crash; the NVM path-hashing
index persists but its writes cost endurance (and are accounted).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["KeyIndex", "stable_hash64"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def stable_hash64(data: bytes, seed: int = 0) -> int:
    """Deterministic 64-bit FNV-1a hash (Python's ``hash`` is salted).

    ``seed`` derives independent hash functions for multi-hash schemes.
    """
    value = (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & 0xFFFFFFFFFFFFFFFF
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


class KeyIndex(ABC):
    """Maps fixed-width byte keys to integer bucket addresses."""

    @abstractmethod
    def put(self, key: bytes, address: int) -> None:
        """Insert or update the mapping for ``key``."""

    @abstractmethod
    def get(self, key: bytes) -> int:
        """Return the address of ``key``; raise ``KeyNotFoundError`` if absent."""

    @abstractmethod
    def delete(self, key: bytes) -> int:
        """Remove ``key`` and return its address; raise if absent."""

    def peek(self, key: bytes) -> int:
        """Address of ``key`` without traffic accounting.

        Batch pipelines gather addresses up front with this so the
        *accounted* index traffic stays exactly one lookup per operation.
        The default falls back to :meth:`get` (accounted) so third-party
        indexes stay correct; both built-in indexes override it.
        """
        return self.get(key)

    @abstractmethod
    def __contains__(self, key: bytes) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @staticmethod
    def normalize_key(key: bytes, key_bytes: int) -> bytes:
        """Zero-pad a key to fixed width; reject oversized keys."""
        if len(key) > key_bytes:
            raise ValueError(f"key of {len(key)} bytes exceeds key_bytes={key_bytes}")
        return key.ljust(key_bytes, b"\x00")

    @staticmethod
    def key_array(key: bytes) -> np.ndarray:
        """Fixed-width key as a uint8 array."""
        return np.frombuffer(key, dtype=np.uint8)

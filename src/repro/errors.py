"""Exception hierarchy for the PNW reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CapacityError",
    "KeyNotFoundError",
    "DuplicateKeyError",
    "PoolExhaustedError",
    "NotFittedError",
    "ConfigError",
    "QueueFullError",
    "QueueClosedError",
    "DeadlineExceededError",
    "WorkerCrashedError",
    "MediaError",
    "DegradedModeError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CapacityError(ReproError):
    """A storage component (NVM zone, index, tree node) ran out of space."""


class KeyNotFoundError(ReproError, KeyError):
    """A GET/DELETE referenced a key that is not present."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep messages readable
        return Exception.__str__(self)


class DuplicateKeyError(ReproError):
    """An insert-only structure received a key that already exists."""


class PoolExhaustedError(CapacityError):
    """The dynamic address pool has no free address left in any cluster.

    Raised mid-batch by the mutation engine once the zone (minus any
    rows retired by the media layer) cannot place the next value.  Like
    every retryable engine error it carries a ``committed_reports``
    attribute: the :class:`~repro.core.reports.OperationReport` list for
    the input-order prefix of the batch that *was* durably applied
    before the pool ran dry.  Callers resume by replaying only the ops
    after ``len(exc.committed_reports)`` — after freeing space
    (deletes), growing capacity, or scrubbing/retraining — instead of
    re-applying the whole batch.

    The same partial-commit contract is shared by
    :class:`KeyNotFoundError` (batched update/delete stops at the first
    missing key), :class:`DegradedModeError` (writes shed before any op
    is applied, so ``committed_reports`` is empty), and — without the
    attribute, because the in-flight reports died with the worker —
    :class:`WorkerCrashedError`, whose unflagged sub-batch is simply
    retried whole."""


class NotFittedError(ReproError):
    """A model was used before ``fit`` was called."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class QueueFullError(ReproError):
    """The ingestion queue's admission window is full (``shed`` policy)."""


class QueueClosedError(ReproError, RuntimeError):
    """An operation was submitted to (or blocked in) a closed queue.

    Also a :class:`RuntimeError` so pre-backpressure callers that caught
    ``RuntimeError`` on submit-after-close keep working.
    """


class DeadlineExceededError(ReproError):
    """An op's admission deadline passed before its batch was dispatched
    (``deadline`` policy): the op was never applied to the store."""


class WorkerCrashedError(ReproError):
    """A shard worker process died while executing a request.

    Raised by the process executor after the worker has already been
    respawned over the surviving shared zone and the standard recovery
    path has run, so the caller may simply retry: the zone is servable
    again, with only the dead worker's unflagged (in-flight) operations
    lost — exactly the torn-shard crash semantics of a power failure.
    :class:`repro.ingest.IngestQueue` performs that retry itself
    (bounded attempts with jittered backoff) before surfacing the error
    to producers."""


class MediaError(ReproError):
    """The simulated NVM media failed in a way the store cannot hide.

    Raised by the scrubber when a patrol read finds an occupied row
    whose bytes no longer match its stored checksum — i.e. acknowledged
    data was corrupted in place, which the write-verify path is designed
    to make impossible.  Treat it as a data-integrity alarm, not a
    retryable condition."""


class DegradedModeError(MediaError):
    """The store is shedding writes because media retirement crossed the
    capacity watermark (``media_retire_watermark``).

    Carries ``committed_reports = []``: degraded sheds happen before any
    op of the batch is applied, so the whole batch is retryable once
    capacity returns (deletes still execute and free rows).  See
    :class:`PoolExhaustedError` for the shared partial-commit retry
    contract."""

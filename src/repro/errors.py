"""Exception hierarchy for the PNW reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CapacityError",
    "KeyNotFoundError",
    "DuplicateKeyError",
    "PoolExhaustedError",
    "NotFittedError",
    "ConfigError",
    "QueueFullError",
    "QueueClosedError",
    "DeadlineExceededError",
    "WorkerCrashedError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CapacityError(ReproError):
    """A storage component (NVM zone, index, tree node) ran out of space."""


class KeyNotFoundError(ReproError, KeyError):
    """A GET/DELETE referenced a key that is not present."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep messages readable
        return Exception.__str__(self)


class DuplicateKeyError(ReproError):
    """An insert-only structure received a key that already exists."""


class PoolExhaustedError(CapacityError):
    """The dynamic address pool has no free address left in any cluster."""


class NotFittedError(ReproError):
    """A model was used before ``fit`` was called."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class QueueFullError(ReproError):
    """The ingestion queue's admission window is full (``shed`` policy)."""


class QueueClosedError(ReproError, RuntimeError):
    """An operation was submitted to (or blocked in) a closed queue.

    Also a :class:`RuntimeError` so pre-backpressure callers that caught
    ``RuntimeError`` on submit-after-close keep working.
    """


class DeadlineExceededError(ReproError):
    """An op's admission deadline passed before its batch was dispatched
    (``deadline`` policy): the op was never applied to the store."""


class WorkerCrashedError(ReproError):
    """A shard worker process died while executing a request.

    Raised by the process executor after the worker has already been
    respawned over the surviving shared zone and the standard recovery
    path has run, so the caller may simply retry: the zone is servable
    again, with only the dead worker's unflagged (in-flight) operations
    lost — exactly the torn-shard crash semantics of a power failure."""

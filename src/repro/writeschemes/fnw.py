"""Flip-N-Write (FNW) [Cho & Lee, MICRO 2009].

FNW augments every w-bit word with one *flip bit*.  On a write it compares
the new word against the stored word and, if more than half the bits would
change, stores the bitwise complement instead and toggles the flip bit.
This bounds the programmed cells per word to ⌈(w+1)/2⌉ and halves worst-
case write energy.  On a read, words whose flip bit is set are inverted
back.

Our implementation evaluates both candidates exactly — including the cost
of toggling the flip bit itself — and keeps the flip-bit vector as
per-address ``aux_state``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .._bitops import POPCOUNT_TABLE
from .base import WriteOutcome, WriteScheme

__all__ = ["FlipNWrite"]


class FlipNWrite(WriteScheme):
    """Per-word flip-bit write reduction.

    Parameters
    ----------
    word_bytes:
        Word granularity the flip bits guard.  The paper's synthetic
        experiments use 32-bit words, so the default is 4 bytes.
    """

    name = "FNW"

    def __init__(self, word_bytes: int = 4) -> None:
        if word_bytes <= 0:
            raise ValueError(f"word_bytes must be positive, got {word_bytes}")
        self.word_bytes = word_bytes

    @property
    def word_bits(self) -> int:
        """Bits per guarded word."""
        return self.word_bytes * 8

    @property
    def state_key(self) -> str:
        """Flip-bit arrays are per-word, so the word size is part of the
        state identity."""
        return f"FNW/{self.word_bytes}"

    def _split_words(self, buf: np.ndarray) -> np.ndarray:
        if buf.size % self.word_bytes != 0:
            raise ValueError(
                f"bucket size {buf.size} is not a multiple of word size "
                f"{self.word_bytes}"
            )
        return buf.reshape(-1, self.word_bytes)

    def prepare(
        self,
        old: np.ndarray,
        new: np.ndarray,
        old_aux: Any = None,
    ) -> WriteOutcome:
        old = np.ascontiguousarray(old, dtype=np.uint8)
        new = np.ascontiguousarray(new, dtype=np.uint8)
        old_words = self._split_words(old)
        new_words = self._split_words(new)
        n_words = old_words.shape[0]

        old_flips = (
            np.asarray(old_aux, dtype=bool)
            if old_aux is not None
            else np.zeros(n_words, dtype=bool)
        )

        # Cost of storing the word verbatim (flip bit must end up 0) versus
        # inverted (flip bit must end up 1), counting the flip-bit toggle.
        plain_xor = np.bitwise_xor(old_words, new_words)
        plain_cost = POPCOUNT_TABLE[plain_xor].sum(axis=1) + old_flips
        inverted = np.bitwise_not(new_words)
        inv_xor = np.bitwise_xor(old_words, inverted)
        inv_cost = POPCOUNT_TABLE[inv_xor].sum(axis=1) + (~old_flips)

        use_inverted = inv_cost < plain_cost
        stored_words = np.where(use_inverted[:, None], inverted, new_words)
        mask_words = np.where(use_inverted[:, None], inv_xor, plain_xor)
        new_flips = use_inverted

        aux_bit_updates = int(np.count_nonzero(new_flips != old_flips))
        return WriteOutcome(
            stored=stored_words.reshape(-1),
            update_mask=mask_words.reshape(-1),
            aux_bit_updates=aux_bit_updates,
            aux_state=new_flips,
        )

    def decode(self, physical: np.ndarray, aux_state: Any) -> np.ndarray:
        physical = np.ascontiguousarray(physical, dtype=np.uint8)
        flips = np.asarray(aux_state, dtype=bool)
        words = self._split_words(physical.copy())
        words[flips] = np.bitwise_not(words[flips])
        return words.reshape(-1)

"""MinShift [Luo et al., RTCSA 2014]: bit rotation to reduce flips.

MinShift rotates the new data by some offset before storing it, choosing
the rotation that minimises the Hamming distance to the old contents, and
records the offset in a small shift field.  On read, the stored data is
rotated back.

Following the paper's evaluation methodology ("we allow MinShift to shift
n times, where n is the size of the item instead of the size of the word,
which means it always results in its best performance"), our MinShift
searches *all* item-size rotations.  The search scores every rotation at
once with an FFT circular cross-correlation (O(n log n)) instead of the
naive O(n^2) scan: for ±1-mapped bit vectors a (old) and b (new),
``hamming(a, rot(b, s)) = (n - corr(s)) / 2``.

The shift field holds ceil(log2(n)) bits; updating it is charged as
auxiliary cost (Hamming distance between old and new field contents).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .._bitops import rotate_bits, unpack_bits
from .base import WriteOutcome, WriteScheme

__all__ = ["MinShift"]


def _rotation_hammings(old_bits: np.ndarray, new_bits: np.ndarray) -> np.ndarray:
    """Hamming distance between ``old`` and every left-rotation of ``new``.

    Entry ``s`` of the result is ``hamming(old, rotate_left(new, s))``.
    """
    n = old_bits.size
    a = old_bits.astype(np.float64) * 2.0 - 1.0
    b = new_bits.astype(np.float64) * 2.0 - 1.0
    # R[k] = sum_j a[(j + k) mod n] * b[j]; the dot product against a left
    # rotation by s is R[(n - s) mod n].
    correlation = np.fft.ifft(np.fft.fft(a) * np.conj(np.fft.fft(b))).real
    dots = np.empty(n)
    dots[0] = correlation[0]
    dots[1:] = correlation[:0:-1]
    return np.rint((n - dots) / 2.0).astype(np.int64)


class MinShift(WriteScheme):
    """Store the rotation of the new data closest to the old contents."""

    name = "MinShift"

    def prepare(
        self,
        old: np.ndarray,
        new: np.ndarray,
        old_aux: Any = None,
    ) -> WriteOutcome:
        old = np.ascontiguousarray(old, dtype=np.uint8)
        new = np.ascontiguousarray(new, dtype=np.uint8)
        nbits = old.size * 8
        old_shift = int(old_aux) if old_aux is not None else 0
        field_bits = max(1, (nbits - 1).bit_length())

        hammings = _rotation_hammings(unpack_bits(old), unpack_bits(new))
        # Charge the shift-field rewrite per candidate so the choice is the
        # true total cost, then pick the smallest rotation on ties.
        shifts = np.arange(nbits)
        field_costs = np.array(
            [bin((s ^ old_shift) & ((1 << field_bits) - 1)).count("1") for s in shifts],
            dtype=np.int64,
        )
        totals = hammings + field_costs
        best = int(np.argmin(totals))

        stored = rotate_bits(new, best)
        return WriteOutcome(
            stored=stored,
            update_mask=np.bitwise_xor(old, stored),
            aux_bit_updates=int(field_costs[best]),
            aux_state=best,
        )

    def decode(self, physical: np.ndarray, aux_state: Any) -> np.ndarray:
        physical = np.ascontiguousarray(physical, dtype=np.uint8)
        shift = int(aux_state)
        nbits = physical.size * 8
        return rotate_bits(physical, (nbits - shift) % nbits)

"""Captopril [Jalili & Sarbazi-Azad, DATE 2016], segment-mask variant.

Captopril reduces flips on "hot" bit locations by masking (inverting)
regions of the block that would otherwise flip heavily, at the price of
storing the mask itself.  We reproduce its behaviour with the segment
formulation the PNW paper evaluates: the block is partitioned into
``n_segments`` equal segments (n = 16, "CAP16", is Captopril's best case
per the paper), each guarded by one mask bit; a segment is stored inverted
whenever that programs fewer cells, counting the mask-bit toggle.

This is deliberately a *segment-granularity* FNW: it captures both of
Captopril's properties the paper leans on — fewer data flips than plain
DCW on skewed data, plus a visible metadata overhead that PNW avoids.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .._bitops import pack_bits, unpack_bits
from .base import WriteOutcome, WriteScheme

__all__ = ["Captopril"]


class Captopril(WriteScheme):
    """Segment-mask write reduction (CAP16 in the paper's figures)."""

    def __init__(self, n_segments: int = 16) -> None:
        if n_segments <= 0:
            raise ValueError(f"n_segments must be positive, got {n_segments}")
        self.n_segments = n_segments
        self.name = f"CAP{n_segments}"  # the segment count is in the name,
        # so the default state_key already distinguishes CAP8 from CAP16

    def _segment_bounds(self, nbits: int) -> list[tuple[int, int]]:
        """Contiguous (start, stop) bit ranges of the segments."""
        edges = np.linspace(0, nbits, self.n_segments + 1, dtype=np.int64)
        return [(int(edges[i]), int(edges[i + 1])) for i in range(self.n_segments)]

    def prepare(
        self,
        old: np.ndarray,
        new: np.ndarray,
        old_aux: Any = None,
    ) -> WriteOutcome:
        old = np.ascontiguousarray(old, dtype=np.uint8)
        new = np.ascontiguousarray(new, dtype=np.uint8)
        nbits = old.size * 8
        old_bits = unpack_bits(old)
        new_bits = unpack_bits(new)
        old_mask = (
            np.asarray(old_aux, dtype=bool)
            if old_aux is not None
            else np.zeros(self.n_segments, dtype=bool)
        )

        stored_bits = np.empty_like(new_bits)
        new_mask = np.zeros(self.n_segments, dtype=bool)
        for seg, (start, stop) in enumerate(self._segment_bounds(nbits)):
            seg_old = old_bits[start:stop]
            seg_new = new_bits[start:stop]
            diff = int(np.count_nonzero(seg_old != seg_new))
            seg_len = stop - start
            plain_cost = diff + int(old_mask[seg])
            inverted_cost = (seg_len - diff) + int(not old_mask[seg])
            if inverted_cost < plain_cost:
                stored_bits[start:stop] = 1 - seg_new
                new_mask[seg] = True
            else:
                stored_bits[start:stop] = seg_new

        stored = pack_bits(stored_bits)
        aux_bit_updates = int(np.count_nonzero(new_mask != old_mask))
        return WriteOutcome(
            stored=stored,
            update_mask=np.bitwise_xor(old, stored),
            aux_bit_updates=aux_bit_updates,
            aux_state=new_mask,
        )

    def decode(self, physical: np.ndarray, aux_state: Any) -> np.ndarray:
        physical = np.ascontiguousarray(physical, dtype=np.uint8)
        mask = np.asarray(aux_state, dtype=bool)
        bits = unpack_bits(physical)
        for seg, (start, stop) in enumerate(self._segment_bounds(physical.size * 8)):
            if mask[seg]:
                bits[start:stop] = 1 - bits[start:stop]
        return pack_bits(bits)

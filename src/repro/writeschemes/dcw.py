"""Data-Comparison Write (DCW) [Yang et al., ISCAS 2007].

The basic read-before-write: read the old contents, compare with the new
data, and program only the cells that differ.  Bit updates per write equal
the Hamming distance between the old and new contents.  DCW stores values
verbatim and needs no auxiliary metadata.

DCW is also the write primitive PNW composes with: PNW steers the write to
a similar location, then the device performs a data-comparison write there
(Algorithm 2, lines 5–6).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import WriteOutcome, WriteScheme

__all__ = ["DataComparisonWrite"]


class DataComparisonWrite(WriteScheme):
    """Program only the cells whose value changes."""

    name = "DCW"

    def prepare(
        self,
        old: np.ndarray,
        new: np.ndarray,
        old_aux: Any = None,
    ) -> WriteOutcome:
        old = np.ascontiguousarray(old, dtype=np.uint8)
        new = np.ascontiguousarray(new, dtype=np.uint8)
        return WriteOutcome(
            stored=new.copy(),
            update_mask=np.bitwise_xor(old, new),
        )

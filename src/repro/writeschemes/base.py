"""Write-scheme interface shared by all bit-flip reduction baselines.

A *write scheme* decides, given the current physical contents of an NVM
bucket and the new logical value, (1) what bit pattern is physically
stored, (2) which cells are actually programmed, and (3) how much
auxiliary metadata (flip bits, shift fields, segment masks) the write
costs.  The simulated device applies the outcome and accounts the wear.

Schemes are *stateless*: per-address state (e.g. FNW's flip bits) is
round-tripped through ``aux_state``, which the device stores per address
and hands back on the next write to the same address.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["WriteOutcome", "WriteScheme"]


@dataclass(frozen=True)
class WriteOutcome:
    """The physical effect of one prepared write.

    Attributes
    ----------
    stored:
        Physical bytes the bucket holds after the write.
    update_mask:
        Packed ``uint8`` mask, same shape as the bucket; set bits mark the
        cells that are programmed (and therefore wear out).
    aux_bit_updates:
        Number of auxiliary metadata cells programmed (flip bits, shift
        field bits, mask bits).  Zero for schemes without metadata.
    aux_state:
        Scheme-private per-address state needed to decode the physical
        contents back to the logical value, or ``None``.
    """

    stored: np.ndarray
    update_mask: np.ndarray
    aux_bit_updates: int = 0
    aux_state: Any = None


class WriteScheme(ABC):
    """Base class for bit-flip reduction write schemes."""

    #: Short display name used in reports and figures ("FNW", "CAP16", ...).
    name: str = "abstract"

    @property
    def state_key(self) -> str:
        """Identifies which schemes share per-address ``aux_state``.

        The device tags stored metadata with this key so a later write by
        a *different* scheme never misinterprets it (an FNW flip-bit array
        is meaningless to MinShift).  Schemes whose state layout depends
        on parameters must include them (see FlipNWrite).
        """
        return self.name

    @abstractmethod
    def prepare(
        self,
        old: np.ndarray,
        new: np.ndarray,
        old_aux: Any = None,
    ) -> WriteOutcome:
        """Plan the write of logical value ``new`` over physical ``old``.

        ``old_aux`` is whatever ``aux_state`` the previous write to this
        address produced (``None`` for a fresh bucket).
        """

    def decode(self, physical: np.ndarray, aux_state: Any) -> np.ndarray:
        """Recover the logical value from physical contents + metadata.

        The default is the identity, correct for schemes that store values
        verbatim (Conventional, DCW).
        """
        return np.ascontiguousarray(physical, dtype=np.uint8).copy()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

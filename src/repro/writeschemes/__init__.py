"""Bit-flip-reduction write schemes: the paper's RBW baselines.

``default_schemes`` returns the exact baseline set of Figure 6:
Conventional, DCW, FNW, MinShift, and CAP16.
"""

from .base import WriteOutcome, WriteScheme
from .captopril import Captopril
from .conventional import ConventionalWrite
from .dcw import DataComparisonWrite
from .fnw import FlipNWrite
from .minshift import MinShift

__all__ = [
    "WriteOutcome",
    "WriteScheme",
    "ConventionalWrite",
    "DataComparisonWrite",
    "FlipNWrite",
    "MinShift",
    "Captopril",
    "default_schemes",
]


def default_schemes(word_bytes: int = 4) -> list[WriteScheme]:
    """The baseline write schemes the paper compares against (Fig. 6)."""
    return [
        ConventionalWrite(),
        DataComparisonWrite(),
        FlipNWrite(word_bytes=word_bytes),
        MinShift(),
        Captopril(n_segments=16),
    ]

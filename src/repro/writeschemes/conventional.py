"""Conventional write: every cell is programmed on every write.

This is the paper's "conventional method" baseline.  Without a
read-before-write, the memory controller cannot know which cells already
hold the right value, so all of them receive a programming pulse and all
of them wear — bit updates per write always equal the item size.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import WriteOutcome, WriteScheme

__all__ = ["ConventionalWrite"]


class ConventionalWrite(WriteScheme):
    """Program every cell of the bucket, regardless of the old contents."""

    name = "Conventional"

    def prepare(
        self,
        old: np.ndarray,
        new: np.ndarray,
        old_aux: Any = None,
    ) -> WriteOutcome:
        new = np.ascontiguousarray(new, dtype=np.uint8)
        return WriteOutcome(
            stored=new.copy(),
            update_mask=np.full_like(new, 0xFF),
        )

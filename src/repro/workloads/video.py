"""Video workloads: Sherbrooke-like and traffic-surveillance-like streams.

The paper stores CCTV footage on NVM (§VI-C): consecutive frames share a
static background and differ only where objects moved, so frames are a
few bit flips apart — the ideal case for write steering.  The stand-in
renders a fixed procedural background plus rigid objects moving with
constant velocity and bouncing at the borders, with sparse sensor noise.

Two profiles mirror the paper's two corpora: ``SHERBROOKE`` (urban
intersection, single channel) and ``TRAFFIC_SEQ2`` (Danish traffic
camera, RGB, more and faster objects).  Resolutions are scaled down from
800x600 / 640x480 so experiments stay laptop-sized; the temporal-
redundancy structure is resolution independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Workload

__all__ = ["VideoProfile", "VideoWorkload", "SHERBROOKE", "TRAFFIC_SEQ2"]


@dataclass(frozen=True)
class VideoProfile:
    """Geometry and dynamics of a synthetic camera feed.

    ``n_scene_modes``/``mode_period`` model the slow global cycles real
    surveillance footage has — ambient illumination drift, auto-exposure
    steps, traffic-signal phases.  Frames within a mode share their
    background bit patterns; frames across modes do not.  This is the
    scene-level cluster structure PNW's model keys on (a fixed-position
    ring buffer overwrites across modes; PNW steers within them).
    """

    name: str
    width: int = 64
    height: int = 64
    channels: int = 1
    n_objects: int = 6
    max_speed: float = 1.5
    object_size: tuple[int, int] = (6, 12)
    noise_rate: float = 0.004
    n_scene_modes: int = 4
    mode_period: int = 60

    @property
    def frame_bytes(self) -> int:
        return self.width * self.height * self.channels


SHERBROOKE = VideoProfile(name="sherbrooke", width=64, height=64, channels=1,
                          n_objects=6, max_speed=1.5)
TRAFFIC_SEQ2 = VideoProfile(name="seq2", width=64, height=48, channels=3,
                            n_objects=10, max_speed=2.5, noise_rate=0.006)


class VideoWorkload(Workload):
    """Consecutive frames of a synthetic surveillance camera."""

    def __init__(self, profile: VideoProfile = SHERBROOKE, seed: int | None = None) -> None:
        super().__init__(item_bytes=profile.frame_bytes, seed=seed)
        self.profile = profile
        self.name = f"video-{profile.name}"
        p = profile
        # Static background: smooth low-frequency texture.
        coarse = self.rng.integers(40, 200, size=(p.height // 8 + 1, p.width // 8 + 1))
        self._background = np.kron(coarse, np.ones((8, 8)))[: p.height, : p.width]
        if p.channels > 1:
            shades = self.rng.uniform(0.7, 1.0, size=p.channels)
            self._background = np.stack(
                [self._background * s for s in shades], axis=-1
            )
        self._positions = np.column_stack(
            [
                self.rng.uniform(0, p.height, p.n_objects),
                self.rng.uniform(0, p.width, p.n_objects),
            ]
        )
        self._velocities = self.rng.uniform(-p.max_speed, p.max_speed, (p.n_objects, 2))
        self._illumination = np.linspace(0.45, 1.0, max(p.n_scene_modes, 1))
        self._mode = 0
        self._tick = 0
        self._sizes = np.column_stack(
            [
                self.rng.integers(*p.object_size, p.n_objects),
                self.rng.integers(*p.object_size, p.n_objects),
            ]
        )
        # Rigid per-object texture (a vehicle's appearance): a base colour
        # modulated by a fixed random pattern that moves with the object.
        self._textures = []
        for obj in range(p.n_objects):
            h, w = self._sizes[obj]
            base = self.rng.integers(40, 216, size=max(p.channels, 1))
            pattern = self.rng.integers(-40, 41, size=(int(h), int(w), 1))
            self._textures.append(
                np.clip(base[None, None, :] + pattern, 0, 255).astype(np.float64)
            )

    def _advance(self) -> None:
        """One physics tick: move objects, bounce, cycle the scene mode."""
        p = self.profile
        self._tick += 1
        if p.n_scene_modes > 1 and self._tick % p.mode_period == 0:
            self._mode = int(self.rng.integers(0, p.n_scene_modes))
        self._positions += self._velocities
        for axis, limit in ((0, p.height), (1, p.width)):
            low = self._positions[:, axis] < 0
            high = self._positions[:, axis] > limit - 1
            self._velocities[low | high, axis] *= -1.0
            self._positions[:, axis] = np.clip(self._positions[:, axis], 0, limit - 1)

    def _render(self) -> np.ndarray:
        p = self.profile
        frame = self._background.astype(np.float64) * self._illumination[self._mode]
        if p.channels == 1 and frame.ndim == 2:
            frame = frame[..., None]
        for obj in range(p.n_objects):
            y, x = self._positions[obj]
            y0, x0 = int(y), int(x)
            texture = self._textures[obj]
            y1 = min(y0 + texture.shape[0], p.height)
            x1 = min(x0 + texture.shape[1], p.width)
            frame[y0:y1, x0:x1, :] = texture[: y1 - y0, : x1 - x0, : p.channels]
        # Sparse sensor noise: a handful of pixels twinkle each frame.
        n_noisy = int(p.noise_rate * p.width * p.height)
        if n_noisy:
            ys = self.rng.integers(0, p.height, n_noisy)
            xs = self.rng.integers(0, p.width, n_noisy)
            frame[ys, xs, :] += self.rng.normal(0, 25, size=(n_noisy, 1))
        return np.clip(frame, 0, 255).astype(np.uint8)

    def generate(self, n: int) -> np.ndarray:
        frames = np.empty((n, self.item_bytes), dtype=np.uint8)
        for i in range(n):
            self._advance()
            frames[i] = self._render().reshape(-1)
        return self._validate(frames)

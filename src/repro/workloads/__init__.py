"""Workload generators standing in for the paper's evaluation datasets."""

from .amazon import AmazonAccessWorkload
from .base import Workload
from .churn import ChurnTTLWorkload, ZipfianKVWorkload
from .docwords import DocWordsWorkload
from .images import CIFARLikeWorkload, FashionLikeWorkload, MNISTLikeWorkload
from .mixture import MixtureWorkload
from .registry import WORKLOADS, make_workload, workload_names
from .roadnet import RoadNetworkWorkload
from .synthetic import NormalIntWorkload, UniformIntWorkload
from .video import SHERBROOKE, TRAFFIC_SEQ2, VideoProfile, VideoWorkload

__all__ = [
    "Workload",
    "AmazonAccessWorkload",
    "DocWordsWorkload",
    "RoadNetworkWorkload",
    "NormalIntWorkload",
    "UniformIntWorkload",
    "MNISTLikeWorkload",
    "FashionLikeWorkload",
    "CIFARLikeWorkload",
    "MixtureWorkload",
    "ZipfianKVWorkload",
    "ChurnTTLWorkload",
    "VideoProfile",
    "VideoWorkload",
    "SHERBROOKE",
    "TRAFFIC_SEQ2",
    "WORKLOADS",
    "make_workload",
    "workload_names",
]

"""Image workloads: MNIST-like, Fashion-MNIST-like, CIFAR-10-like.

The Keras/CIFAR datasets are not downloadable offline.  What the paper's
experiments actually require from them is (a) class structure — images of
the same class are bit-wise similar — and (b) for the workload-shift
experiment (Fig. 10), two image families *different enough* that a model
trained on one steers the other badly.  The stand-ins deliver exactly
that:

* ``MNISTLikeWorkload`` renders sparse stroke glyphs (random line
  segments per class template, jittered per sample) — low ink coverage
  like handwritten digits,
* ``FashionLikeWorkload`` renders dense filled/textured shapes — high ink
  coverage like apparel photos, hence far from any digit glyph in Hamming
  space,
* ``CIFARLikeWorkload`` renders 32x32 RGB patches with a per-class
  palette and block texture.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["MNISTLikeWorkload", "FashionLikeWorkload", "CIFARLikeWorkload"]


def _draw_segment(
    canvas: np.ndarray,
    p0: tuple[float, float],
    p1: tuple[float, float],
    intensity: int,
    thickness: int,
) -> None:
    """Rasterise a thick line segment onto a 2-D grayscale canvas."""
    h, w = canvas.shape
    steps = int(max(abs(p1[0] - p0[0]), abs(p1[1] - p0[1])) * 2) + 2
    ys = np.linspace(p0[0], p1[0], steps)
    xs = np.linspace(p0[1], p1[1], steps)
    for dy in range(-(thickness // 2), thickness // 2 + 1):
        for dx in range(-(thickness // 2), thickness // 2 + 1):
            yy = np.clip(np.rint(ys + dy), 0, h - 1).astype(np.int64)
            xx = np.clip(np.rint(xs + dx), 0, w - 1).astype(np.int64)
            canvas[yy, xx] = intensity


class _TemplateImageWorkload(Workload):
    """Shared machinery: per-class template + per-sample jitter and noise."""

    side: int = 28
    channels: int = 1
    n_classes: int = 10
    shift_px: int = 2
    noise_sigma: float = 12.0

    def __init__(self, seed: int | None = None) -> None:
        super().__init__(item_bytes=self.side * self.side * self.channels, seed=seed)
        self._templates = np.stack(
            [self._render_template(c) for c in range(self.n_classes)]
        )

    def _render_template(self, class_id: int) -> np.ndarray:
        raise NotImplementedError

    def generate(self, n: int) -> np.ndarray:
        classes = self.rng.integers(0, self.n_classes, size=n)
        out = np.empty((n, self.item_bytes), dtype=np.uint8)
        for i, class_id in enumerate(classes):
            img = self._templates[class_id].astype(np.float64)
            dy, dx = self.rng.integers(-self.shift_px, self.shift_px + 1, size=2)
            img = np.roll(img, (int(dy), int(dx)), axis=(0, 1))
            img += self.rng.normal(0.0, self.noise_sigma, size=img.shape)
            # Dark-background quantisation: like real MNIST/Fashion scans,
            # background pixels are exactly zero, so same-class samples
            # agree bit-for-bit outside the figure.
            img[img < 30.0] = 0.0
            out[i] = np.clip(img, 0, 255).astype(np.uint8).reshape(-1)
        return self._validate(out)


class MNISTLikeWorkload(_TemplateImageWorkload):
    """Sparse stroke glyphs standing in for handwritten digits."""

    name = "mnist"

    def _render_template(self, class_id: int) -> np.ndarray:
        img = np.zeros((self.side, self.side), dtype=np.float64)
        n_strokes = int(self.rng.integers(3, 6))
        for _ in range(n_strokes):
            p0 = tuple(self.rng.uniform(4, self.side - 4, size=2))
            p1 = tuple(self.rng.uniform(4, self.side - 4, size=2))
            _draw_segment(img, p0, p1, int(self.rng.integers(170, 250)), 2)
        return img[..., None] if self.channels > 1 else img


class FashionLikeWorkload(_TemplateImageWorkload):
    """Dense textured patches standing in for apparel photos.

    Catalog photos are centred, so unlike the jittered glyphs there is no
    per-sample shift — same-class samples differ only by sensor noise
    (shifting a fine stripe texture by one pixel would anti-phase it and
    destroy the within-class similarity real apparel images have).
    """

    name = "fashion"
    shift_px = 0

    def _render_template(self, class_id: int) -> np.ndarray:
        img = np.full((self.side, self.side), 30.0)
        # A big filled silhouette...
        top = int(self.rng.integers(1, 6))
        left = int(self.rng.integers(1, 6))
        bottom = int(self.rng.integers(self.side - 6, self.side - 1))
        right = int(self.rng.integers(self.side - 6, self.side - 1))
        img[top:bottom, left:right] = float(self.rng.integers(120, 220))
        # ...with a per-class stripe/check texture on top.
        period = int(self.rng.integers(2, 5))
        phase = class_id % period
        if class_id % 2 == 0:
            img[top:bottom, left + phase : right : period] -= 60.0
        else:
            img[top + phase : bottom : period, left:right] -= 60.0
        return img


class CIFARLikeWorkload(Workload):
    """32x32 RGB patches with per-class palettes and block texture."""

    name = "cifar"
    side = 32
    n_classes = 10

    def __init__(self, seed: int | None = None) -> None:
        super().__init__(item_bytes=self.side * self.side * 3, seed=seed)
        # Per class: a background colour, a foreground colour, and a fixed
        # foreground rectangle — the "object" silhouette.
        self._bg = self.rng.integers(0, 256, size=(self.n_classes, 3))
        self._fg = self.rng.integers(0, 256, size=(self.n_classes, 3))
        self._boxes = np.column_stack(
            [
                self.rng.integers(2, 12, self.n_classes),
                self.rng.integers(2, 12, self.n_classes),
                self.rng.integers(18, 30, self.n_classes),
                self.rng.integers(18, 30, self.n_classes),
            ]
        )

    def generate(self, n: int) -> np.ndarray:
        classes = self.rng.integers(0, self.n_classes, size=n)
        out = np.empty((n, self.item_bytes), dtype=np.uint8)
        for i, class_id in enumerate(classes):
            img = np.empty((self.side, self.side, 3), dtype=np.float64)
            img[:] = self._bg[class_id]
            top, left, bottom, right = self._boxes[class_id]
            jitter = self.rng.integers(-2, 3, size=2)
            top = int(np.clip(top + jitter[0], 0, self.side - 2))
            left = int(np.clip(left + jitter[1], 0, self.side - 2))
            img[top:bottom, left:right] = self._fg[class_id]
            # Sparse pixel noise: palette-quantised patches keep most
            # pixels at exact class colours (which is what lets same-class
            # images share clean cache lines, the property Fig. 7 uses).
            n_noisy = (self.side * self.side) // 20
            ys = self.rng.integers(0, self.side, n_noisy)
            xs = self.rng.integers(0, self.side, n_noisy)
            img[ys, xs] += self.rng.normal(0.0, 25.0, size=(n_noisy, 3))
            out[i] = np.clip(img, 0, 255).astype(np.uint8).reshape(-1)
        return self._validate(out)

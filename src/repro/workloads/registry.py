"""Name-based workload registry used by the benchmark harness.

``make_workload("amazon", seed=7)`` builds the stand-in for the paper's
Amazon Access Samples dataset, and so on.  Registered names match the
dataset labels of the paper's figures.
"""

from __future__ import annotations

from typing import Callable

from .amazon import AmazonAccessWorkload
from .base import Workload
from .churn import ChurnTTLWorkload, ZipfianKVWorkload
from .docwords import DocWordsWorkload
from .images import CIFARLikeWorkload, FashionLikeWorkload, MNISTLikeWorkload
from .roadnet import RoadNetworkWorkload
from .synthetic import NormalIntWorkload, UniformIntWorkload
from .video import SHERBROOKE, TRAFFIC_SEQ2, VideoWorkload

__all__ = ["WORKLOADS", "make_workload", "workload_names"]

WORKLOADS: dict[str, Callable[..., Workload]] = {
    "normal": NormalIntWorkload,
    "uniform": UniformIntWorkload,
    "amazon": AmazonAccessWorkload,
    "roadnet": RoadNetworkWorkload,
    "docwords": DocWordsWorkload,
    "mnist": MNISTLikeWorkload,
    "fashion": FashionLikeWorkload,
    "cifar": CIFARLikeWorkload,
    "sherbrooke": lambda seed=None: VideoWorkload(SHERBROOKE, seed=seed),
    "seq2": lambda seed=None: VideoWorkload(TRAFFIC_SEQ2, seed=seed),
    "zipfian": ZipfianKVWorkload,
    "churn": ChurnTTLWorkload,
}


def make_workload(name: str, seed: int | None = None, **kwargs) -> Workload:
    """Instantiate a registered workload by its figure label."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
    return factory(seed=seed, **kwargs)


def workload_names() -> list[str]:
    """All registered workload names."""
    return sorted(WORKLOADS)

"""Mixing and phasing of workloads (the Fig. 10 workload-shift driver).

``MixtureWorkload`` interleaves items from several source workloads with
given weights — the paper's phase 2 streams MNIST and Fashion-MNIST at a
1:2 ratio.  All sources must agree on ``item_bytes``.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["MixtureWorkload"]


class MixtureWorkload(Workload):
    """Randomly interleave several same-width workloads."""

    name = "mixture"

    def __init__(
        self,
        sources: list[Workload],
        weights: list[float] | None = None,
        seed: int | None = None,
    ) -> None:
        if not sources:
            raise ValueError("at least one source workload is required")
        widths = {w.item_bytes for w in sources}
        if len(widths) != 1:
            raise ValueError(f"sources disagree on item_bytes: {sorted(widths)}")
        super().__init__(item_bytes=sources[0].item_bytes, seed=seed)
        self.sources = sources
        if weights is None:
            weights = [1.0] * len(sources)
        if len(weights) != len(sources):
            raise ValueError(
                f"{len(weights)} weights for {len(sources)} sources"
            )
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.weights = np.asarray(weights, dtype=np.float64) / total

    def generate(self, n: int) -> np.ndarray:
        choices = self.rng.choice(len(self.sources), size=n, p=self.weights)
        out = np.empty((n, self.item_bytes), dtype=np.uint8)
        for idx, source in enumerate(self.sources):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = source.generate(count)
        return self._validate(out)

"""Workload interface: seeded generators of fixed-size binary items.

Every evaluation dataset of the paper is represented as a generator that
yields ``(n, item_bytes)`` uint8 matrices.  Real downloads (UCI corpora,
Keras images, video files) are unavailable offline, so each generator is a
synthetic stand-in engineered to preserve the property PNW exploits: the
*bit-level similarity structure* of the values (see DESIGN.md §3 for the
per-dataset rationale).

Generators are deterministic in their seed and stateful: successive
``generate`` calls continue the same stream, which matters for the
temporal datasets (video, workload-shift phases).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Workload"]


class Workload(ABC):
    """A seeded stream of fixed-size binary items."""

    #: Registry/display name ("amazon", "roadnet", ...).
    name: str = "abstract"

    def __init__(self, item_bytes: int, seed: int | None = None) -> None:
        if item_bytes <= 0:
            raise ValueError(f"item_bytes must be positive, got {item_bytes}")
        self.item_bytes = item_bytes
        self.rng = np.random.default_rng(seed)

    @property
    def item_bits(self) -> int:
        """Bits per generated item."""
        return self.item_bytes * 8

    @abstractmethod
    def generate(self, n: int) -> np.ndarray:
        """Produce the next ``n`` items as an ``(n, item_bytes)`` array."""

    def batches(self, n: int, batch_size: int):
        """Yield the next ``n`` items in ``(<= batch_size, item_bytes)``
        chunks — the feed shape of the store's batch write pipeline.

        Chunks continue the workload's single stream (each call to
        :meth:`generate` picks up where the last left off) and are fully
        deterministic for a given seed and chunking.  Generators may
        consume randomness in ``n``-dependent ways, so a chunked stream
        is not promised to be item-identical to one ``generate(n)`` call
        — drivers comparing batched against sequential feeding should
        materialise the items once and group them, as the benchmark does.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        remaining = n
        while remaining > 0:
            take = min(batch_size, remaining)
            yield self.generate(take)
            remaining -= take

    def split_old_new(self, n_old: int, n_new: int) -> tuple[np.ndarray, np.ndarray]:
        """Generate a warm-up batch and a measurement batch in one stream.

        Mirrors the paper's methodology: "old data" fills the data zone and
        trains the model, then the remaining items replace it.
        """
        combined = self.generate(n_old + n_new)
        return combined[:n_old], combined[n_old:]

    def _validate(self, items: np.ndarray) -> np.ndarray:
        items = np.ascontiguousarray(items, dtype=np.uint8)
        if items.ndim != 2 or items.shape[1] != self.item_bytes:
            raise ValueError(
                f"{type(self).__name__} produced shape {items.shape}, "
                f"expected (n, {self.item_bytes})"
            )
        return items

    def __repr__(self) -> str:
        return f"{type(self).__name__}(item_bytes={self.item_bytes})"

"""Synthetic integer workloads (paper §VI-D, Figures 6e and 6f).

The paper generates 32-bit keys and values: a clusterable stream sampled
from N(mu=2^31, sigma=2^28), and a hard-to-cluster stream sampled
uniformly from [0, 2^32).  Items are stored as key/value records — a
random 32-bit key followed by the 32-bit value — because that is what the
K/V data zone holds; the key half is incompressible, the value half
carries whatever structure the distribution has.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["NormalIntWorkload", "UniformIntWorkload"]

_U32 = np.uint64(2**32 - 1)


class _IntWorkload(Workload):
    """Shared record packing: [key:4B | value:4B] big-endian per item.

    The paper "execute[s] the K/V operations with randomly selected
    key/values from the same generator" (§VI-A), so keys follow the same
    distribution as values.
    """

    def __init__(self, seed: int | None = None) -> None:
        super().__init__(item_bytes=8, seed=seed)

    def _sample_values(self, n: int) -> np.ndarray:
        raise NotImplementedError

    def generate(self, n: int) -> np.ndarray:
        keys = self._sample_values(n)
        values = self._sample_values(n)
        out = np.empty((n, 8), dtype=np.uint8)
        out[:, :4] = keys.astype(">u4").view(np.uint8).reshape(n, 4)
        out[:, 4:] = values.astype(">u4").view(np.uint8).reshape(n, 4)
        return self._validate(out)


class NormalIntWorkload(_IntWorkload):
    """Values from N(2^31, 2^28), the paper's "regular pattern" stream."""

    name = "normal"

    def __init__(self, seed: int | None = None, mu: float = 2.0**31, sigma: float = 2.0**28) -> None:
        super().__init__(seed=seed)
        self.mu = mu
        self.sigma = sigma

    def _sample_values(self, n: int) -> np.ndarray:
        raw = self.rng.normal(self.mu, self.sigma, size=n)
        return np.clip(np.rint(raw), 0, float(_U32)).astype(np.uint64)


class UniformIntWorkload(_IntWorkload):
    """Uniform random 32-bit values — the adversarial, pattern-free stream."""

    name = "uniform"

    def _sample_values(self, n: int) -> np.ndarray:
        return self.rng.integers(0, 2**32, size=n, dtype=np.uint64)

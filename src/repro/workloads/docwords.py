"""PubMed-DocWords-like workload (paper §VI-B, Figures 7 and 8).

The real UCI "bag-of-words" collection stores per-document word counts.
Documents about the same topic share vocabulary, so their count vectors
are close in Hamming space once serialised.  The stand-in samples each
document from one of a few topics: a topic is a Zipf-weighted
distribution over a fixed vocabulary, and a document is a multinomial
draw of word occurrences serialised as one saturating 8-bit count per
vocabulary slot.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["DocWordsWorkload"]


class DocWordsWorkload(Workload):
    """Bag-of-words count records with topic structure.

    The vocabulary size equals ``item_bytes`` (one count byte per word).
    """

    name = "docwords"

    def __init__(
        self,
        item_bytes: int = 64,
        seed: int | None = None,
        *,
        n_topics: int = 10,
        words_per_doc: int = 120,
        zipf_exponent: float = 1.3,
    ) -> None:
        super().__init__(item_bytes=item_bytes, seed=seed)
        self.n_topics = n_topics
        self.words_per_doc = words_per_doc
        vocabulary = item_bytes
        ranks = np.arange(1, vocabulary + 1, dtype=np.float64)
        base = ranks**-zipf_exponent
        # Each topic permutes the Zipf weights so topics emphasise
        # different words while keeping a realistic frequency profile.
        self._topic_dists = np.empty((n_topics, vocabulary))
        for topic in range(n_topics):
            perm = self.rng.permutation(vocabulary)
            dist = base[perm]
            self._topic_dists[topic] = dist / dist.sum()

    def generate(self, n: int) -> np.ndarray:
        topics = self.rng.integers(0, self.n_topics, size=n)
        out = np.empty((n, self.item_bytes), dtype=np.uint8)
        for i, topic in enumerate(topics):
            counts = self.rng.multinomial(self.words_per_doc, self._topic_dists[topic])
            out[i] = np.minimum(counts, 255).astype(np.uint8)
        return self._validate(out)

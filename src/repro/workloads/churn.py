"""Hot-key and key-churn workloads — the traffic the DRAM tier exists for.

The paper's figure workloads stress the *content* of values (bit-level
similarity); the tier instead exploits the *temporal* structure of keys:

* :class:`ZipfianKVWorkload` — rewrite traffic over a fixed key
  population with Zipf(``alpha``) popularity: a few hot keys absorb most
  writes, so a write-back buffer coalesces the bulk of the stream while
  the long tail passes through.
* :class:`ChurnTTLWorkload` — a CCTV-retention-style stream: a live
  working set of keys each rewritten ~``ttl`` times, then retired
  (deleted) and replaced by a fresh key.  Every value is short-lived by
  construction; :meth:`ChurnTTLWorkload.ops` exposes the full
  put/delete op stream for drivers, while the base :meth:`generate`
  contract yields just the put records.

Both pack items as ``[key | value]`` records (like the synthetic integer
workloads) so a record matrix maps 1:1 onto store buckets.  Values are
drawn from a small set of per-key *profiles* XOR sparse bit noise —
rewrites of a key differ (the store must actually write) yet stay
clusterable, which is what lets the predictive tier's content model
generalise from observed rewrite behaviour to unseen keys.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["ZipfianKVWorkload", "ChurnTTLWorkload"]


class _RecordWorkload(Workload):
    """Shared ``[key | value]`` record packing and profile-noise values."""

    def __init__(
        self,
        seed: int | None = None,
        *,
        key_bytes: int = 8,
        value_bytes: int = 24,
        n_profiles: int = 8,
        flip_rate: float = 0.02,
    ) -> None:
        if key_bytes <= 0 or value_bytes <= 0:
            raise ValueError("key_bytes and value_bytes must be positive")
        if not 0.0 <= flip_rate <= 1.0:
            raise ValueError(f"flip_rate must be in [0, 1], got {flip_rate}")
        super().__init__(item_bytes=key_bytes + value_bytes, seed=seed)
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self.n_profiles = n_profiles
        self.flip_rate = flip_rate
        self._profiles = self.rng.integers(
            0, 256, size=(n_profiles, value_bytes), dtype=np.uint8
        )

    def _encode_key(self, key_id: int) -> bytes:
        return f"k{key_id:06d}".encode().ljust(self.key_bytes, b"\x00")[
            : self.key_bytes
        ]

    def _values_for(self, key_ids: np.ndarray) -> np.ndarray:
        """Profile of each key XOR fresh sparse bit noise (rewrites of a
        key differ but share its profile's bit structure)."""
        base = self._profiles[key_ids % self.n_profiles]
        flips = self.rng.random((len(key_ids), self.value_bytes * 8))
        noise = np.packbits((flips < self.flip_rate), axis=1)
        return base ^ noise

    def _records(self, key_ids: np.ndarray) -> np.ndarray:
        values = self._values_for(key_ids)
        out = np.empty((len(key_ids), self.item_bytes), dtype=np.uint8)
        for row, key_id in enumerate(key_ids):
            out[row, : self.key_bytes] = np.frombuffer(
                self._encode_key(int(key_id)), dtype=np.uint8
            )
        out[:, self.key_bytes :] = values
        return self._validate(out)

    def pairs(self, items: np.ndarray) -> list[tuple[bytes, bytes]]:
        """Split a record matrix into ``(key, value)`` byte pairs — the
        feed shape of ``put_many`` / the ingest queue."""
        return [
            (row[: self.key_bytes].tobytes(), row[self.key_bytes :].tobytes())
            for row in np.ascontiguousarray(items, dtype=np.uint8)
        ]


class ZipfianKVWorkload(_RecordWorkload):
    """Zipf-popular rewrites over a fixed key population.

    Key ranks are sampled with ``p(rank) ∝ 1 / rank**alpha`` over
    ``n_keys`` keys (bounded — no unbounded ``numpy`` Zipf tail), then
    mapped through a fixed random permutation so hot keys are scattered
    across the id space rather than id-ordered.
    """

    name = "zipfian"

    def __init__(
        self,
        seed: int | None = None,
        *,
        n_keys: int = 512,
        alpha: float = 1.2,
        **kwargs,
    ) -> None:
        if n_keys < 1:
            raise ValueError(f"n_keys must be >= 1, got {n_keys}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        super().__init__(seed=seed, **kwargs)
        self.n_keys = n_keys
        self.alpha = alpha
        weights = np.arange(1, n_keys + 1, dtype=np.float64) ** -alpha
        self._probs = weights / weights.sum()
        self._perm = self.rng.permutation(n_keys)

    def generate(self, n: int) -> np.ndarray:
        ranks = self.rng.choice(self.n_keys, size=n, p=self._probs)
        return self._records(self._perm[ranks])


class ChurnTTLWorkload(_RecordWorkload):
    """TTL-style key churn: rewrite a live set, retire, replace.

    Each live key carries a remaining-rewrite budget drawn uniformly
    from ``[1, 2*ttl]``; when a rewrite exhausts it the key is *retired*
    (a DELETE in the op stream) and a brand-new key takes its slot — so
    the key population turns over continuously, as in the paper's CCTV
    retention scenario (§I).
    """

    name = "churn"

    def __init__(
        self,
        seed: int | None = None,
        *,
        working_set: int = 128,
        ttl: int = 12,
        **kwargs,
    ) -> None:
        if working_set < 1:
            raise ValueError(f"working_set must be >= 1, got {working_set}")
        if ttl < 1:
            raise ValueError(f"ttl must be >= 1, got {ttl}")
        super().__init__(seed=seed, **kwargs)
        self.working_set = working_set
        self.ttl = ttl
        self._next_id = 0
        #: slot -> [key_id, remaining rewrites]
        self._live: list[list[int]] = []
        for _ in range(working_set):
            self._live.append(self._fresh())

    def _fresh(self) -> list[int]:
        key_id = self._next_id
        self._next_id += 1
        budget = int(self.rng.integers(1, 2 * self.ttl + 1))
        return [key_id, budget]

    def ops(self, n: int):
        """Yield the next ``n`` rewrites as ``("put", key, value)`` ops,
        interleaved with the ``("delete", key, None)`` retirements they
        cause (so slightly more than ``n`` ops total)."""
        for _ in range(n):
            slot = int(self.rng.integers(0, len(self._live)))
            record = self._live[slot]
            key = self._encode_key(record[0])
            value = self._values_for(np.array([record[0]]))[0].tobytes()
            yield ("put", key, value)
            record[1] -= 1
            if record[1] <= 0:
                yield ("delete", key, None)
                self._live[slot] = self._fresh()

    def generate(self, n: int) -> np.ndarray:
        """The base contract view: the put records of the op stream
        (retirements consume the same RNG stream but emit no item)."""
        rows = np.empty((n, self.item_bytes), dtype=np.uint8)
        row = 0
        for kind, key, value in self.ops(n):
            if kind != "put":
                continue
            rows[row, : self.key_bytes] = np.frombuffer(key, dtype=np.uint8)
            rows[row, self.key_bytes :] = np.frombuffer(value, dtype=np.uint8)
            row += 1
        return self._validate(rows)

"""3D-Road-Network-like workload (paper §VI-B, Fig. 6b).

The real UCI dataset holds 434,874 (longitude, latitude, altitude)
records from roads in North Jutland.  Spatially adjacent records share
their high-order coordinate bits — which is exactly the structure k-means
picks up.  The stand-in walks a vehicle along random polylines inside a
handful of geographic regions and emits fixed-point coordinate records.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["RoadNetworkWorkload"]


class RoadNetworkWorkload(Workload):
    """Fixed-point (lon, lat, alt) records from regional random walks.

    Each record is three big-endian 64-bit fixed-point coordinates plus a
    32-bit road-segment id, 28 bytes total, zero-padded to ``item_bytes``.
    """

    name = "roadnet"

    _RECORD_BYTES = 28

    def __init__(
        self,
        item_bytes: int = 32,
        seed: int | None = None,
        *,
        n_regions: int = 8,
        region_span_deg: float = 0.05,
        walk_step_deg: float = 0.0005,
    ) -> None:
        if item_bytes < self._RECORD_BYTES:
            raise ValueError(
                f"item_bytes must be >= {self._RECORD_BYTES}, got {item_bytes}"
            )
        super().__init__(item_bytes=item_bytes, seed=seed)
        self.n_regions = n_regions
        self.region_span_deg = region_span_deg
        self.walk_step_deg = walk_step_deg
        # North-Jutland-like bounding box: lon 8.1–10.6 E, lat 56.5–57.8 N.
        self._centers = np.column_stack(
            [
                self.rng.uniform(8.1, 10.6, n_regions),
                self.rng.uniform(56.5, 57.8, n_regions),
                self.rng.uniform(0.0, 120.0, n_regions),  # altitude, meters
            ]
        )
        self._position = self._centers.copy()
        self._segment = self.rng.integers(0, 2**32, size=n_regions, dtype=np.uint64)

    @staticmethod
    def _fixed_point(values: np.ndarray) -> np.ndarray:
        """Encode degrees/meters as signed 64-bit with 1e-7 resolution."""
        return np.rint(values * 1e7).astype(np.int64)

    def generate(self, n: int) -> np.ndarray:
        regions = self.rng.integers(0, self.n_regions, size=n)
        out = np.zeros((n, self.item_bytes), dtype=np.uint8)
        for i, region in enumerate(regions):
            step = self.rng.normal(0.0, self.walk_step_deg, size=3)
            step[2] *= 100.0  # altitude wanders more, in meters
            self._position[region] += step
            # Keep the walk inside its region so high-order bits stay shared.
            drift = self._position[region] - self._centers[region]
            limit = self.region_span_deg
            self._position[region] -= np.clip(drift, -limit, limit) * 0.01
            coords = self._fixed_point(self._position[region])
            record = np.empty(self._RECORD_BYTES, dtype=np.uint8)
            record[:24] = coords.astype(">i8").view(np.uint8)
            self._segment[region] += int(self.rng.integers(0, 3))
            record[24:28] = (
                np.array([self._segment[region] & 0xFFFFFFFF], dtype=np.uint64)
                .astype(">u4")
                .view(np.uint8)
            )
            out[i, : self._RECORD_BYTES] = record
        return self._validate(out)

"""Amazon-Access-Samples-like workload (paper §VI-B, Fig. 6a).

The real UCI dataset is 30K access-log entries over ~20K binary
attributes with fewer than 10% active per sample — i.e. sparse binary
vectors whose active sets are highly correlated within a user "role".
Our stand-in samples a role template (a fixed sparse bit pattern per
role), then perturbs it with a small symmetric bit-flip noise.  This
reproduces the property PNW exploits: samples of the same role are a few
bit flips apart, samples of different roles are far apart.
"""

from __future__ import annotations

import numpy as np

from .base import Workload

__all__ = ["AmazonAccessWorkload"]


class AmazonAccessWorkload(Workload):
    """Sparse binary access-log records drawn from role templates.

    Parameters
    ----------
    item_bytes:
        Record width; 64 bytes (512 bits) by default, the unit of the
        paper's bit-update metric.
    n_roles:
        Distinct access-pattern templates (cluster structure of the data).
    density:
        Fraction of attribute bits set in each template (<10% as in UCI).
    flip_rate:
        Per-bit probability that a sample deviates from its template.
    """

    name = "amazon"

    def __init__(
        self,
        item_bytes: int = 64,
        seed: int | None = None,
        *,
        n_roles: int = 12,
        density: float = 0.08,
        flip_rate: float = 0.01,
    ) -> None:
        super().__init__(item_bytes=item_bytes, seed=seed)
        if not 0.0 < density < 1.0:
            raise ValueError(f"density must be in (0, 1), got {density}")
        if not 0.0 <= flip_rate < 0.5:
            raise ValueError(f"flip_rate must be in [0, 0.5), got {flip_rate}")
        self.n_roles = n_roles
        self.density = density
        self.flip_rate = flip_rate
        self._templates = (
            self.rng.random((n_roles, self.item_bits)) < density
        ).astype(np.uint8)
        # Zipf-ish role popularity: a few hot roles dominate, like real
        # access logs.
        weights = 1.0 / np.arange(1, n_roles + 1)
        self._role_probs = weights / weights.sum()

    def generate(self, n: int) -> np.ndarray:
        roles = self.rng.choice(self.n_roles, size=n, p=self._role_probs)
        bits = self._templates[roles].copy()
        noise = (self.rng.random(bits.shape) < self.flip_rate).astype(np.uint8)
        np.bitwise_xor(bits, noise, out=bits)
        return self._validate(np.packbits(bits, axis=1))

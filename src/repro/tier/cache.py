"""Bounded DRAM read cache (the BufferCache half of the tier).

A plain LRU over normalized keys: GETs that hit skip the store entirely
(no index lookup, no data-zone read, no read-latency accounting on the
simulated device), misses fill the cache with the value the store
returned.  Any mutation of a key invalidates its entry — the cache is
read-allocate only, so it can never serve a value the store (or the
write buffer, which is consulted first) doesn't agree with.
"""

from __future__ import annotations

from collections import OrderedDict

from .stats import TierStats

__all__ = ["BufferCache"]


class BufferCache:
    """LRU cache of ``key -> value_bytes`` with hit/miss/evict accounting.

    ``capacity`` is in entries; ``0`` disables the cache (every lookup
    misses, fills are dropped) without callers needing a special case.
    Values are the exact padded bytes ``store.get`` returns, so a hit is
    indistinguishable from a store read.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = TierStats()
        self._entries: "OrderedDict[bytes, bytes]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def lookup(self, key: bytes) -> bytes | None:
        """Return the cached value (refreshing recency) or ``None``."""
        value = self._entries.get(key)
        if value is None:
            self.stats.cache_misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.cache_hits += 1
        return value

    def fill(self, key: bytes, value: bytes) -> None:
        """Admit a value read from the store, evicting the LRU entry if
        the cache is full.  A re-fill of a present key just refreshes it."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.cache_evictions += 1
        self._entries[key] = value

    def invalidate(self, key: bytes) -> None:
        """Drop a key's entry after its value was mutated (no-op if
        absent; only actual drops count as invalidations)."""
        if self._entries.pop(key, None) is not None:
            self.stats.cache_invalidations += 1

    def clear(self) -> None:
        """Drop every entry (crash / recover); counters survive."""
        self._entries.clear()

"""DRAM tier: buffer cache + longevity-aware write-back buffer.

See :mod:`repro.tier.store` for the subsystem overview.
"""

from .cache import BufferCache
from .classify import LongevityClassifier
from .stats import TierStats
from .store import TIER_MODES, TieredStore
from .writebuffer import StagedEntry, WriteBuffer

__all__ = [
    "BufferCache",
    "LongevityClassifier",
    "StagedEntry",
    "TIER_MODES",
    "TieredStore",
    "TierStats",
    "WriteBuffer",
]

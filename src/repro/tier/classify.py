"""Longevity classification: which writes deserve the DRAM tier.

The data-longevity literature (PAPERS.md: "Exploiting Data Longevity for
Enhancing the Lifetime of Flash-based Storage Class Memory") shows that
routing predicted-*short-lived* values through DRAM and only
long-lived values straight to the device materially extends lifetime.
:class:`LongevityClassifier` makes that call per operation from two
signals, both DRAM-resident and crash-droppable:

* **Key recency** — a key rewritten within the last ``recency_window``
  tier mutations is hot; its next version is very likely to be
  rewritten again, so it goes write-back.  This is the exact mechanism
  that wins on Zipfian hot-key traffic, and it needs no model at all.
* **Content clusters** — for keys with no history, the value itself is
  featurized with the same featurizer stack the store's predictor uses
  (:func:`repro.core.featurizer.make_featurizer` on the config's
  resolved bit/byte encoding) and assigned to a small K-Means cluster
  whose *observed* longevity statistics decide the route.  Evidence
  accrues online: a staged entry rewritten while dirty votes its
  cluster short-lived, one flushed untouched by the interval trigger
  votes it long-lived.  ML-PCM's point that the featurizer already sees
  every payload makes this near-free — one extra transform per
  unclassified op.

Until the content model has trained (the first ``train_after`` observed
values) unseen keys default to **long-lived** (write-through): the
classifier only spends DRAM and risks staged-loss on values it has
positive evidence about.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..core.config import PNWConfig
from ..core.featurizer import make_featurizer
from ..ml.kmeans import KMeans
from .stats import TierStats

__all__ = ["LongevityClassifier"]


class LongevityClassifier:
    """Route each mutation write-back (short-lived) or write-through.

    Deterministic for a given config/seed and op stream: time is the
    tier's mutation sequence number, never the wall clock.
    """

    def __init__(
        self,
        config: PNWConfig,
        *,
        n_clusters: int = 8,
        train_after: int = 512,
        recency_window: int = 2048,
        history: int = 8192,
        threshold: float = 0.5,
        min_evidence: int = 8,
    ) -> None:
        self.config = config
        self.n_clusters = n_clusters
        self.train_after = train_after
        self.recency_window = recency_window
        self.history = history
        self.threshold = threshold
        self.min_evidence = min_evidence
        self.stats = TierStats()
        # The store's featurizer stack on the raw encoding (no PCA: the
        # classifier fits once on early traffic and PCA axes from a few
        # hundred rows would be noise, not signal).
        self._featurizer = make_featurizer(
            config.resolved_featurizer, None, config.seed
        )
        self._model: KMeans | None = None
        self._pending: list[bytes] = []
        #: key -> sequence number of its last write, LRU-pruned.
        self._last_seen: "OrderedDict[bytes, int]" = OrderedDict()
        self._short_votes = np.zeros(n_clusters, dtype=np.int64)
        self._total_votes = np.zeros(n_clusters, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # model lifecycle                                                     #
    # ------------------------------------------------------------------ #

    @property
    def is_trained(self) -> bool:
        return self._model is not None

    def _rows(self, values: list[bytes]) -> np.ndarray:
        width = self.config.value_bytes
        return np.frombuffer(b"".join(values), dtype=np.uint8).reshape(
            len(values), width
        )

    def _maybe_train(self) -> None:
        if self._model is not None or len(self._pending) < self.train_after:
            return
        rows = self._rows(self._pending)
        features = self._featurizer.fit_transform(rows)
        model = KMeans(
            min(self.n_clusters, rows.shape[0]),
            n_init=1,
            max_iter=25,
            seed=self.config.seed,
        )
        model.fit(features)
        self._model = model
        self._pending = []

    def _cluster_of(self, value: bytes) -> int:
        assert self._model is not None
        features = self._featurizer.transform(self._rows([value]))
        return int(self._model.predict(features)[0])

    # ------------------------------------------------------------------ #
    # classification                                                      #
    # ------------------------------------------------------------------ #

    def classify(self, key: bytes, value: bytes, seq: int) -> bool:
        """True -> predicted short-lived (write-back), False -> long.

        ``seq`` is the tier's mutation counter at this op.
        """
        short = self._decide(key, value, seq)
        if short:
            self.stats.predicted_short += 1
        else:
            self.stats.predicted_long += 1
        return short

    def _decide(self, key: bytes, value: bytes, seq: int) -> bool:
        last = self._last_seen.get(key)
        if last is not None and seq - last <= self.recency_window:
            return True
        if self._model is None:
            return False
        cluster = self._cluster_of(value)
        if self._total_votes[cluster] < self.min_evidence:
            return False
        rate = self._short_votes[cluster] / self._total_votes[cluster]
        return rate >= self.threshold

    # ------------------------------------------------------------------ #
    # learning signals (fed by the tiered store)                          #
    # ------------------------------------------------------------------ #

    def record_write(self, key: bytes, value: bytes, seq: int) -> None:
        """Note one mutation of ``key`` (any route) at tier time ``seq``."""
        self._last_seen[key] = seq
        self._last_seen.move_to_end(key)
        while len(self._last_seen) > self.history:
            self._last_seen.popitem(last=False)
        if self._model is None:
            self._pending.append(value)
            self._maybe_train()

    def observe(self, value: bytes, *, short: bool) -> None:
        """Ground-truth vote: a staged entry was rewritten while dirty
        (``short=True``) or aged out of the buffer untouched
        (``short=False``)."""
        if self._model is None:
            return
        cluster = self._cluster_of(value)
        self._total_votes[cluster] += 1
        if short:
            self._short_votes[cluster] += 1

    def reset(self) -> None:
        """Drop all learned state (the tier's ``crash()``: everything
        here is DRAM)."""
        self._model = None
        self._pending = []
        self._last_seen.clear()
        self._short_votes[:] = 0
        self._total_votes[:] = 0

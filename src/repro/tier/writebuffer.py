"""Write-back staging area (the WriteBuffer half of the tier).

One buffer per shard holds that shard's dirty entries — mutations
admitted to DRAM but not yet written to NVM.  A rewrite of a staged key
*coalesces* into the existing entry (the earlier version never touches
an NVM cell: that is the tier's entire wear win), and a flush drains the
entries in staging order through the store's existing ``put_many`` batch
path.

Entries are keyed by normalized key and store the padded value bytes, so
a GET served from the buffer is byte-identical to what the store would
return after a flush.  Each entry remembers whether it *created* its key
(the key was absent from the durable store when first staged): the
tiered store needs that to report membership/length and to cancel a
staged create on DELETE without ever consulting NVM.
"""

from __future__ import annotations

from .stats import TierStats

__all__ = ["WriteBuffer", "StagedEntry"]


class StagedEntry:
    """One dirty key: its latest value and staging metadata."""

    __slots__ = ("value", "is_create", "seq", "rewrites")

    def __init__(self, value: bytes, is_create: bool, seq: int) -> None:
        #: Padded value bytes — what a flush will write.
        self.value = value
        #: True iff the key was absent from the durable store when the
        #: entry was first staged (a flush will insert, not update).
        self.is_create = is_create
        #: Tier mutation sequence number of the *first* staging — the
        #: age anchor for the interval flush trigger.
        self.seq = seq
        #: Rewrites coalesced into this entry while staged.
        self.rewrites = 0


class WriteBuffer:
    """Bounded dirty-entry map for one shard, in staging order.

    ``capacity`` is the size flush trigger: the tiered store drains the
    buffer as soon as :meth:`full` reports True after a staging.  The
    buffer itself never refuses an entry — the bound is enforced by the
    store flushing, which keeps the trigger logic (size vs interval vs
    pressure) in one place.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = TierStats()
        #: Insertion-ordered (Python dict) key -> StagedEntry.
        self._entries: dict[bytes, StagedEntry] = {}
        self._creates = 0

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    @property
    def creates(self) -> int:
        """Staged entries whose key the durable store has never seen."""
        return self._creates

    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def oldest_seq(self) -> int | None:
        """Staging sequence of the oldest dirty entry, or ``None``."""
        for entry in self._entries.values():
            return entry.seq
        return None

    def peek(self, key: bytes) -> StagedEntry | None:
        """The staged entry for ``key`` (GET path), counting a hit."""
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.writeback_hits += 1
        return entry

    def entry(self, key: bytes) -> StagedEntry | None:
        """The staged entry without any accounting (internal checks)."""
        return self._entries.get(key)

    # ------------------------------------------------------------------ #
    # staging                                                             #
    # ------------------------------------------------------------------ #

    def stage(self, key: bytes, value: bytes, *, is_create: bool, seq: int) -> bool:
        """Absorb one mutation; returns True if it coalesced into an
        existing dirty entry (an NVM write saved), False if it staged a
        new one."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.value = value
            entry.rewrites += 1
            self.stats.coalesced += 1
            return True
        self._entries[key] = StagedEntry(value, is_create, seq)
        if is_create:
            self._creates += 1
        self.stats.staged += 1
        return False

    def drop(self, key: bytes) -> StagedEntry | None:
        """Remove and return a staged entry (DELETE reconciliation)."""
        entry = self._entries.pop(key, None)
        if entry is not None and entry.is_create:
            self._creates -= 1
        return entry

    def take_all(self) -> list[tuple[bytes, StagedEntry]]:
        """Detach every dirty entry in staging order (flush path)."""
        items = list(self._entries.items())
        self._entries.clear()
        self._creates = 0
        return items

    def restage(self, items: list[tuple[bytes, StagedEntry]]) -> None:
        """Put detached entries back (a flush that failed part-way
        re-stages the unwritten remainder, preserving staging order
        relative to each other and ahead of nothing — the buffer is
        empty when this runs).  No re-accounting: the entries were
        already counted when first staged."""
        for key, entry in items:
            self._entries[key] = entry
            if entry.is_create:
                self._creates += 1

    def clear(self) -> int:
        """Drop every dirty entry (crash); returns how many were lost."""
        lost = len(self._entries)
        self._entries.clear()
        self._creates = 0
        return lost

"""The DRAM tier: a longevity-aware cache + write-back buffer in front
of the NVM store.

The paper's premise is that NVM cells endure a bounded number of
writes, yet without this module every PUT/UPDATE — including a value
that will be rewritten milliseconds later — programs NVM cells
immediately.  :class:`TieredStore` interposes a DRAM tier between the
public K/V API and the store's staged write engine:

* a :class:`~repro.tier.cache.BufferCache` — bounded LRU read cache;
  GET hits never touch the index or the data zone;
* one :class:`~repro.tier.writebuffer.WriteBuffer` per shard — a
  bounded write-back staging area that absorbs mutations in DRAM,
  coalesces rewrites of hot keys (each coalesce is an NVM write that
  never happens), and drains through the store's existing ``put_many``
  batch pipeline on three triggers: **size** (a shard's buffer reaches
  capacity), **interval** (the oldest dirty entry ages past
  ``tier_flush_ops`` tier mutations), and **pressure** (total staged
  entries across shards reach the global ``tier_writeback_entries``
  bound);
* a :class:`~repro.tier.classify.LongevityClassifier`
  (``mode="predictive"``) that routes predicted-short-lived values
  write-back and predicted-long-lived values write-through, reusing the
  store's featurizer stack on each payload.

Placement policy (``tier_mode`` on :class:`~repro.core.config.PNWConfig`
or the ``mode=`` argument):

=================  =====================================================
``write_through``  Every mutation passes straight to the store — the
                   durable state is *byte-identical* to running without
                   a tier; only GETs are accelerated by the read cache.
``write_back``     Every mutation stages in DRAM first; NVM sees only
                   coalesced flushes.  Maximum wear reduction, bounded
                   window of volatile data.
``predictive``     Per-op: the longevity classifier picks write-back
                   for predicted-short-lived values and write-through
                   for the rest — wear savings close to ``write_back``
                   with a much smaller volatile window.
=================  =====================================================

Crash semantics — precise by construction:

* ``crash()`` loses **exactly** the dirty write-back entries that no
  flush has drained; the count is recorded in
  :attr:`~repro.tier.stats.TierStats.unflushed_lost` before the
  underlying store crashes.  Write-through ops (and flushed write-back
  entries) are exactly as durable as on the bare store.
* ``recover()`` rebuilds the store from NVM as usual; tier caches start
  cold (they are DRAM).
* ``close()`` (and ``flush()``) drain every dirty entry
  deterministically through the batch path, so a clean shutdown loses
  nothing.

Composition: the tier wraps a single :class:`~repro.core.store.PNWStore`
or a :class:`~repro.shard.ShardedPNWStore` under either executor — the
write buffers are per shard, so flushes become per-shard sub-batches on
the store's own thread pool or worker processes.  It also speaks the
``run_shard_batches`` / ``shard_of_key`` / ``n_shards`` surface, so an
:class:`~repro.ingest.IngestQueue` (and the asyncio front door above
it) can drain through the tier unchanged.  Reports of DRAM-absorbed ops
are :meth:`~repro.core.reports.OperationReport.make_buffered` sentinels
(``address == BUFFERED_ADDRESS``, zero NVM cost); read-your-write holds
at every moment because GETs consult the write buffer first.

Thread safety: one reentrant lock serializes every tier entry point.
Under it, flushes still fan out across shards inside the store (its
per-shard locks and executors are untouched), so write-back mode
*increases* effective batching rather than fighting the store's
concurrency.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterable

import numpy as np

from ..core.config import PNWConfig
from ..core.reports import OperationReport, StoreMetrics
from ..engine.plan import check_unique, validate_values
from ..errors import (
    ConfigError,
    DegradedModeError,
    KeyNotFoundError,
    WorkerCrashedError,
)
from ..index.base import KeyIndex
from ..nvm.stats import WearStats
from .cache import BufferCache
from .classify import LongevityClassifier
from .stats import TierStats
from .writebuffer import StagedEntry, WriteBuffer

__all__ = ["TieredStore", "TIER_MODES"]

TIER_MODES = ("write_through", "write_back", "predictive")


class TieredStore:
    """DRAM buffer cache + write-back buffer wrapping a PNW store.

    Parameters
    ----------
    store:
        A :class:`~repro.core.store.PNWStore` or
        :class:`~repro.shard.ShardedPNWStore` (either executor).  The
        tier becomes the store's only mutation driver; don't mutate the
        wrapped store directly while the tier is in use.
    mode:
        ``"write_through"`` / ``"write_back"`` / ``"predictive"``.
        Defaults to the store config's ``tier_mode`` (or
        ``"write_back"`` if that is ``"off"``).
    cache_entries, writeback_entries, flush_ops:
        Override the config's ``tier_cache_entries`` /
        ``tier_writeback_entries`` / ``tier_flush_ops``.
    """

    def __init__(
        self,
        store,
        *,
        mode: str | None = None,
        cache_entries: int | None = None,
        writeback_entries: int | None = None,
        flush_ops: int | None = None,
    ) -> None:
        self.store = store
        self.config: PNWConfig = store.config
        if mode is None:
            mode = (
                self.config.tier_mode
                if self.config.tier_mode != "off"
                else "write_back"
            )
        if mode not in TIER_MODES:
            raise ConfigError(
                f"tier mode must be one of {TIER_MODES}, got {mode!r}"
            )
        self.mode = mode
        self._sharded = hasattr(store, "shard_of_key")
        #: Lane count for the admission layer (one per shard).
        self.n_shards: int = store.n_shards if self._sharded else 1
        cache_entries = (
            self.config.tier_cache_entries
            if cache_entries is None
            else cache_entries
        )
        self.writeback_entries = (
            self.config.tier_writeback_entries
            if writeback_entries is None
            else writeback_entries
        )
        self.flush_ops = (
            self.config.tier_flush_ops if flush_ops is None else flush_ops
        )
        if self.writeback_entries < 1:
            raise ConfigError(
                f"writeback_entries must be >= 1, got {self.writeback_entries}"
            )
        if self.flush_ops < 1:
            raise ConfigError(
                f"flush_ops must be >= 1, got {self.flush_ops}"
            )
        self.cache = BufferCache(cache_entries)
        per_shard = max(1, self.writeback_entries // self.n_shards)
        self._buffers = [WriteBuffer(per_shard) for _ in range(self.n_shards)]
        self.classifier = (
            LongevityClassifier(self.config) if mode == "predictive" else None
        )
        #: Tier-level counters (flush/routing/crash); component counters
        #: live on the cache, buffers, and classifier.  ``tier_stats``
        #: merges them all.
        self._local = TierStats()
        self._lock = threading.RLock()
        self._seq = 0

    # ------------------------------------------------------------------ #
    # plumbing                                                            #
    # ------------------------------------------------------------------ #

    def _normalize(self, key: bytes) -> bytes:
        return KeyIndex.normalize_key(key, self.config.key_bytes)

    def _pad(self, value: bytes | np.ndarray) -> bytes:
        if isinstance(value, np.ndarray):
            value = value.tobytes()
        return bytes(value).ljust(self.config.value_bytes, b"\x00")

    def shard_of_key(self, key: bytes) -> int:
        """The write-buffer lane (= store shard) owning ``key``."""
        if self._sharded:
            return self.store.shard_of_key(key)
        self._normalize(key)  # single-zone: still validate the key
        return 0

    # Routing passthroughs: the tier is transparent to load-aware
    # routing.  A migration while entries sit in a write buffer is
    # benign — flushes route fresh through ``store.put_many`` — but the
    # ingest layer still needs the epoch/pin surface to re-lane pending
    # runs, so delegate when the backing store is sharded.

    @property
    def routing_epoch(self) -> int:
        """The backing store's routing-table version (0 when single)."""
        return getattr(self.store, "routing_epoch", 0)

    def routing_pin(self):
        """Read-hold on the backing store's routing epoch."""
        pin = getattr(self.store, "routing_pin", None)
        if pin is None:
            return contextlib.nullcontext()
        return pin()

    def rebalance_check(self, ops: int = 1) -> bool:
        """Forward rebalance accounting to the backing store."""
        check = getattr(self.store, "rebalance_check", None)
        if check is None:
            return False
        return check(ops)

    def router_stats(self):
        """The backing store's routing counters, or ``None``."""
        stats = getattr(self.store, "router_stats", None)
        if stats is None:
            return None
        return stats()

    @property
    def tier_stats(self) -> TierStats:
        """Whole-tier counter snapshot, merged across every component."""
        parts = [self._local, self.cache.stats]
        parts.extend(buffer.stats for buffer in self._buffers)
        if self.classifier is not None:
            parts.append(self.classifier.stats)
        return TierStats.merge(parts)

    @property
    def dirty_entries(self) -> int:
        """Write-back entries staged in DRAM but not yet flushed."""
        return sum(len(buffer) for buffer in self._buffers)

    def _shed_if_degraded(self) -> None:
        """Refuse to stage writes a degraded store could never flush.

        Write-back staging would otherwise keep acknowledging
        puts/updates in DRAM while the media underneath has crossed its
        retirement watermark — data that could only ever be lost.  The
        write-through path needs no tier check: the store itself sheds,
        and :meth:`_mutate_many` forwards its error unchanged."""
        if self.mode != "write_through" and getattr(
            self.store, "degraded", False
        ):
            exc = DegradedModeError(
                "tier write shed: the underlying store crossed its media "
                "retirement watermark; retry after deletes or scrubbing "
                "free healthy capacity"
            )
            exc.committed_reports = []
            raise exc

    # ------------------------------------------------------------------ #
    # K/V operations                                                      #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT through the tier (absorbed or passed through per policy)."""
        return self.put_many([(key, value)])[0]

    def put_unique(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """Insert-only PUT; staged creates count as existing."""
        return self.put_many([(key, value)], unique=True)[0]

    def update(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """UPDATE through the tier; missing keys (staged creates count
        as present) raise :class:`KeyNotFoundError`."""
        return self.update_many([(key, value)])[0]

    def delete(self, key: bytes) -> OperationReport:
        """DELETE through the tier.  A staged create is cancelled purely
        in DRAM; anything durable is deleted write-through."""
        return self.delete_many([key])[0]

    def put_many(
        self,
        pairs: Iterable[tuple[bytes, bytes | np.ndarray]],
        *,
        unique: bool = False,
    ) -> list[OperationReport]:
        """Batched PUT.  Values are validated up front (an oversized
        value rejects the batch before any mutation), and with
        ``unique=True`` the whole batch is pre-checked against the tier
        view — staged creates included — with the engine's shared
        :func:`~repro.engine.plan.check_unique`."""
        items = list(pairs)
        keys = [self._normalize(key) for key, _ in items]
        validate_values(self.config, [value for _, value in items])
        with self._lock:
            self._shed_if_degraded()
            if unique:
                check_unique(keys, lambda k: k in self)
            return self._mutate_many(
                "put", list(zip(keys, (value for _, value in items)))
            )

    def update_many(
        self, pairs: Iterable[tuple[bytes, bytes | np.ndarray]]
    ) -> list[OperationReport]:
        """Batched UPDATE; a missing key raises after the prefix is
        applied (``committed_reports`` carried), like the bare store."""
        items = list(pairs)
        keys = [self._normalize(key) for key, _ in items]
        validate_values(self.config, [value for _, value in items])
        with self._lock:
            self._shed_if_degraded()
            return self._mutate_many(
                "update", list(zip(keys, (value for _, value in items)))
            )

    def delete_many(self, keys: Iterable[bytes]) -> list[OperationReport]:
        """Batched DELETE with the same prefix-then-raise miss semantics
        as the bare store."""
        normalized = [self._normalize(key) for key in keys]
        with self._lock:
            return self._mutate_many(
                "delete", [(key, None) for key in normalized]
            )

    def get(self, key: bytes) -> bytes:
        """GET: write buffer first (read-your-write for staged ops),
        then the DRAM read cache, then the store (filling the cache)."""
        key = self._normalize(key)
        with self._lock:
            if self.mode != "write_through":
                entry = self._buffers[self.shard_of_key(key)].peek(key)
                if entry is not None:
                    return entry.value
            cached = self.cache.lookup(key)
            if cached is not None:
                return cached
            value = self.store.get(key)
            self.cache.fill(key, value)
            return value

    # ------------------------------------------------------------------ #
    # the mutation pipeline                                               #
    # ------------------------------------------------------------------ #

    def _store_op(self, kind: str):
        return {
            "put": self.store.put_many,
            "update": self.store.update_many,
            "delete": self.store.delete_many,
        }[kind]

    def _mutate_many(
        self, kind: str, items: list[tuple[bytes, bytes | None]]
    ) -> list[OperationReport]:
        if self.mode == "write_through":
            return self._pass_through(kind, items)
        out: list[OperationReport] = []
        #: Consecutive pass-through ops awaiting one batched store call.
        run: list = []

        def flush_run() -> None:
            if not run:
                return
            batch, run[:] = list(run), []
            try:
                reports = self._store_op(kind)(batch)
            except Exception as exc:
                committed = getattr(exc, "committed_reports", None)
                if committed is not None:
                    exc.committed_reports = out + list(committed)
                raise
            out.extend(reports)
            self._local.write_through += len(reports)

        for key, value in items:
            self._seq += 1
            if kind == "delete":
                self._delete_one(key, run, flush_run, out)
            else:
                self._write_one(kind, key, value, run, flush_run, out)
            try:
                self._check_triggers()
            except Exception as exc:
                # A flush trigger fired mid-batch and failed.  The
                # store-level reports on the exception describe the
                # flush batch (staged entries, possibly from earlier
                # calls) — keep them on ``flush_committed_reports`` and
                # make ``committed_reports`` honour this call's
                # partial-commit contract: the ops applied so far.
                flushed = getattr(exc, "committed_reports", None)
                if flushed is not None:
                    exc.flush_committed_reports = list(flushed)
                exc.committed_reports = list(out)
                raise
        flush_run()
        return out

    def _write_one(self, kind, key, value, run, flush_run, out) -> None:
        buffer = self._buffers[self.shard_of_key(key)]
        padded = self._pad(value)
        self.cache.invalidate(key)
        entry = buffer.entry(key)
        if entry is not None:
            # Rewrite of a dirty key: always absorbed — this coalesce IS
            # the NVM write the tier saves.
            buffer.stage(key, padded, is_create=entry.is_create, seq=entry.seq)
            if self.classifier is not None:
                if entry.rewrites == 1:
                    # First rewrite while staged: ground truth that this
                    # content is short-lived (voted once per entry).
                    self.classifier.observe(padded, short=True)
                self.classifier.record_write(key, padded, self._seq)
            out.append(OperationReport.make_buffered(kind, key))
            return
        exists = key in self.store
        if kind == "update" and not exists:
            flush_run()
            exc = KeyNotFoundError(f"key {key!r} not found")
            exc.committed_reports = list(out)
            raise exc
        if self.mode == "write_back":
            write_back = True
        else:
            write_back = self.classifier.classify(key, padded, self._seq)
        if self.classifier is not None:
            self.classifier.record_write(key, padded, self._seq)
        if write_back:
            if run:
                # The pending pass-through run may hold an earlier op on
                # this same key; drain it and recompute existence so
                # is_create reflects the store state a flush will see.
                flush_run()
                exists = key in self.store
            buffer.stage(key, padded, is_create=not exists, seq=self._seq)
            out.append(OperationReport.make_buffered(kind, key))
        else:
            run.append((key, value))

    def _delete_one(self, key, run, flush_run, out) -> None:
        buffer = self._buffers[self.shard_of_key(key)]
        self.cache.invalidate(key)
        entry = buffer.entry(key)
        if entry is None:
            run.append(key)  # pass through; store raises on a true miss
            return
        flush_run()
        buffer.drop(key)
        if entry.is_create:
            # The store never saw this key: cancelling the staged create
            # is the whole delete.
            out.append(OperationReport.make_buffered("delete", key))
        else:
            # A durable version exists underneath: delete it through.
            run.append(key)

    def _pass_through(
        self, kind: str, items: list[tuple[bytes, bytes | None]]
    ) -> list[OperationReport]:
        """``write_through`` mode: hand the whole batch to the store so
        durable state, reports, and error semantics are byte-identical
        to running without a tier."""
        batch = [key if kind == "delete" else (key, value) for key, value in items]
        for key, _ in items:
            self._seq += 1
            self.cache.invalidate(key)
        try:
            reports = self._store_op(kind)(batch)
        except Exception as exc:
            committed = getattr(exc, "committed_reports", None)
            self._local.write_through += len(committed) if committed else 0
            raise
        self._local.write_through += len(reports)
        return reports

    # ------------------------------------------------------------------ #
    # flushing                                                            #
    # ------------------------------------------------------------------ #

    def _check_triggers(self) -> None:
        """Fire the size / pressure / interval flush triggers."""
        full = [
            shard_id
            for shard_id, buffer in enumerate(self._buffers)
            if buffer.full()
        ]
        if full:
            self._flush_buffers(full, aged=False)
        if self.dirty_entries >= self.writeback_entries:
            self._flush_buffers(range(self.n_shards), aged=False)
            return
        aged = [
            shard_id
            for shard_id, buffer in enumerate(self._buffers)
            if buffer.oldest_seq() is not None
            and self._seq - buffer.oldest_seq() >= self.flush_ops
        ]
        if aged:
            self._flush_buffers(aged, aged=True)

    def _flush_buffers(self, shard_ids, *, aged: bool) -> int:
        """Drain the given shards' dirty entries through ``put_many``.

        One store call covers every shard (the sharded store splits it
        into concurrent per-shard sub-batches).  On a mid-flush failure
        (e.g. pool exhaustion) the entries the store reports committed
        stay flushed and the remainder is re-staged, so nothing is
        silently dropped; the error escapes to the caller that
        triggered the flush.
        """
        groups: list[tuple[int, list[tuple[bytes, StagedEntry]]]] = []
        for shard_id in shard_ids:
            taken = self._buffers[shard_id].take_all()
            if taken:
                groups.append((shard_id, taken))
        batch = [
            (key, entry.value) for _, taken in groups for key, entry in taken
        ]
        if not batch:
            return 0
        self._local.flush_events += 1
        try:
            reports = self._flush_batch_retrying(batch)
        except Exception as exc:
            committed = {
                report.key
                for report in getattr(exc, "committed_reports", [])
            }
            for shard_id, taken in groups:
                self._buffers[shard_id].restage(
                    [(k, e) for k, e in taken if k not in committed]
                )
            self._local.flushed += len(committed)
            raise
        self._local.flushed += len(reports)
        if self.classifier is not None and aged:
            # Entries that aged a full interval without a rewrite are
            # ground truth for long-lived content.
            for _, taken in groups:
                for _, entry in taken:
                    if entry.rewrites == 0:
                        self.classifier.observe(entry.value, short=False)
        return len(reports)

    #: Worker crashes absorbed per flush before the error surfaces.
    _flush_worker_retries = 3

    def _flush_batch_retrying(self, batch) -> list[OperationReport]:
        """``store.put_many`` with bounded retry over mid-flush worker
        crashes.  A :class:`~repro.errors.WorkerCrashedError` means the
        shard worker died and its zone already recovered; the batch's
        flagged prefix survived as durable upserts, so re-putting the
        whole batch converges on exactly the intended state.  Any other
        error (pool exhaustion, degraded shed) propagates to the
        restaging logic in :meth:`_flush_buffers`."""
        for attempt in range(self._flush_worker_retries + 1):
            try:
                return self.store.put_many(batch)
            except WorkerCrashedError:
                if attempt == self._flush_worker_retries:
                    raise
                self._local.flush_retries += 1
        raise AssertionError("unreachable")  # pragma: no cover

    def flush(self) -> int:
        """Drain every dirty entry to NVM now; returns entries written."""
        with self._lock:
            return self._flush_buffers(range(self.n_shards), aged=False)

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def warm_up(self, old_data: np.ndarray) -> None:
        """Delegate to the store (the tier has nothing to warm)."""
        with self._lock:
            self.store.warm_up(old_data)

    def retrain(self) -> None:
        """Flush first — so staged values are zone contents the model
        can see — then retrain the store."""
        with self._lock:
            self._flush_buffers(range(self.n_shards), aged=False)
            self.store.retrain()

    def crash(self) -> None:
        """Power failure: every DRAM structure is lost.

        Loses *exactly* the unflushed write-back entries — counted into
        ``tier_stats.unflushed_lost`` — plus the (rebuildable) read
        cache and classifier state; then the store's own DRAM
        structures crash as usual.
        """
        with self._lock:
            lost = sum(buffer.clear() for buffer in self._buffers)
            self._local.unflushed_lost += lost
            self.cache.clear()
            if self.classifier is not None:
                self.classifier.reset()
            self.store.crash()

    def recover(self) -> None:
        """Rebuild the store from NVM; tier caches start cold."""
        with self._lock:
            self.store.recover()

    def close(self) -> None:
        """Deterministic shutdown: flush every dirty entry, then close
        the store (if it has a ``close``).  Nothing staged is lost on a
        clean close."""
        with self._lock:
            self._flush_buffers(range(self.n_shards), aged=False)
            close = getattr(self.store, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "TieredStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # ingest-queue surface                                                #
    # ------------------------------------------------------------------ #

    def run_shard_batches(
        self, batches: dict[int, list[tuple[str, list]]]
    ) -> dict[int, list[tuple[list[OperationReport] | None, BaseException | None]]]:
        """The :class:`~repro.ingest.IngestQueue` drain path, through
        the tier.  Runs execute in shard order under the tier lock (the
        tier's buffers and classifier are shared state); the flushes
        they trigger still fan out across the store's shards, so the
        admission layer keeps its multi-lane surface and write-back
        batching stays intact.

        Known tradeoff: the tier lock serializes the admission layer's
        lanes here, so pure write-through / pass-through traffic no
        longer runs concurrently across shards (only the fan-out inside
        each store call remains — notable on the process executor).
        Write-back traffic loses little: its cost is DRAM staging, and
        the coalesced flushes still parallelize.  If write-through
        ingest throughput becomes the bottleneck, per-shard tier locks
        or routing pass-through runs around the tier are the follow-ups.
        """
        results: dict[
            int, list[tuple[list[OperationReport] | None, BaseException | None]]
        ] = {}
        ops = {
            "put": self.put_many,
            "update": self.update_many,
            "delete": self.delete_many,
        }
        for shard_id in sorted(batches):
            outcomes: list[
                tuple[list[OperationReport] | None, BaseException | None]
            ] = []
            for kind, items in batches[shard_id]:
                try:
                    reports = ops[kind](items)
                except Exception as exc:  # noqa: BLE001 - routed to futures
                    outcomes.append((None, exc))
                else:
                    outcomes.append((reports, None))
            results[shard_id] = outcomes
        return results

    # ------------------------------------------------------------------ #
    # aggregation / introspection                                         #
    # ------------------------------------------------------------------ #

    @property
    def metrics(self) -> StoreMetrics:
        """The wrapped store's operation counters (NVM-side view)."""
        return self.store.metrics

    def wear_stats(self) -> WearStats:
        """Data-zone wear accounting (merged across shards if sharded)."""
        if self._sharded:
            return self.store.wear_stats()
        return self.store.nvm.stats

    def wear_summary(self) -> dict[str, float]:
        """Headline counters of the data-zone wear."""
        return self.wear_stats().summary()

    def media_stats(self):
        """Media-health counters of the wrapped store (merged if sharded)."""
        if self._sharded:
            return self.store.media_stats()
        return self.store.media_stats

    @property
    def degraded(self) -> bool:
        """Whether the wrapped store is shedding writes (media watermark)."""
        return getattr(self.store, "degraded", False)

    def scrub(self, limit: int | None = None) -> dict[str, int]:
        """One patrol-scrub pass on the wrapped store (the tier's own
        structures are DRAM — nothing of the tier needs scrubbing)."""
        with self._lock:
            return self.store.scrub(limit)

    @property
    def live_fraction(self) -> float:
        """Occupied fraction of the underlying data zone (staged-only
        creates are not in the zone yet)."""
        return self.store.live_fraction

    def __contains__(self, key: bytes) -> bool:
        key = self._normalize(key)
        with self._lock:
            if self.mode != "write_through":
                if key in self._buffers[self.shard_of_key(key)]:
                    return True
            return key in self.store

    def __len__(self) -> int:
        with self._lock:
            return len(self.store) + sum(
                buffer.creates for buffer in self._buffers
            )

"""Counters for the DRAM tier (buffer cache + write-back buffer).

Every tier component (the read cache, each per-shard write buffer, the
longevity classifier, and the :class:`~repro.tier.store.TieredStore`
itself) owns one :class:`TierStats` and bumps only its own fields;
:meth:`TierStats.merge` sums the parts into the whole-tier snapshot the
same way :meth:`~repro.core.reports.StoreMetrics.merge` and
:meth:`~repro.nvm.stats.WearStats.merge` aggregate per-shard accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

__all__ = ["TierStats"]


@dataclass
class TierStats:
    """Operation counters for the DRAM tier in front of the NVM store.

    Cache counters (owned by :class:`~repro.tier.cache.BufferCache`):

    * ``cache_hits`` / ``cache_misses`` — GET lookups served from /
      falling through the DRAM read cache.
    * ``cache_evictions`` — LRU entries dropped to admit a new fill.
    * ``cache_invalidations`` — entries dropped because their key was
      mutated (the cache never serves a stale value).

    Write-buffer counters (owned by each per-shard
    :class:`~repro.tier.writebuffer.WriteBuffer`):

    * ``staged`` — mutations absorbed into DRAM as new dirty entries.
    * ``coalesced`` — rewrites of an already-staged key folded into the
      existing dirty entry; each one is an NVM write that never happened.
    * ``writeback_hits`` — GETs served straight from a dirty entry.

    Flush / routing counters (owned by the tiered store):

    * ``flush_events`` — write-buffer drains through the batch path.
    * ``flushed`` — dirty entries written to NVM by those drains.
    * ``flush_retries`` — flush batches re-submitted after a shard
      worker process died mid-flush (the zone recovers, puts are
      upserts, so the whole batch is safely re-put).
    * ``write_through`` — ops routed straight through to the store.
    * ``unflushed_lost`` — dirty entries dropped by :meth:`crash` before
      any flush made them durable; the tier's precisely-bounded data
      loss (everything else is exactly as durable as the plain store).

    Classifier counters (owned by
    :class:`~repro.tier.classify.LongevityClassifier`):

    * ``predicted_short`` / ``predicted_long`` — per-op longevity calls
      in ``tier_mode="predictive"``.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_invalidations: int = 0
    staged: int = 0
    coalesced: int = 0
    writeback_hits: int = 0
    flush_events: int = 0
    flushed: int = 0
    flush_retries: int = 0
    write_through: int = 0
    unflushed_lost: int = 0
    predicted_short: int = 0
    predicted_long: int = 0

    @classmethod
    def merge(cls, parts: Iterable["TierStats"]) -> "TierStats":
        """Sum several components' counters into one tier-wide snapshot.

        The result is independent of the parts (later bumps don't show
        up); re-merge for a fresh view.  Field-generic on purpose: a
        counter added to the dataclass is merged automatically, so the
        tier can never silently under-report a new statistic.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one TierStats")
        merged = cls()
        for part in parts:
            for f in fields(cls):
                setattr(merged, f.name, getattr(merged, f.name) + getattr(part, f.name))
        return merged

    def as_dict(self) -> dict[str, int]:
        """Flat counter dictionary (for ``/stats`` endpoints and tests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups served from DRAM."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def absorbed(self) -> int:
        """NVM writes the tier absorbed: coalesced rewrites plus staged
        entries that never reached the device (still dirty or lost)."""
        return self.coalesced + self.staged - self.flushed

"""Simulated NVM substrate: device, wear statistics, latency, hybrid layout."""

from .device import SimulatedNVM, WriteReport
from .faults import FaultModel
from .hybrid import DRAMRegion, HybridMemory
from .latency import TECHNOLOGIES, LatencyModel, MemoryTechnology
from .shm import SharedZone, ZoneLayout
from .stats import MediaStats, SharedWearStats, WearStats, cdf_of_counts

__all__ = [
    "SimulatedNVM",
    "WriteReport",
    "FaultModel",
    "DRAMRegion",
    "HybridMemory",
    "TECHNOLOGIES",
    "LatencyModel",
    "MemoryTechnology",
    "WearStats",
    "MediaStats",
    "SharedWearStats",
    "SharedZone",
    "ZoneLayout",
    "cdf_of_counts",
]

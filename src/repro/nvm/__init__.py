"""Simulated NVM substrate: device, wear statistics, latency, hybrid layout."""

from .device import SimulatedNVM, WriteReport
from .hybrid import DRAMRegion, HybridMemory
from .latency import TECHNOLOGIES, LatencyModel, MemoryTechnology
from .shm import SharedZone, ZoneLayout
from .stats import SharedWearStats, WearStats, cdf_of_counts

__all__ = [
    "SimulatedNVM",
    "WriteReport",
    "DRAMRegion",
    "HybridMemory",
    "TECHNOLOGIES",
    "LatencyModel",
    "MemoryTechnology",
    "WearStats",
    "SharedWearStats",
    "SharedZone",
    "ZoneLayout",
    "cdf_of_counts",
]

"""Simulated NVM substrate: device, wear statistics, latency, hybrid layout."""

from .device import SimulatedNVM, WriteReport
from .hybrid import DRAMRegion, HybridMemory
from .latency import TECHNOLOGIES, LatencyModel, MemoryTechnology
from .stats import WearStats, cdf_of_counts

__all__ = [
    "SimulatedNVM",
    "WriteReport",
    "DRAMRegion",
    "HybridMemory",
    "TECHNOLOGIES",
    "LatencyModel",
    "MemoryTechnology",
    "WearStats",
    "cdf_of_counts",
]

"""Memory technology parameters and the access latency model.

``TECHNOLOGIES`` reproduces Table I of the paper (read/write latency and
write endurance of prevalent memory technologies).  ``LatencyModel``
implements the paper's timing methodology: the cost of a write is dominated
by the number of cache lines programmed, using the measured 3D-XPoint
line-access latency of 600 ns (paper §VI-A, refs [41], [42]).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryTechnology", "TECHNOLOGIES", "LatencyModel"]


@dataclass(frozen=True)
class MemoryTechnology:
    """One row of the paper's Table I.

    Latencies are in nanoseconds; ranges are stored as (lo, hi) tuples.
    ``write_endurance`` is the order-of-magnitude cycle count a cell
    survives, stored as (lo, hi) powers of ten.
    """

    name: str
    read_latency_ns: tuple[float, float]
    write_latency_ns: tuple[float, float]
    endurance_log10: tuple[float, float]

    @property
    def mean_read_ns(self) -> float:
        lo, hi = self.read_latency_ns
        return (lo + hi) / 2.0

    @property
    def mean_write_ns(self) -> float:
        lo, hi = self.write_latency_ns
        return (lo + hi) / 2.0

    @property
    def endurance_cycles(self) -> float:
        """Geometric midpoint of the endurance range, in write cycles."""
        lo, hi = self.endurance_log10
        return 10.0 ** ((lo + hi) / 2.0)


#: Table I — comparison of memory technologies [10], [11].
TECHNOLOGIES: dict[str, MemoryTechnology] = {
    "HDD": MemoryTechnology("HDD", (5e6, 5e6), (5e6, 5e6), (15, 15)),
    "DRAM": MemoryTechnology("DRAM", (50, 60), (50, 60), (16, 16)),
    "PCM": MemoryTechnology("PCM", (50, 70), (120, 150), (8, 9)),
    "ReRAM": MemoryTechnology("ReRAM", (10, 10), (50, 50), (11, 11)),
    "SLC Flash": MemoryTechnology("SLC Flash", (25e3, 25e3), (500e3, 500e3), (4, 5)),
    "STT-RAM": MemoryTechnology("STT-RAM", (10, 35), (50, 50), (15, 15)),
}


@dataclass(frozen=True)
class LatencyModel:
    """Models NVM access time from the number of cache lines touched.

    The paper calculates write latency "based on the number of cache lines
    that are written per item" and assumes a 3D-XPoint access latency of
    600 ns.  Reads are charged the technology's read latency per line.
    """

    line_write_ns: float = 600.0
    line_read_ns: float = 60.0

    @classmethod
    def for_technology(cls, name: str) -> "LatencyModel":
        """Build a model from a Table I row (mean latencies)."""
        tech = TECHNOLOGIES[name]
        return cls(line_write_ns=tech.mean_write_ns, line_read_ns=tech.mean_read_ns)

    def write_ns(self, lines_touched: int) -> float:
        """Modeled latency of programming ``lines_touched`` cache lines."""
        return self.line_write_ns * lines_touched

    def read_ns(self, lines_touched: int) -> float:
        """Modeled latency of reading ``lines_touched`` cache lines."""
        return self.line_read_ns * lines_touched

"""Byte-addressable simulated NVM (PCM) with bit-flip accounting.

Real PCM DIMMs are unavailable (as they were for the paper's authors, who
emulated NVM on DRAM, §VI-A); ``SimulatedNVM`` models the device the paper
measures:

* a data zone of ``num_buckets`` fixed-size buckets,
* data-comparison writes by default — only differing cells are programmed,
  the core assumption behind every RBW technique the paper compares,
* pluggable write schemes (Conventional/DCW/FNW/MinShift/Captopril) that
  control which cells get programmed and what auxiliary metadata costs,
* per-address and optional per-bit wear counters (Figures 12 and 13),
* word/cache-line touch accounting (Figures 7, 8, 9) and a latency model.

Buckets are cache-line aligned: each bucket occupies
``ceil(bucket_bytes / cacheline_bytes)`` lines and starts on a line
boundary, so the line count of a write is derived from which bytes of the
bucket were programmed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .._bitops import POPCOUNT_TABLE, hamming_to_rows, popcount_rows
from ..errors import CapacityError
from .latency import LatencyModel
from .stats import WearStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..writeschemes.base import WriteScheme
    from .faults import FaultModel

__all__ = ["SimulatedNVM", "WriteReport"]


@dataclass(frozen=True)
class WriteReport:
    """Accounting record for a single bucket write."""

    address: int
    bit_updates: int
    aux_bit_updates: int
    words_touched: int
    lines_touched: int
    latency_ns: float

    @property
    def total_bit_updates(self) -> int:
        """Data plus auxiliary cells programmed by this write."""
        return self.bit_updates + self.aux_bit_updates


class SimulatedNVM:
    """A simulated PCM data zone of fixed-size, cache-line-aligned buckets.

    Parameters
    ----------
    num_buckets:
        Number of equally sized value slots in the data zone.
    bucket_bytes:
        Size of each slot.  Must be a multiple of ``word_bytes``.
    cacheline_bytes:
        Cache line size used for line-touch accounting (default 64).
    word_bytes:
        Word size used for word-touch accounting (default 4, the 32-bit
        words of the paper's synthetic experiments).
    track_bit_wear:
        Allocate per-bit wear counters (needed for Fig. 13; costs
        ``num_buckets * bucket_bytes * 8`` uint32 cells).
    latency:
        Latency model; defaults to the 3D-XPoint 600 ns line write.
    data:
        Optional caller-owned ``(num_buckets, bucket_bytes)`` uint8
        buffer to use as the data zone instead of allocating one —
        typically a :class:`~repro.nvm.shm.SharedZone` view, so a shard
        worker process and its parent address the same bytes.  The
        buffer is used as-is (never zeroed): fresh shared segments are
        zero-filled, and a post-crash re-attach must preserve contents.
    stats:
        Optional externally owned :class:`WearStats` (e.g. a
        :class:`~repro.nvm.stats.SharedWearStats`) to account into
        instead of allocating a private one.
    faults:
        Optional :class:`~repro.nvm.faults.FaultModel`.  When present,
        every write is filtered through it just before the bytes land:
        stuck cells keep their current value and weakened cells are
        charged endurance budget.  Wear accounting still reflects the
        *attempted* program (real cells wear on failed programs too),
        so a fault-free model leaves accounting byte-identical.
    """

    def __init__(
        self,
        num_buckets: int,
        bucket_bytes: int,
        *,
        cacheline_bytes: int = 64,
        word_bytes: int = 4,
        track_bit_wear: bool = False,
        latency: LatencyModel | None = None,
        data: np.ndarray | None = None,
        stats: WearStats | None = None,
        faults: "FaultModel | None" = None,
    ) -> None:
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        if bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        if bucket_bytes % word_bytes != 0:
            raise ValueError(
                f"bucket_bytes ({bucket_bytes}) must be a multiple of "
                f"word_bytes ({word_bytes})"
            )
        self.num_buckets = num_buckets
        self.bucket_bytes = bucket_bytes
        self.cacheline_bytes = cacheline_bytes
        self.word_bytes = word_bytes
        self.latency = latency if latency is not None else LatencyModel()
        if data is None:
            data = np.zeros((num_buckets, bucket_bytes), dtype=np.uint8)
        elif data.shape != (num_buckets, bucket_bytes) or data.dtype != np.uint8:
            raise ValueError(
                f"external data buffer must be uint8 of shape "
                f"({num_buckets}, {bucket_bytes}), got {data.dtype} "
                f"{data.shape}"
            )
        self._data = data
        self._aux: dict[int, Any] = {}
        if stats is None:
            stats = WearStats(num_buckets, bucket_bytes, track_bit_wear)
        self.stats = stats
        self.faults = faults

    # ------------------------------------------------------------------ #
    # geometry                                                            #
    # ------------------------------------------------------------------ #

    @property
    def bucket_bits(self) -> int:
        """Number of data bits per bucket."""
        return self.bucket_bytes * 8

    @property
    def lines_per_bucket(self) -> int:
        """Cache lines spanned by one (line-aligned) bucket."""
        return -(-self.bucket_bytes // self.cacheline_bytes)

    @property
    def words_per_bucket(self) -> int:
        """Words per bucket."""
        return self.bucket_bytes // self.word_bytes

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.num_buckets:
            raise CapacityError(
                f"address {address} out of range [0, {self.num_buckets})"
            )

    def _validate_payload(self, data: np.ndarray) -> np.ndarray:
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.shape != (self.bucket_bytes,):
            raise ValueError(
                f"payload shape {data.shape} does not match bucket size "
                f"({self.bucket_bytes},)"
            )
        return data

    # ------------------------------------------------------------------ #
    # accesses                                                            #
    # ------------------------------------------------------------------ #

    def load(self, address: int, data: np.ndarray) -> None:
        """Set bucket contents without any accounting (warm-up/bootstrap)."""
        self._check_address(address)
        self._data[address] = self._validate_payload(data)
        self._aux.pop(address, None)

    def load_many(self, start: int, rows: np.ndarray) -> None:
        """Bulk :meth:`load` of consecutive buckets starting at ``start``."""
        rows = np.ascontiguousarray(rows, dtype=np.uint8)
        if rows.ndim != 2 or rows.shape[1] != self.bucket_bytes:
            raise ValueError(
                f"rows shape {rows.shape} does not match (n, {self.bucket_bytes})"
            )
        end = start + rows.shape[0]
        if start < 0 or end > self.num_buckets:
            raise CapacityError(
                f"bulk load [{start}, {end}) exceeds capacity {self.num_buckets}"
            )
        self._data[start:end] = rows
        for address in range(start, end):
            self._aux.pop(address, None)

    def read(self, address: int) -> np.ndarray:
        """Read a bucket's *physical* contents (a defensive copy)."""
        self._check_address(address)
        latency_ns = self.latency.read_ns(self.lines_per_bucket)
        self.stats.record_read(latency_ns)
        return self._data[address].copy()

    def read_logical(self, address: int, scheme: "WriteScheme | None" = None) -> np.ndarray:
        """Read a bucket and undo any scheme transformation (FNW inversion,
        MinShift rotation, ...) using the metadata recorded at write time.

        For plain data-comparison writes the physical and logical contents
        are identical and ``scheme`` may be omitted.
        """
        physical = self.read(address)
        entry = self._aux.get(address)
        if entry is None:
            return physical
        state_key, aux_state = entry
        if scheme is None or scheme.state_key != state_key:
            raise ValueError(
                f"bucket {address} was written with scheme {state_key!r}; "
                "pass that scheme to decode it"
            )
        return scheme.decode(physical, aux_state)

    def peek(self, address: int) -> np.ndarray:
        """Read bucket contents without latency/traffic accounting."""
        self._check_address(address)
        return self._data[address].copy()

    def peek_many(self, addresses: np.ndarray) -> np.ndarray:
        """Gather many buckets' contents without accounting (batch paths)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and not (
            0 <= int(addresses.min()) and int(addresses.max()) < self.num_buckets
        ):
            raise CapacityError(
                f"addresses out of range [0, {self.num_buckets})"
            )
        return self._data[addresses].copy()

    def gather_into(self, addresses: np.ndarray, out: np.ndarray) -> None:
        """Unaccounted multi-row gather into a caller-owned DRAM buffer.

        The address pool's content-cache fill path: on ``rebuild`` /
        ``release`` the pool reads each free address's current bytes into
        its contiguous cache rows, so later Hamming probes never touch
        the device.  Writes row ``i`` of ``out`` in place (no per-call
        allocation) — ``out`` must be ``(len(addresses), bucket_bytes)``
        ``uint8``.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and not (
            0 <= int(addresses.min()) and int(addresses.max()) < self.num_buckets
        ):
            raise CapacityError(
                f"addresses out of range [0, {self.num_buckets})"
            )
        if out.shape != (addresses.size, self.bucket_bytes) or out.dtype != np.uint8:
            raise ValueError(
                f"out buffer {out.shape}/{out.dtype} does not match "
                f"({addresses.size}, {self.bucket_bytes}) uint8"
            )
        np.take(self._data, addresses, axis=0, out=out)

    def hamming_many(self, addresses: np.ndarray, payload: np.ndarray) -> np.ndarray:
        """Hamming distance of ``payload`` to each addressed bucket.

        Unaccounted: this is the pool's candidate scoring (§IV), which a
        real deployment serves from DRAM-side content metadata rather
        than NVM reads.  (The store's hot path now scores the pool's
        content cache directly; this gather-through-the-device form
        remains for ad-hoc probing and as the cache's oracle in tests.)
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        payload = self._validate_payload(payload)
        return hamming_to_rows(self._data[addresses], payload)

    def write(
        self,
        address: int,
        new: np.ndarray,
        scheme: "WriteScheme | None" = None,
    ) -> WriteReport:
        """Write ``new`` into ``address`` and account the damage.

        With ``scheme=None`` the device performs its native data-comparison
        write (read-modify-write that programs only differing cells) —
        exactly what PNW's Algorithm 2 does in lines 5–6.  With a scheme,
        the scheme decides the physical bit pattern, the programmed-cell
        mask, and the auxiliary metadata cost.
        """
        self._check_address(address)
        new = self._validate_payload(new)
        old = self._data[address]

        if scheme is None:
            stored = new
            update_mask = np.bitwise_xor(old, new)
            aux_bit_updates = 0
            aux_state = None
        else:
            # Only hand back metadata this same scheme wrote; another
            # scheme's state (e.g. a MinShift shift count) is meaningless
            # here and starts fresh.
            entry = self._aux.get(address)
            old_aux = (
                entry[1]
                if entry is not None and entry[0] == scheme.state_key
                else None
            )
            outcome = scheme.prepare(old, new, old_aux)
            stored = self._validate_payload(outcome.stored)
            update_mask = np.ascontiguousarray(outcome.update_mask, dtype=np.uint8)
            if update_mask.shape != (self.bucket_bytes,):
                raise ValueError(
                    f"scheme update mask shape {update_mask.shape} does not "
                    f"match bucket size ({self.bucket_bytes},)"
                )
            aux_bit_updates = outcome.aux_bit_updates
            aux_state = outcome.aux_state

        report = self._apply(address, stored, update_mask, aux_bit_updates)
        if aux_state is not None and scheme is not None:
            self._aux[address] = (scheme.state_key, aux_state)
        else:
            self._aux.pop(address, None)
        return report

    def write_many(
        self,
        addresses: np.ndarray,
        rows: np.ndarray,
        scheme: "WriteScheme | None" = None,
    ) -> list[WriteReport]:
        """Vectorized multi-row :meth:`write` — row ``i`` to ``addresses[i]``.

        The native data-comparison path computes every row's update mask,
        programmed-cell count, and word/line footprint in single array
        operations, then accounts them in row order, leaving device state
        and wear counters byte-identical to ``n`` sequential writes.
        Scheme writes (per-row auxiliary state) and batches that hit the
        same address twice (later rows must see earlier rows' data) fall
        back to the per-row path.
        """
        addresses = np.asarray(addresses, dtype=np.int64).ravel()
        rows = np.ascontiguousarray(np.atleast_2d(rows), dtype=np.uint8)
        n = addresses.size
        if rows.shape != (n, self.bucket_bytes):
            raise ValueError(
                f"rows shape {rows.shape} does not match ({n}, {self.bucket_bytes})"
            )
        if n == 0:
            return []
        if not (0 <= int(addresses.min()) and int(addresses.max()) < self.num_buckets):
            raise CapacityError(
                f"addresses out of range [0, {self.num_buckets})"
            )
        if scheme is not None or np.unique(addresses).size != n:
            return [
                self.write(int(address), row, scheme)
                for address, row in zip(addresses, rows)
            ]

        old = self._data[addresses]
        masks = np.bitwise_xor(old, rows)
        bit_updates = popcount_rows(masks)
        dirty_bytes = masks != 0
        words_touched = (
            dirty_bytes.reshape(n, self.words_per_bucket, self.word_bytes)
            .any(axis=2)
            .sum(axis=1, dtype=np.int64)
        )
        pad = self.lines_per_bucket * self.cacheline_bytes - self.bucket_bytes
        if pad:
            padded = np.zeros((n, self.bucket_bytes + pad), dtype=bool)
            padded[:, : self.bucket_bytes] = dirty_bytes
            line_view = padded.reshape(n, self.lines_per_bucket, self.cacheline_bytes)
        else:
            line_view = dirty_bytes.reshape(
                n, self.lines_per_bucket, self.cacheline_bytes
            )
        lines_touched = line_view.any(axis=2).sum(axis=1, dtype=np.int64)
        latencies_ns = [self.latency.write_ns(int(lines)) for lines in lines_touched]
        updated_bits = (
            np.unpackbits(masks, axis=1) if self.stats.bit_wear is not None else None
        )
        self.stats.record_write_many(
            addresses, bit_updates, words_touched, lines_touched,
            latencies_ns, updated_bits,
        )
        if self.faults is not None:
            rows = self.faults.filter_many(addresses, old, rows)
        self._data[addresses] = rows
        for address in addresses:
            self._aux.pop(int(address), None)
        return [
            WriteReport(
                address=int(addresses[i]),
                bit_updates=int(bit_updates[i]),
                aux_bit_updates=0,
                words_touched=int(words_touched[i]),
                lines_touched=int(lines_touched[i]),
                latency_ns=latencies_ns[i],
            )
            for i in range(n)
        ]

    def _apply(
        self,
        address: int,
        stored: np.ndarray,
        update_mask: np.ndarray,
        aux_bit_updates: int,
    ) -> WriteReport:
        """Commit a prepared write and accumulate statistics."""
        bit_updates = int(POPCOUNT_TABLE[update_mask].sum())
        dirty_bytes = update_mask != 0
        words_touched = int(
            dirty_bytes.reshape(self.words_per_bucket, self.word_bytes).any(axis=1).sum()
        )
        # Bucket padding: reshape via a padded view when the bucket does not
        # fill a whole number of lines.
        pad = self.lines_per_bucket * self.cacheline_bytes - self.bucket_bytes
        if pad:
            padded = np.zeros(self.bucket_bytes + pad, dtype=bool)
            padded[: self.bucket_bytes] = dirty_bytes
            line_view = padded.reshape(self.lines_per_bucket, self.cacheline_bytes)
        else:
            line_view = dirty_bytes.reshape(self.lines_per_bucket, self.cacheline_bytes)
        lines_touched = int(line_view.any(axis=1).sum())

        latency_ns = self.latency.write_ns(lines_touched)
        updated_bits = None
        if self.stats.bit_wear is not None:
            updated_bits = np.unpackbits(update_mask)
        self.stats.record_write(
            address,
            bit_updates,
            aux_bit_updates,
            words_touched,
            lines_touched,
            latency_ns,
            updated_bits,
        )
        if self.faults is not None:
            stored = self.faults.filter(address, self._data[address], stored)
        self._data[address] = stored
        return WriteReport(
            address=address,
            bit_updates=bit_updates,
            aux_bit_updates=aux_bit_updates,
            words_touched=words_touched,
            lines_touched=lines_touched,
            latency_ns=latency_ns,
        )

    # ------------------------------------------------------------------ #
    # media health                                                         #
    # ------------------------------------------------------------------ #

    def media_probe(self, address: int) -> int:
        """Stuck-cell count of one row (0 on a fault-free device).

        The scrubber's modeled margin read: a real controller senses
        cell resistance margins during patrol; here we count the fault
        model's stuck bits.  Unaccounted — it rides on the patrol read
        the scrubber already charged."""
        self._check_address(address)
        if self.faults is None:
            return 0
        return self.faults.probe(address)

    def age_media(self, addresses: np.ndarray | list[int] | None = None) -> int:
        """Freeze pending weakened cells (see :meth:`FaultModel.age`);
        no-op returning 0 without a fault model.  Test/bench hook for
        manufacturing latent faults."""
        if self.faults is None:
            return 0
        return self.faults.age(addresses)

    # ------------------------------------------------------------------ #
    # bulk views for model training                                       #
    # ------------------------------------------------------------------ #

    @property
    def contents(self) -> np.ndarray:
        """Read-only view of the whole data zone (for model training).

        Training reads the zone without going through :meth:`read` because
        the paper trains on DRAM snapshots, not on accounted NVM reads.
        """
        view = self._data.view()
        view.flags.writeable = False
        return view

    def snapshot(self) -> np.ndarray:
        """Deep copy of the data zone."""
        return self._data.copy()

"""Hybrid DRAM–NVM memory layout (paper §II-A, Fig. 2).

The paper assumes DRAM and PCM side by side on the memory bus under one
physical address space.  ``HybridMemory`` models that split: volatile
structures (the ML model, the dynamic address pool, optionally the hash
index) live in the DRAM region, while the data zone (and optionally the
index) live on the NVM region.  DRAM traffic is counted — so experiments
can report how much wear the design *avoided* by placing hot metadata in
DRAM — but DRAM has effectively unlimited endurance (Table I) so no wear
CDF is kept for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import SimulatedNVM
from .latency import TECHNOLOGIES, LatencyModel

__all__ = ["DRAMRegion", "HybridMemory"]


@dataclass
class DRAMRegion:
    """Volatile region: byte-accounted but wear-free.

    Tracks aggregate read/write byte counts and modeled latency so that the
    DRAM-vs-NVM placement trade-off of §V-A3 can be quantified.
    """

    latency: LatencyModel = field(
        default_factory=lambda: LatencyModel.for_technology("DRAM")
    )
    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0
    latency_ns: float = 0.0

    def write(self, nbytes: int, cacheline_bytes: int = 64) -> None:
        """Account a DRAM write of ``nbytes`` bytes."""
        lines = -(-nbytes // cacheline_bytes)
        self.bytes_written += nbytes
        self.write_ops += 1
        self.latency_ns += self.latency.write_ns(lines)

    def read(self, nbytes: int, cacheline_bytes: int = 64) -> None:
        """Account a DRAM read of ``nbytes`` bytes."""
        lines = -(-nbytes // cacheline_bytes)
        self.bytes_read += nbytes
        self.read_ops += 1
        self.latency_ns += self.latency.read_ns(lines)

    def reset(self) -> None:
        """Zero all counters."""
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_ops = 0
        self.read_ops = 0
        self.latency_ns = 0.0


class HybridMemory:
    """A DRAM region plus an NVM data zone under one roof.

    This is a thin composition: components grab ``hybrid.nvm`` or
    ``hybrid.dram`` according to their placement, mirroring Figure 2's two
    architectures (index on DRAM for small keys, index on PCM for large
    keys).
    """

    def __init__(
        self,
        num_buckets: int,
        bucket_bytes: int,
        *,
        cacheline_bytes: int = 64,
        word_bytes: int = 4,
        track_bit_wear: bool = False,
        nvm_latency: LatencyModel | None = None,
        nvm_data=None,
        nvm_stats=None,
        nvm_faults=None,
    ) -> None:
        self.nvm = SimulatedNVM(
            num_buckets,
            bucket_bytes,
            cacheline_bytes=cacheline_bytes,
            word_bytes=word_bytes,
            track_bit_wear=track_bit_wear,
            latency=nvm_latency,
            data=nvm_data,
            stats=nvm_stats,
            faults=nvm_faults,
        )
        self.dram = DRAMRegion()

    @property
    def endurance_ratio(self) -> float:
        """DRAM-to-PCM endurance gap from Table I (how much wear the DRAM
        placement of metadata avoids, per write)."""
        return (
            TECHNOLOGIES["DRAM"].endurance_cycles
            / TECHNOLOGIES["PCM"].endurance_cycles
        )

    def reset_stats(self) -> None:
        """Zero both regions' counters (between warm-up and measurement)."""
        self.nvm.stats.reset()
        self.dram.reset()

"""Seeded wear-out fault model for the simulated NVM device.

The paper's premise is that NVM cells endure a bounded number of bit
flips; everything upstream (K-Means steering, DRAM tiering) exists to
*delay* that exhaustion.  This module makes exhaustion actually happen:
a seeded fraction of the zone's data bits are "weakened" cells, each
with a drawn endurance budget of remaining successful flips.  A flip
attempted past the budget fails silently at the device level — the cell
freezes **stuck-at its current value** — which is how real PCM/ReRAM
wear-out presents (the cell keeps reporting whatever it last held, and
only a write that tries to change it reveals the failure).

Two consequences shape the layers above:

* Data at rest is never corrupted by this model — sticking preserves
  the cell's current value, so every row that verified at write time
  stays readable forever.  That is what makes the store's headline
  claim ("every acknowledged write remains readable") achievable with
  write-verify alone.
* A stuck cell is only *observable* through a write: read-back compare
  after a write (the engine's verify step) or a margin probe of the
  stuck mask (the scrubber's :meth:`FaultModel.probe`).

Determinism: the weakened-cell map and budgets are a pure function of
``(num_buckets, bucket_bytes, fault_rate, fault_budget, seed)``, so a
respawned process worker reconstructs the identical media.  The dense
stuck mask can live in a :class:`~repro.nvm.shm.SharedZone` region
(``media_stuck``), making already-stuck cells — the part that is *not*
reconstructible, because it depends on write history — survive worker
crashes exactly like the data they froze.  Remaining budgets are
deliberately not persisted: a write-time stick always retires its row
(see :mod:`repro.core.media`), so a respawned worker re-drawing full
budgets can never resurrect a retired row or corrupt an acknowledged
one; it only makes the surviving weakened cells young again — a
documented modeling compromise, not a correctness hole.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FaultModel"]


class FaultModel:
    """Stuck-at-current wear-out faults over a ``(rows, cols)`` byte zone.

    Parameters
    ----------
    num_buckets, bucket_bytes:
        Geometry of the data zone the model overlays.
    fault_rate:
        Fraction of all data bits that are weakened cells.
    fault_budget:
        Upper bound of the per-cell budget draw; each weakened cell gets
        ``rng.integers(0, fault_budget + 1)`` remaining successful
        flips.  ``0`` ⇒ every weakened cell is born depleted.
    seed:
        Required; drives both cell selection and budget draws.
    stuck:
        Optional externally-owned ``uint8 (num_buckets, bucket_bytes)``
        mask of already-stuck bits (e.g. a shared-memory view).  Bits
        set here on entry are honoured and excluded from the pending
        set.  When ``None`` a private zeroed mask is used.
    """

    def __init__(
        self,
        num_buckets: int,
        bucket_bytes: int,
        *,
        fault_rate: float,
        fault_budget: int = 0,
        seed: int,
        stuck: np.ndarray | None = None,
    ) -> None:
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError(f"fault_rate must be in [0, 1), got {fault_rate}")
        if fault_budget < 0:
            raise ValueError(f"fault_budget must be >= 0, got {fault_budget}")
        if seed is None:
            raise ValueError("FaultModel requires a seed")
        self.num_buckets = int(num_buckets)
        self.bucket_bytes = int(bucket_bytes)
        if stuck is None:
            stuck = np.zeros((num_buckets, bucket_bytes), dtype=np.uint8)
        if stuck.shape != (num_buckets, bucket_bytes) or stuck.dtype != np.uint8:
            raise ValueError(
                f"stuck mask must be uint8 ({num_buckets}, {bucket_bytes}), "
                f"got {stuck.dtype} {stuck.shape}"
            )
        self.stuck = stuck
        self.fault_rate = float(fault_rate)
        self.fault_budget = int(fault_budget)
        self.seed = int(seed)

        bits_per_row = bucket_bytes * 8
        total_bits = num_buckets * bits_per_row
        n_faulty = int(round(fault_rate * total_bits))
        rng = np.random.default_rng(seed)
        flat = rng.choice(total_bits, size=n_faulty, replace=False)
        budgets = (
            rng.integers(0, fault_budget + 1, size=n_faulty, dtype=np.int64)
            if fault_budget > 0
            else np.zeros(n_faulty, dtype=np.int64)
        )
        rows = (flat // bits_per_row).astype(np.int64)
        rest = flat % bits_per_row
        cols = (rest // 8).astype(np.int64)
        masks = (np.uint8(1) << (rest % 8).astype(np.uint8)).astype(np.uint8)
        # Cells already frozen by a previous life of this zone (persisted
        # stuck mask) are not pending any more.
        live = (self.stuck[rows, cols] & masks) == 0
        self._rows = rows[live]
        self._cols = cols[live]
        self._masks = masks[live]
        self._budget = budgets[live]
        self._live = np.ones(len(self._rows), dtype=bool)
        by_row: dict[int, list[int]] = {}
        for i, r in enumerate(self._rows):
            by_row.setdefault(int(r), []).append(i)
        self._by_row = {r: np.asarray(ix, dtype=np.int64) for r, ix in by_row.items()}
        self.n_faulty = n_faulty
        self.stuck_events = 0  # cells frozen by a write past their budget

    # ------------------------------------------------------------------
    # Write filtering (the device calls these just before storing bytes)
    # ------------------------------------------------------------------

    def filter(self, address: int, old: np.ndarray, new: np.ndarray) -> np.ndarray:
        """Return the bytes that physically land when ``new`` is written
        over ``old`` at ``address`` — stuck bits keep their old value,
        and pending cells driven past their budget freeze now."""
        s = self.stuck[address]
        actual = (new & ~s) | (old & s)
        idx = self._by_row.get(int(address))
        if idx is not None:
            self._apply_pending(int(address), old, actual)
        return actual

    def filter_many(
        self, addresses: np.ndarray, old: np.ndarray, new: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`filter` for a batch of distinct addresses."""
        s = self.stuck[addresses]
        actual = (new & ~s) | (old & s)
        if self._by_row:
            for i, address in enumerate(addresses):
                if int(address) in self._by_row:
                    self._apply_pending(int(address), old[i], actual[i])
        return actual

    def _apply_pending(self, address: int, old: np.ndarray, actual: np.ndarray) -> None:
        """Charge budget for flips through weakened cells of one row;
        freeze cells whose budget is spent (mutates ``actual`` and the
        stuck mask in place)."""
        idx = self._by_row[address]
        exhausted = 0
        for i in idx:
            if not self._live[i]:
                exhausted += 1
                continue
            col = self._cols[i]
            mask = self._masks[i]
            if (old[col] ^ actual[col]) & mask:
                if self._budget[i] <= 0:
                    # Failed program: the cell keeps its current value.
                    actual[col] = (actual[col] & ~mask) | (old[col] & mask)
                    self.stuck[address, col] |= mask
                    self._live[i] = False
                    self.stuck_events += 1
                    exhausted += 1
                else:
                    self._budget[i] -= 1
        if exhausted == len(idx):
            del self._by_row[address]

    # ------------------------------------------------------------------
    # Observation / ageing
    # ------------------------------------------------------------------

    def probe(self, address: int) -> int:
        """Stuck-bit count of one row — the scrubber's modeled margin
        read (a real controller reads cell resistance margins; we read
        the mask)."""
        return int(np.unpackbits(self.stuck[address]).sum())

    def age(self, addresses: np.ndarray | list[int] | None = None) -> int:
        """Freeze every still-pending weakened cell (optionally only in
        ``addresses``) at its current value, modeling passage of write
        traffic / retention ageing.  Data is preserved — this creates
        *latent* faults for the scrubber to find.  Returns the number of
        cells frozen."""
        wanted = None if addresses is None else {int(a) for a in addresses}
        frozen = 0
        for address in list(self._by_row):
            if wanted is not None and address not in wanted:
                continue
            for i in self._by_row[address]:
                if self._live[i]:
                    self.stuck[address, self._cols[i]] |= self._masks[i]
                    self._live[i] = False
                    frozen += 1
            del self._by_row[address]
        return frozen

    @property
    def pending_cells(self) -> int:
        """Weakened cells that have not yet frozen."""
        return int(self._live.sum())

    @property
    def stuck_cells(self) -> int:
        """Total stuck bits in the zone (including persisted ones)."""
        return int(np.unpackbits(self.stuck.reshape(-1)).sum())

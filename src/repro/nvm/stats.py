"""Wear and traffic accounting for the simulated NVM device.

``WearStats`` accumulates, per write operation:

* the per-address write count (Fig. 12's CDF),
* optionally the per-bit update count (Fig. 13's CDF),
* totals for bit updates, auxiliary-bit updates, words and cache lines
  touched, and modeled latency.

The CDF helpers return the empirical distribution in the exact form the
paper plots: P(X <= x) over the observed counts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Sequence

import numpy as np

__all__ = ["WearStats", "SharedWearStats", "MediaStats", "cdf_of_counts"]


def cdf_of_counts(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a non-negative integer count array.

    Returns ``(values, cumulative_probability)`` where
    ``cumulative_probability[i]`` is P(count <= values[i]).  Values run from
    0 to the maximum observed count so the CDF starts at the fraction of
    untouched elements, matching the paper's Figures 12 and 13.
    """
    counts = np.asarray(counts).ravel()
    if counts.size == 0:
        return np.array([0]), np.array([1.0])
    max_count = int(counts.max())
    values = np.arange(max_count + 1)
    hist = np.bincount(counts.astype(np.int64), minlength=max_count + 1)
    cum = np.cumsum(hist) / counts.size
    return values, cum


@dataclass
class MediaStats:
    """Counters for the media fault-tolerance layer, one per store.

    Mergeable across shards like :class:`WearStats` /
    :class:`~repro.tier.stats.TierStats` (field-generic sum, so new
    counters can never be silently under-reported), and a plain picklable
    dataclass so a process worker can snapshot it over the RPC pipe.

    * ``verify_failures`` — read-back compares that caught stuck bits
      (initial batch verify plus failed relocation candidates).
    * ``relocations`` — ops or live rows moved to a fresh address after
      their first target failed verify (write path + scrub path).
    * ``rows_retired`` — rows pulled out of circulation into the
      :class:`~repro.core.media.BadRowDirectory`.
    * ``writes_shed`` — put/update ops rejected with
      :class:`~repro.errors.DegradedModeError` past the watermark.
    * ``scrub_passes`` / ``rows_scrubbed`` — patrol progress.
    * ``latent_faults_found`` — occupied rows the scrubber found sitting
      on stuck cells and proactively relocated.
    * ``checksum_mismatches`` — patrol reads whose bytes contradicted
      the stored row checksum (acknowledged-data corruption; raises
      :class:`~repro.errors.MediaError`).
    """

    verify_failures: int = 0
    relocations: int = 0
    rows_retired: int = 0
    writes_shed: int = 0
    scrub_passes: int = 0
    rows_scrubbed: int = 0
    latent_faults_found: int = 0
    checksum_mismatches: int = 0

    @classmethod
    def merge(cls, parts: Iterable["MediaStats"]) -> "MediaStats":
        """Sum per-shard snapshots into one store-wide view."""
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one MediaStats")
        merged = cls()
        for part in parts:
            for f in fields(cls):
                setattr(merged, f.name, getattr(merged, f.name) + getattr(part, f.name))
        return merged

    def as_dict(self) -> dict[str, int]:
        """Flat counter dictionary (for ``/stats`` endpoints and tests)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class WearStats:
    """Mutable accounting state owned by a :class:`~repro.nvm.SimulatedNVM`.

    ``bit_wear`` is allocated lazily only when bit-level tracking is
    enabled, because it costs ``num_buckets * bucket_bits`` counters.

    The scalar totals below are declared as class-level name lists so a
    subclass (:class:`SharedWearStats`) can back the exact same counter
    names with shared-memory slots via data descriptors; the base class
    keeps plain instance ints/floats on the hot path.
    """

    #: Scalar counters, in shared-slot order (int64 slots 0..5).
    INT_TOTALS = (
        "total_writes",
        "total_reads",
        "total_bit_updates",
        "total_aux_bit_updates",
        "total_words_touched",
        "total_lines_touched",
    )
    #: Scalar latency accumulators, in shared-slot order (float64 slots 0..1).
    FLOAT_TOTALS = ("total_write_latency_ns", "total_read_latency_ns")

    def __init__(self, num_buckets: int, bucket_bytes: int,
                 track_bit_wear: bool = False) -> None:
        self.num_buckets = num_buckets
        self.bucket_bytes = bucket_bytes
        self.track_bit_wear = track_bit_wear
        self.writes_per_address = np.zeros(num_buckets, dtype=np.int64)
        self.bit_wear: np.ndarray | None = None
        if track_bit_wear:
            self.bit_wear = np.zeros(
                (num_buckets, bucket_bytes * 8), dtype=np.uint32
            )
        for name in self.INT_TOTALS:
            setattr(self, name, 0)
        for name in self.FLOAT_TOTALS:
            setattr(self, name, 0.0)

    # ------------------------------------------------------------------ #
    # accumulation (called by the device)                                 #
    # ------------------------------------------------------------------ #

    def record_write(
        self,
        address: int,
        bit_updates: int,
        aux_bit_updates: int,
        words_touched: int,
        lines_touched: int,
        latency_ns: float,
        updated_bits: np.ndarray | None = None,
    ) -> None:
        """Account one write operation against ``address``.

        ``updated_bits`` is the unpacked 0/1 vector of programmed cells and
        is only required when bit-level wear tracking is enabled.
        """
        self.total_writes += 1
        self.writes_per_address[address] += 1
        self.total_bit_updates += bit_updates
        self.total_aux_bit_updates += aux_bit_updates
        self.total_words_touched += words_touched
        self.total_lines_touched += lines_touched
        self.total_write_latency_ns += latency_ns
        if self.bit_wear is not None:
            if updated_bits is None:
                raise ValueError(
                    "bit-level wear tracking is enabled but no bit mask was given"
                )
            self.bit_wear[address] += updated_bits.astype(np.uint32)

    def record_write_many(
        self,
        addresses: np.ndarray,
        bit_updates: np.ndarray,
        words_touched: np.ndarray,
        lines_touched: np.ndarray,
        latencies_ns: list[float],
        updated_bits: np.ndarray | None = None,
        aux_bit_updates: np.ndarray | None = None,
    ) -> None:
        """Account one multi-row write, row ``i`` against ``addresses[i]``.

        Produces exactly the state :meth:`record_write` would after the
        same rows one at a time: integer counters are order-free, and the
        latency total is accumulated in row order so even the float sum is
        bit-identical to the sequential path.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        self.total_writes += int(addresses.size)
        np.add.at(self.writes_per_address, addresses, 1)
        self.total_bit_updates += int(np.sum(bit_updates))
        if aux_bit_updates is not None:
            self.total_aux_bit_updates += int(np.sum(aux_bit_updates))
        self.total_words_touched += int(np.sum(words_touched))
        self.total_lines_touched += int(np.sum(lines_touched))
        for latency_ns in latencies_ns:
            self.total_write_latency_ns += latency_ns
        if self.bit_wear is not None:
            if updated_bits is None:
                raise ValueError(
                    "bit-level wear tracking is enabled but no bit mask was given"
                )
            np.add.at(self.bit_wear, addresses, updated_bits.astype(np.uint32))

    def record_read(self, latency_ns: float) -> None:
        """Account one read operation."""
        self.total_reads += 1
        self.total_read_latency_ns += latency_ns

    # ------------------------------------------------------------------ #
    # aggregation                                                         #
    # ------------------------------------------------------------------ #

    @classmethod
    def merge(cls, parts: Sequence["WearStats"]) -> "WearStats":
        """Aggregate several devices' accounting into one merged view.

        The sharded store keeps one :class:`WearStats` per shard zone;
        this produces the whole-store picture: totals are summed and the
        per-address (and, when every part tracks it, per-bit) counters
        are concatenated in part order, so address ``i`` of part ``j``
        appears at offset ``sum(len(parts[:j])) + i`` — the sharded
        store's global address space.  CDF helpers on the merged object
        therefore give the cross-shard Figures 12/13 curves directly.

        The merged object is an independent snapshot: later writes to the
        parts do not update it.  Bit-level wear is merged only when every
        part tracks it (a partial merge would under-report wear);
        ``bucket_bytes`` must agree so per-bit columns line up.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one WearStats")
        bucket_bytes = parts[0].bucket_bytes
        if any(part.bucket_bytes != bucket_bytes for part in parts):
            raise ValueError(
                "cannot merge WearStats with different bucket sizes: "
                f"{sorted({part.bucket_bytes for part in parts})}"
            )
        track_bits = all(part.bit_wear is not None for part in parts)
        # Build untracked, then attach the concatenated counters: letting
        # __post_init__ allocate a zeroed bit_wear matrix only to replace
        # it would double the peak memory of every merge.
        merged = cls(
            num_buckets=sum(part.num_buckets for part in parts),
            bucket_bytes=bucket_bytes,
            track_bit_wear=False,
        )
        merged.writes_per_address = np.concatenate(
            [part.writes_per_address for part in parts]
        )
        if track_bits:
            merged.track_bit_wear = True
            merged.bit_wear = np.vstack([part.bit_wear for part in parts])
        for part in parts:
            merged.total_writes += part.total_writes
            merged.total_reads += part.total_reads
            merged.total_bit_updates += part.total_bit_updates
            merged.total_aux_bit_updates += part.total_aux_bit_updates
            merged.total_words_touched += part.total_words_touched
            merged.total_lines_touched += part.total_lines_touched
            merged.total_write_latency_ns += part.total_write_latency_ns
            merged.total_read_latency_ns += part.total_read_latency_ns
        return merged

    # ------------------------------------------------------------------ #
    # derived views                                                       #
    # ------------------------------------------------------------------ #

    def address_write_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF of per-address write counts (paper Fig. 12)."""
        return cdf_of_counts(self.writes_per_address)

    def bit_wear_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """CDF of per-bit update counts (paper Fig. 13).

        Raises ``ValueError`` when bit tracking was not enabled, because a
        silently empty CDF would be mistaken for perfect wear leveling.
        """
        if self.bit_wear is None:
            raise ValueError("device was created with track_bit_wear=False")
        return cdf_of_counts(self.bit_wear)

    @property
    def mean_bit_updates_per_write(self) -> float:
        """Average programmed cells per write (data region only)."""
        if self.total_writes == 0:
            return 0.0
        return self.total_bit_updates / self.total_writes

    @property
    def mean_lines_per_write(self) -> float:
        """Average cache lines touched per write."""
        if self.total_writes == 0:
            return 0.0
        return self.total_lines_touched / self.total_writes

    def summary(self) -> dict[str, float]:
        """Flat dictionary of the headline counters (for reports/tests)."""
        return {
            "writes": self.total_writes,
            "reads": self.total_reads,
            "bit_updates": self.total_bit_updates,
            "aux_bit_updates": self.total_aux_bit_updates,
            "words_touched": self.total_words_touched,
            "lines_touched": self.total_lines_touched,
            "write_latency_ns": self.total_write_latency_ns,
            "read_latency_ns": self.total_read_latency_ns,
            "mean_bit_updates_per_write": self.mean_bit_updates_per_write,
            "mean_lines_per_write": self.mean_lines_per_write,
        }

    def reset(self) -> None:
        """Zero every counter (used between warm-up and measurement)."""
        self.writes_per_address[:] = 0
        if self.bit_wear is not None:
            self.bit_wear[:] = 0
        for name in self.INT_TOTALS:
            setattr(self, name, 0)
        for name in self.FLOAT_TOTALS:
            setattr(self, name, 0.0)


class SharedWearStats(WearStats):
    """:class:`WearStats` whose counters live in caller-owned buffers.

    Built over views of a :class:`~repro.nvm.shm.SharedZone` so a shard
    worker process and its parent see the same wear accounting, and the
    counters survive a ``kill -9``'d worker.  Attaching never zeroes
    anything: a freshly created segment arrives zero-filled, and a
    re-attach after a worker crash must preserve what the dead worker
    already accounted.

    The scalar totals are data descriptors over two tiny shared arrays
    (``int_totals`` int64[6], ``float_totals`` float64[2], slot order
    given by :attr:`WearStats.INT_TOTALS` / :attr:`WearStats.FLOAT_TOTALS`),
    so every ``total_* += ...`` in the inherited record methods lands in
    shared memory unchanged.
    """

    def __init__(
        self,
        num_buckets: int,
        bucket_bytes: int,
        *,
        writes_per_address: np.ndarray,
        int_totals: np.ndarray,
        float_totals: np.ndarray,
        bit_wear: np.ndarray | None = None,
    ) -> None:
        if writes_per_address.shape != (num_buckets,):
            raise ValueError(
                f"writes_per_address must have shape ({num_buckets},), "
                f"got {writes_per_address.shape}"
            )
        if int_totals.shape != (len(self.INT_TOTALS),):
            raise ValueError("int_totals has the wrong number of slots")
        if float_totals.shape != (len(self.FLOAT_TOTALS),):
            raise ValueError("float_totals has the wrong number of slots")
        # Deliberately no super().__init__(): the base would allocate
        # private arrays and zero the scalar slots through the
        # descriptors below.
        self.num_buckets = num_buckets
        self.bucket_bytes = bucket_bytes
        self.track_bit_wear = bit_wear is not None
        self.writes_per_address = writes_per_address
        self.bit_wear = bit_wear
        self._int_totals = int_totals
        self._float_totals = float_totals

    def detach(self) -> None:
        """Replace the shared views with private copies.

        Called when the owning segment is about to be closed/unlinked:
        the counters keep their last values (so post-close aggregation
        still works) but no longer pin the shared mapping open.
        """
        self.writes_per_address = self.writes_per_address.copy()
        if self.bit_wear is not None:
            self.bit_wear = self.bit_wear.copy()
        self._int_totals = self._int_totals.copy()
        self._float_totals = self._float_totals.copy()


def _int_slot(index: int):
    def fget(self: SharedWearStats) -> int:
        return int(self._int_totals[index])

    def fset(self: SharedWearStats, value: int) -> None:
        self._int_totals[index] = value

    return property(fget, fset)


def _float_slot(index: int):
    def fget(self: SharedWearStats) -> float:
        return float(self._float_totals[index])

    def fset(self: SharedWearStats, value: float) -> None:
        self._float_totals[index] = value

    return property(fget, fset)


for _i, _name in enumerate(WearStats.INT_TOTALS):
    setattr(SharedWearStats, _name, _int_slot(_i))
for _i, _name in enumerate(WearStats.FLOAT_TOTALS):
    setattr(SharedWearStats, _name, _float_slot(_i))
del _i, _name

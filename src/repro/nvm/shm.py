"""Shared-memory arenas for process-parallel shard zones.

A :class:`ZoneLayout` is a tiny picklable spec describing how one shard's
durable state packs into a single ``multiprocessing.shared_memory``
segment: the NVM data zone, the persistent validity bitmap's backing
words, and the wear counters of both devices.  A :class:`SharedZone`
owns (or attaches to) the segment and hands out NumPy views over each
region plus ready-made :class:`~repro.nvm.stats.SharedWearStats` objects.

The layout deliberately covers exactly the state that must survive a
``kill -9``'d worker process: everything the existing single-store
recovery path (:meth:`PNWStore.recover`) reads back.  Volatile state —
the DRAM index, the k-means model, the dynamic address pool's free lists
and content cache — stays worker-local and is rebuilt by that same
recovery path, just as it is after a simulated whole-store crash.

Fresh segments are zero-filled by the OS, which is exactly the initial
state every region wants, so creation and post-crash re-attachment share
one code path that never writes to the buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .stats import SharedWearStats, WearStats

__all__ = ["ZoneLayout", "SharedZone"]

_ALIGN = 64  # cacheline-align every region


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


@dataclass(frozen=True)
class ZoneLayout:
    """Picklable offsets spec for one shard zone's shared segment.

    ``flag_words`` is the number of 32-bit words backing the validity
    bitmap (``ceil(num_buckets / 32)``); the flags device stores each
    word as a 4-byte bucket, mirroring ``PNWStore.flags_nvm``.

    The always-present ``retired`` region is the
    :class:`~repro.core.media.BadRowDirectory`'s packed row-retirement
    bitmap (``ceil(num_buckets / 8)`` bytes): retirements are media
    facts, so they must survive worker crashes exactly like the data
    whose rows they condemn.  ``media_stuck`` additionally maps the
    fault model's dense stuck-bit mask into the segment, so a respawned
    worker inherits which cells already failed (the only part of the
    media state that depends on write history).

    ``routing_slots`` (when ``> 0``) maps the sharded store's
    virtual-bucket routing table into the segment: an ``int32`` shard
    id per virtual bucket (``routing``) plus an ``int64[4]`` header
    (``routing_meta``: version, n_shards, n_vbuckets, reserved).  The
    table is parent-owned shared routing state rather than one zone's
    durable data, so it rides in its own small segment (see
    :class:`~repro.shard.router.RoutingTable`), but the layout/region
    machinery is identical.
    """

    num_buckets: int
    bucket_bytes: int
    track_bit_wear: bool = False
    media_stuck: bool = False
    routing_slots: int = 0

    @property
    def flag_words(self) -> int:
        return -(-self.num_buckets // 32)

    @property
    def retired_bytes(self) -> int:
        return -(-self.num_buckets // 8)

    def regions(self) -> dict[str, tuple[int, tuple[int, ...], np.dtype]]:
        """``name -> (byte offset, shape, dtype)`` for every region."""
        n_int = len(WearStats.INT_TOTALS)
        n_float = len(WearStats.FLOAT_TOTALS)
        specs: list[tuple[str, tuple[int, ...], np.dtype]] = [
            ("data", (self.num_buckets, self.bucket_bytes), np.dtype(np.uint8)),
            ("flags", (self.flag_words, 4), np.dtype(np.uint8)),
            ("data_writes", (self.num_buckets,), np.dtype(np.int64)),
            ("data_int_totals", (n_int,), np.dtype(np.int64)),
            ("data_float_totals", (n_float,), np.dtype(np.float64)),
            ("flag_writes", (self.flag_words,), np.dtype(np.int64)),
            ("flag_int_totals", (n_int,), np.dtype(np.int64)),
            ("flag_float_totals", (n_float,), np.dtype(np.float64)),
            ("retired", (self.retired_bytes,), np.dtype(np.uint8)),
        ]
        if self.media_stuck:
            specs.append(
                ("stuck",
                 (self.num_buckets, self.bucket_bytes),
                 np.dtype(np.uint8))
            )
        if self.track_bit_wear:
            specs.append(
                ("data_bit_wear",
                 (self.num_buckets, self.bucket_bytes * 8),
                 np.dtype(np.uint32))
            )
        if self.routing_slots > 0:
            specs.append(
                ("routing", (self.routing_slots,), np.dtype(np.int32))
            )
            specs.append(("routing_meta", (4,), np.dtype(np.int64)))
        regions: dict[str, tuple[int, tuple[int, ...], np.dtype]] = {}
        offset = 0
        for name, shape, dtype in specs:
            offset = _aligned(offset)
            regions[name] = (offset, shape, dtype)
            offset += int(np.prod(shape)) * dtype.itemsize
        return regions

    @property
    def total_bytes(self) -> int:
        last_offset = 0
        for offset, shape, dtype in self.regions().values():
            end = offset + int(np.prod(shape)) * dtype.itemsize
            last_offset = max(last_offset, end)
        return max(last_offset, 1)


class SharedZone:
    """One shard zone's durable state in a single shared segment.

    Create with :meth:`create` in the parent (which owns unlinking) and
    :meth:`attach` in the worker.  ``close()`` releases this process's
    mapping; ``unlink()`` removes the name — parent-only, after workers
    are gone.
    """

    def __init__(self, layout: ZoneLayout, shm: shared_memory.SharedMemory,
                 *, owner: bool) -> None:
        self.layout = layout
        self._shm = shm
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        for name, (offset, shape, dtype) in layout.regions().items():
            count = int(np.prod(shape))
            view = np.frombuffer(
                shm.buf, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
            self._views[name] = view

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, layout: ZoneLayout) -> "SharedZone":
        shm = shared_memory.SharedMemory(create=True, size=layout.total_bytes)
        return cls(layout, shm, owner=True)

    @classmethod
    def attach(cls, layout: ZoneLayout, name: str) -> "SharedZone":
        shm = shared_memory.SharedMemory(name=name)
        return cls(layout, shm, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    # ------------------------------------------------------------------ #
    # views                                                               #
    # ------------------------------------------------------------------ #

    def view(self, name: str) -> np.ndarray:
        return self._views[name]

    def has_region(self, name: str) -> bool:
        """Whether the layout maps ``name`` (e.g. the optional ``stuck``
        mask, present only for media-enabled configurations)."""
        return name in self._views

    def data_stats(self) -> SharedWearStats:
        """Wear accounting of the data zone, over the shared slots."""
        return SharedWearStats(
            self.layout.num_buckets,
            self.layout.bucket_bytes,
            writes_per_address=self._views["data_writes"],
            int_totals=self._views["data_int_totals"],
            float_totals=self._views["data_float_totals"],
            bit_wear=self._views.get("data_bit_wear"),
        )

    def flag_stats(self) -> SharedWearStats:
        """Wear accounting of the validity-bitmap device."""
        return SharedWearStats(
            self.layout.flag_words,
            4,
            writes_per_address=self._views["flag_writes"],
            int_totals=self._views["flag_int_totals"],
            float_totals=self._views["flag_float_totals"],
        )

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release this process's mapping.

        NumPy views handed out earlier keep a buffer export open; if any
        are still alive the mmap cannot be closed yet — the mapping is
        then released when the last view is garbage collected (or at
        process exit).  ``unlink`` below does not need the mapping gone.
        """
        self._views.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - depends on caller refs
            pass

    def unlink(self) -> None:
        """Remove the segment's name (parent/owner only)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

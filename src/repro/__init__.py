"""Predict and Write (PNW) — ICDE 2021 reproduction.

A key/value store for hybrid DRAM-NVM systems that extends NVM lifetime
by steering each write to the free memory location whose current content
minimises the Hamming distance to the new value, using k-means clustering
over bucket contents (Kargar, Litz & Nawab, ICDE 2021).

Quick start::

    import numpy as np
    from repro import PNWConfig, PNWStore

    config = PNWConfig(num_buckets=1024, value_bytes=56, n_clusters=8, seed=7)
    store = PNWStore(config)
    store.warm_up(np.random.default_rng(7).integers(0, 256, (1024, 56), dtype=np.uint8))
    report = store.put(b"sensor-1", b"reading-payload")
    print(report.bit_updates, "cells programmed")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from .core import (
    BackgroundScrubber,
    BadRowDirectory,
    DynamicAddressPool,
    MediaScrubber,
    ModelManager,
    OperationReport,
    PNWConfig,
    PNWStore,
    StoreMetrics,
)
from .errors import (
    CapacityError,
    ConfigError,
    DeadlineExceededError,
    DegradedModeError,
    DuplicateKeyError,
    KeyNotFoundError,
    MediaError,
    NotFittedError,
    PoolExhaustedError,
    QueueClosedError,
    QueueFullError,
    ReproError,
    WorkerCrashedError,
)
from .engine import MutationEngine
from .ingest import AsyncIngestQueue, IngestQueue
from .ml import PCA, KMeans, MiniBatchKMeans, choose_k
from .nvm import (
    FaultModel,
    HybridMemory,
    LatencyModel,
    MediaStats,
    SimulatedNVM,
    WearStats,
)
from .shard import ShardedPNWStore, make_store
from .tier import (
    BufferCache,
    LongevityClassifier,
    TieredStore,
    TierStats,
    WriteBuffer,
)
from .writeschemes import (
    Captopril,
    ConventionalWrite,
    DataComparisonWrite,
    FlipNWrite,
    MinShift,
    default_schemes,
)

__version__ = "1.0.0"

__all__ = [
    "PNWConfig",
    "PNWStore",
    "ShardedPNWStore",
    "make_store",
    "OperationReport",
    "StoreMetrics",
    "DynamicAddressPool",
    "ModelManager",
    "MutationEngine",
    "IngestQueue",
    "AsyncIngestQueue",
    "TieredStore",
    "TierStats",
    "BufferCache",
    "WriteBuffer",
    "LongevityClassifier",
    "KMeans",
    "MiniBatchKMeans",
    "PCA",
    "choose_k",
    "SimulatedNVM",
    "HybridMemory",
    "LatencyModel",
    "WearStats",
    "FaultModel",
    "MediaStats",
    "BadRowDirectory",
    "MediaScrubber",
    "BackgroundScrubber",
    "ConventionalWrite",
    "DataComparisonWrite",
    "FlipNWrite",
    "MinShift",
    "Captopril",
    "default_schemes",
    "ReproError",
    "CapacityError",
    "KeyNotFoundError",
    "DuplicateKeyError",
    "PoolExhaustedError",
    "NotFittedError",
    "ConfigError",
    "QueueFullError",
    "QueueClosedError",
    "DeadlineExceededError",
    "WorkerCrashedError",
    "MediaError",
    "DegradedModeError",
    "__version__",
]

"""Commit stage: pool pops, device writes, and index/flag updates.

The commit stage is the only place a planned-and-steered chunk mutates
the store: it pops best-match addresses from the dynamic pool, flushes
payloads through the device's multi-row write path, coalesces the
validity-bitmap updates, and applies the per-op index inserts and
retrain checks in the exact order the sequential loop would.

Mid-chunk :class:`PoolExhaustedError` handling lives here too: the
already-placed prefix is committed (the state a sequential loop leaves
behind when it dies on that PUT) and the escaping exception is stamped
with the prefix's reports before it reaches the pipeline driver.

**Write-verify.**  On a media-enabled store
(:attr:`PNWConfig.media_enabled` + ``media_verify``) every chunk's
device writes are read back and compared before any flag or index entry
is set: an op whose row came back wrong (stuck cells) is *relocated* —
its faulty row retired, a fresh candidate popped through the same
Hamming probe path, re-written, re-verified — so nothing is ever
acknowledged unless its bytes are actually on the media.  A relocation
that exhausts the pool finalizes the verified prefix and escapes as an
ordinary mid-chunk :class:`PoolExhaustedError` (the unverified tail's
rows are released back to the pool, unflagged and unindexed — the same
unapplied suffix a sequential loop leaves).  With the fault model
disabled, none of this code runs and the commit stage is byte-identical
to the pre-media implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.reports import OperationReport
from ..errors import KeyNotFoundError, PoolExhaustedError
from . import account
from .steer import DeleteSteering, PutSteering, UpdateSteering

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import MutationEngine

__all__ = [
    "PutCommit",
    "commit_puts",
    "unindex_deletes",
    "release_deletes",
    "commit_endurance_updates",
    "commit_latency_updates",
    "replay_update_deletes",
    "verify_latency_update",
]


@dataclass
class PutCommit:
    """What one flushed chunk of steered PUTs did to the store."""

    addresses: np.ndarray
    fallbacks: np.ndarray
    write_reports: list
    index_lines: list[int]
    retrained: list[bool]


def _verify_chunk(
    engine: "MutationEngine",
    payloads: np.ndarray,
    addresses: np.ndarray,
    write_reports: list,
    clusters: np.ndarray | None,
    orders,
) -> tuple[int, PoolExhaustedError | None]:
    """Read back every just-written row and relocate the ones that
    landed on stuck cells (mutating ``addresses`` / ``write_reports`` in
    place).

    Returns ``(good, exc)``: with healthy media or successful
    relocations ``good == len(addresses)`` and ``exc is None``.  When a
    relocation exhausts the pool at op ``i``, ops ``[0, i)`` are
    verified, the tail's already-written rows are released back into the
    pool (they were never flagged or indexed — the unapplied suffix of a
    sequential loop), and the caller finalizes only the prefix.
    """
    store = engine.store
    m = len(addresses)
    readback = store.nvm.peek_many(addresses)
    bad = np.flatnonzero((readback != payloads[:m]).any(axis=1))
    for i in bad:
        i = int(i)
        store.media_stats.verify_failures += 1
        store._retire_address(int(addresses[i]))
        cluster = int(clusters[i]) if clusters is not None else None
        order = orders[i] if (cluster is not None and orders is not None) else None
        try:
            new_address, report = store._media_place(payloads[i], cluster, order)
        except PoolExhaustedError as exc:
            for j in range(i + 1, m):
                release_cluster = int(clusters[j]) if clusters is not None else 0
                if release_cluster >= store.pool.n_clusters:
                    release_cluster = 0
                store.pool.release(int(addresses[j]), release_cluster)
            return i, exc
        addresses[i] = new_address
        write_reports[i] = report
        store.media_stats.relocations += 1
    return m, None


def _flush_puts(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    addresses: np.ndarray,
    fallbacks: np.ndarray,
    clusters: np.ndarray | None = None,
    orders=None,
) -> PutCommit:
    """Flush a chunk of placed PUTs: multi-row write, write-verify (on
    media-enabled stores), coalesced flag bits, then per-op index
    inserts and retrain checks, in order.

    Deferring the data writes to one multi-row commit is safe because
    chunk writes only land on just-popped addresses, which are no longer
    candidates for later pops — so every Hamming probe sees exactly the
    bytes the sequential loop would have seen.

    ``clusters`` / ``orders`` are the chunk's steering outputs, consumed
    only by the verify/relocate path.  On relocation pool-exhaustion the
    verified prefix is finalized and the escaping
    :class:`PoolExhaustedError` carries it as ``flushed_commit`` for the
    caller's accounting.
    """
    store = engine.store
    m = len(keys)
    store.metrics.fallbacks += int(np.count_nonzero(fallbacks[:m]))
    addresses = addresses[:m]
    fallbacks = fallbacks[:m]
    write_reports = store.nvm.write_many(addresses, payloads[:m])
    good, pool_exc = m, None
    if m and store.config.media_enabled and store.config.media_verify:
        addresses = addresses.copy()
        good, pool_exc = _verify_chunk(
            engine, payloads, addresses, write_reports, clusters, orders
        )
    if good:
        store._set_valid_many(addresses[:good], True)
        if store.scrubber is not None:
            store.scrubber.note_many(addresses[:good], payloads[:good])
    index_lines: list[int] = []
    retrained: list[bool] = []
    for i in range(good):
        lines_before = store._index_lines_snapshot()
        store.index.put(keys[i], int(addresses[i]))
        index_lines.append(store._index_lines_snapshot() - lines_before)
        store._live_count += 1
        store.metrics.puts += 1
        retrained.append(store._maybe_retrain())
    committed = PutCommit(addresses[:good], fallbacks[:good], write_reports[:good],
                          index_lines, retrained)
    if pool_exc is not None:
        pool_exc.flushed_commit = committed
        raise pool_exc
    return committed


def _flush_puts_accounted(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    addresses: np.ndarray,
    fallbacks: np.ndarray,
    steering: PutSteering,
) -> PutCommit:
    """:func:`_flush_puts` with steering wired through, stamping
    ``chunk_reports`` for the verified prefix if a mid-verify relocation
    exhausts the pool."""
    try:
        return _flush_puts(engine, keys, payloads, addresses, fallbacks,
                           steering.clusters, steering.orders)
    except PoolExhaustedError as exc:
        flushed = exc.__dict__.pop("flushed_commit", None)
        if flushed is None:
            raise
        good = len(flushed.write_reports)
        exc.chunk_reports = account.account_puts(
            engine, keys[:good], steering.clusters, steering.predict_ns,
            flushed,
        )
        raise


def commit_puts(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    steering: PutSteering,
) -> PutCommit:
    """Bulk-pop best-match addresses and flush the chunk.

    The payload matrix goes straight to the probe engine, which scores
    each row against its cluster's DRAM content cache — no per-request
    scorer closures, no device gathers per pop.  On pool exhaustion the
    prefix the pool did serve is committed and accounted, and the
    exception escapes carrying those ``chunk_reports``.
    """
    store = engine.store
    try:
        addresses, fallbacks = store.pool.get_best_many(
            steering.clusters, payloads, store.config.probe_limit,
            steering.orders,
        )
    except PoolExhaustedError as exc:
        done = int(exc.partial_addresses.size)
        if done:
            committed = _flush_puts_accounted(
                engine, keys[:done], payloads, exc.partial_addresses,
                exc.partial_fallbacks, steering,
            )
            exc.chunk_reports = account.account_puts(
                engine, keys[:done], steering.clusters,
                steering.predict_ns, committed,
            )
        else:
            exc.chunk_reports = []
        raise
    return _flush_puts_accounted(engine, keys, payloads, addresses,
                                 fallbacks, steering)


# ---------------------------------------------------------------------- #
# deletes                                                                 #
# ---------------------------------------------------------------------- #

def unindex_deletes(
    engine: "MutationEngine", keys: list[bytes]
) -> tuple[list[tuple[bytes, int]], KeyNotFoundError | None]:
    """Index removals and flag resets, per key in order (Algorithm 3).

    Stops at the first missing key; the caller finishes recycling the
    already-deleted prefix before the error escapes — the state a
    sequential loop leaves when it dies on that key.
    """
    store = engine.store
    done: list[tuple[bytes, int]] = []
    for key in keys:
        try:
            address = store.index.delete(key)
        except KeyNotFoundError as exc:
            return done, exc
        store._set_valid(address, False)
        done.append((key, address))
    return done, None


def release_deletes(
    engine: "MutationEngine",
    done: list[tuple[bytes, int]],
    steering: DeleteSteering,
) -> list[int]:
    """Recycle already-unindexed addresses into the pool, in key order.

    Returns the clamped cluster each address was filed under (a stale
    label past the current pool's range files under cluster 0).
    """
    store = engine.store
    clusters: list[int] = []
    for i, (_, address) in enumerate(done):
        cluster = int(steering.clusters[i])
        if cluster >= store.pool.n_clusters:
            cluster = 0
        store.pool.release(address, cluster)
        store._live_count -= 1
        store.metrics.deletes += 1
        clusters.append(cluster)
    return clusters


# ---------------------------------------------------------------------- #
# updates                                                                 #
# ---------------------------------------------------------------------- #

def replay_update_deletes(
    engine: "MutationEngine",
    keys: list[bytes],
    releases: list[tuple[int, int]],
    count: int,
    predict_ns: float,
) -> list[OperationReport]:
    """Store-side half of the first ``count`` endurance-update deletes,
    whose pool-side releases the probe engine already interleaved with
    the pops: index removal, flag reset, and counters per key, in key
    order.  Builds (but does not record) the delete reports — the
    account stage interleaves them with the put reports."""
    store = engine.store
    reports: list[OperationReport] = []
    for i in range(count):
        store.metrics.updates += 1
        address = int(store.index.delete(keys[i]))
        store._set_valid(address, False)
        store._live_count -= 1
        store.metrics.deletes += 1
        reports.append(
            OperationReport(
                op="delete",
                key=keys[i],
                address=address,
                cluster=releases[i][1],
                fallback_used=False,
                bit_updates=0,
                words_touched=0,
                lines_touched=0,
                nvm_latency_ns=0.0,
                predict_ns=predict_ns,
                index_lines=0,
                retrained=False,
            )
        )
        # Replay the PUT-side membership check of the sequential path
        # (update -> put -> "key in index", always False here): on an
        # NVM index that lookup is accounted read traffic, and skipping
        # it would make batched and sequential runs report different
        # index wear.
        _ = keys[i] in store.index
    return reports


def commit_endurance_updates(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    steering: UpdateSteering,
) -> tuple[PutCommit, list[OperationReport], int]:
    """Delete-plus-steered-PUT over a chunk of distinct, present keys.

    The whole pool-visible event sequence — release ``i`` before pop
    ``i``, pops in key order — runs inside one
    :meth:`DynamicAddressPool.get_best_many` call with interleaved
    ``releases``, preserving the sequential interleaving exactly (a
    freed address is eligible for its own key's steered PUT and every
    later one).  The store-side half of each delete touches neither the
    pool nor the data zone, so replaying it after the bulk pop leaves
    identical state and identical accounting.

    Returns ``(put_commit, delete_reports, committed)``.  A trailing
    delete whose steered PUT found the pool empty is still returned
    (its delete *did* happen); the account stage records it before the
    error escapes.
    """
    store = engine.store
    m = len(keys)
    new_addresses = np.empty(m, dtype=np.int64)
    fallbacks = np.zeros(m, dtype=bool)
    try:
        new_addresses, fallbacks = store.pool.get_best_many(
            steering.put_clusters, payloads, store.config.probe_limit,
            steering.orders, releases=steering.releases,
        )
    except PoolExhaustedError as exc:
        committed = int(exc.partial_addresses.size)
        new_addresses[:committed] = exc.partial_addresses
        fallbacks[:committed] = exc.partial_fallbacks
        # The failing request's release landed before its pop died, so
        # its delete half is replayed (and recorded) too.
        applied = int(getattr(exc, "releases_applied", committed))
        delete_reports = replay_update_deletes(
            engine, keys, steering.releases, applied, steering.predict_ns
        )
        try:
            put_commit = _flush_puts(
                engine, keys[:committed], payloads, new_addresses, fallbacks,
                steering.put_clusters, steering.orders,
            )
        except PoolExhaustedError as exc2:
            _account_update_flush_failure(
                engine, exc2, keys, steering, delete_reports
            )
            raise exc2 from None
        exc.chunk_reports = account.account_endurance_updates(
            engine, keys, steering, put_commit, delete_reports, committed
        )
        raise
    delete_reports = replay_update_deletes(
        engine, keys, steering.releases, m, steering.predict_ns
    )
    try:
        put_commit = _flush_puts(engine, keys, payloads, new_addresses,
                                 fallbacks, steering.put_clusters,
                                 steering.orders)
    except PoolExhaustedError as exc:
        _account_update_flush_failure(engine, exc, keys, steering,
                                      delete_reports)
        raise
    return put_commit, delete_reports, m


def _account_update_flush_failure(
    engine: "MutationEngine",
    exc: PoolExhaustedError,
    keys: list[bytes],
    steering: UpdateSteering,
    delete_reports: list[OperationReport],
) -> None:
    """Stamp ``chunk_reports`` on a verify-relocation pool-exhaustion
    that fired inside an endurance-update flush.

    The verified put prefix is accounted as usual; delete halves past
    the prefix *did* land (their keys are gone, their rows unflagged,
    their put rows released back to the pool), so their reports are
    recorded in the metrics just like the single trailing delete the
    account stage already handles."""
    flushed = exc.__dict__.pop("flushed_commit", None)
    if flushed is None:
        raise exc
    good = len(flushed.write_reports)
    exc.chunk_reports = account.account_endurance_updates(
        engine, keys, steering, flushed, delete_reports, good
    )
    for report in delete_reports[good + 1:]:
        engine.store.metrics.record(report)


def verify_latency_update(
    engine: "MutationEngine",
    key: bytes,
    address: int,
    payload: np.ndarray,
    write_report,
):
    """Read-back verify of one in-place (latency-mode) update.

    Latency mode rewrites the key's existing row, so there is no popped
    address to fall back to: on stuck cells the key is *moved* — fresh
    verified row via the media-placement probe, index repointed, old row
    unflagged and retired.  Returns the (possibly new)
    ``(address, write_report)``; raises :class:`PoolExhaustedError` when
    no healthy row is available for the move.
    """
    store = engine.store
    if np.array_equal(store.nvm.peek(address), payload):
        if store.scrubber is not None:
            store.scrubber.note(address, payload)
        return address, write_report
    store.media_stats.verify_failures += 1
    new_address, report = store._media_place(payload)
    store._set_valid(new_address, True)
    store.index.put(key, new_address)
    store._set_valid(address, False)
    store._retire_address(address)
    if store.scrubber is not None:
        store.scrubber.note(new_address, payload)
    store.media_stats.relocations += 1
    return new_address, report


def commit_latency_updates(
    engine: "MutationEngine", keys: list[bytes], payloads: np.ndarray
) -> tuple[np.ndarray, list]:
    """In-place batch update: one multi-row write, no steering.

    On media-enabled stores every row is read back; an op that landed on
    stuck cells is moved to a healthy row (see
    :func:`verify_latency_update`).  A move that exhausts the pool
    escapes with the verified prefix's reports as ``chunk_reports`` —
    unverified ops past it are not acknowledged.
    """
    store = engine.store
    store.metrics.updates += len(keys)
    addresses = np.array([store.index.get(key) for key in keys],
                         dtype=np.int64)
    write_reports = store.nvm.write_many(addresses, payloads)
    if store.config.media_enabled and store.config.media_verify:
        for i, key in enumerate(keys):
            try:
                addresses[i], write_reports[i] = verify_latency_update(
                    engine, key, int(addresses[i]), payloads[i],
                    write_reports[i],
                )
            except PoolExhaustedError as exc:
                exc.chunk_reports = account.account_latency_updates(
                    engine, keys[:i], addresses[:i], write_reports[:i]
                )
                raise
    return addresses, write_reports

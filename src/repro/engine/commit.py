"""Commit stage: pool pops, device writes, and index/flag updates.

The commit stage is the only place a planned-and-steered chunk mutates
the store: it pops best-match addresses from the dynamic pool, flushes
payloads through the device's multi-row write path, coalesces the
validity-bitmap updates, and applies the per-op index inserts and
retrain checks in the exact order the sequential loop would.

Mid-chunk :class:`PoolExhaustedError` handling lives here too: the
already-placed prefix is committed (the state a sequential loop leaves
behind when it dies on that PUT) and the escaping exception is stamped
with the prefix's reports before it reaches the pipeline driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.reports import OperationReport
from ..errors import KeyNotFoundError, PoolExhaustedError
from . import account
from .steer import DeleteSteering, PutSteering, UpdateSteering

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import MutationEngine

__all__ = [
    "PutCommit",
    "commit_puts",
    "unindex_deletes",
    "release_deletes",
    "commit_endurance_updates",
    "commit_latency_updates",
    "replay_update_deletes",
]


@dataclass
class PutCommit:
    """What one flushed chunk of steered PUTs did to the store."""

    addresses: np.ndarray
    fallbacks: np.ndarray
    write_reports: list
    index_lines: list[int]
    retrained: list[bool]


def _flush_puts(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    addresses: np.ndarray,
    fallbacks: np.ndarray,
) -> PutCommit:
    """Flush a chunk of placed PUTs: multi-row write, coalesced flag
    bits, then per-op index inserts and retrain checks, in order.

    Deferring the data writes to one multi-row commit is safe because
    chunk writes only land on just-popped addresses, which are no longer
    candidates for later pops — so every Hamming probe sees exactly the
    bytes the sequential loop would have seen.
    """
    store = engine.store
    m = len(keys)
    store.metrics.fallbacks += int(np.count_nonzero(fallbacks[:m]))
    write_reports = store.nvm.write_many(addresses[:m], payloads[:m])
    if m:
        store._set_valid_many(addresses[:m], True)
    index_lines: list[int] = []
    retrained: list[bool] = []
    for i in range(m):
        lines_before = store._index_lines_snapshot()
        store.index.put(keys[i], int(addresses[i]))
        index_lines.append(store._index_lines_snapshot() - lines_before)
        store._live_count += 1
        store.metrics.puts += 1
        retrained.append(store._maybe_retrain())
    return PutCommit(addresses[:m], fallbacks[:m], write_reports,
                     index_lines, retrained)


def commit_puts(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    steering: PutSteering,
) -> PutCommit:
    """Bulk-pop best-match addresses and flush the chunk.

    The payload matrix goes straight to the probe engine, which scores
    each row against its cluster's DRAM content cache — no per-request
    scorer closures, no device gathers per pop.  On pool exhaustion the
    prefix the pool did serve is committed and accounted, and the
    exception escapes carrying those ``chunk_reports``.
    """
    store = engine.store
    try:
        addresses, fallbacks = store.pool.get_best_many(
            steering.clusters, payloads, store.config.probe_limit,
            steering.orders,
        )
    except PoolExhaustedError as exc:
        done = int(exc.partial_addresses.size)
        if done:
            committed = _flush_puts(
                engine, keys[:done], payloads, exc.partial_addresses,
                exc.partial_fallbacks,
            )
            exc.chunk_reports = account.account_puts(
                engine, keys[:done], steering.clusters,
                steering.predict_ns, committed,
            )
        else:
            exc.chunk_reports = []
        raise
    return _flush_puts(engine, keys, payloads, addresses, fallbacks)


# ---------------------------------------------------------------------- #
# deletes                                                                 #
# ---------------------------------------------------------------------- #

def unindex_deletes(
    engine: "MutationEngine", keys: list[bytes]
) -> tuple[list[tuple[bytes, int]], KeyNotFoundError | None]:
    """Index removals and flag resets, per key in order (Algorithm 3).

    Stops at the first missing key; the caller finishes recycling the
    already-deleted prefix before the error escapes — the state a
    sequential loop leaves when it dies on that key.
    """
    store = engine.store
    done: list[tuple[bytes, int]] = []
    for key in keys:
        try:
            address = store.index.delete(key)
        except KeyNotFoundError as exc:
            return done, exc
        store._set_valid(address, False)
        done.append((key, address))
    return done, None


def release_deletes(
    engine: "MutationEngine",
    done: list[tuple[bytes, int]],
    steering: DeleteSteering,
) -> list[int]:
    """Recycle already-unindexed addresses into the pool, in key order.

    Returns the clamped cluster each address was filed under (a stale
    label past the current pool's range files under cluster 0).
    """
    store = engine.store
    clusters: list[int] = []
    for i, (_, address) in enumerate(done):
        cluster = int(steering.clusters[i])
        if cluster >= store.pool.n_clusters:
            cluster = 0
        store.pool.release(address, cluster)
        store._live_count -= 1
        store.metrics.deletes += 1
        clusters.append(cluster)
    return clusters


# ---------------------------------------------------------------------- #
# updates                                                                 #
# ---------------------------------------------------------------------- #

def replay_update_deletes(
    engine: "MutationEngine",
    keys: list[bytes],
    releases: list[tuple[int, int]],
    count: int,
    predict_ns: float,
) -> list[OperationReport]:
    """Store-side half of the first ``count`` endurance-update deletes,
    whose pool-side releases the probe engine already interleaved with
    the pops: index removal, flag reset, and counters per key, in key
    order.  Builds (but does not record) the delete reports — the
    account stage interleaves them with the put reports."""
    store = engine.store
    reports: list[OperationReport] = []
    for i in range(count):
        store.metrics.updates += 1
        address = int(store.index.delete(keys[i]))
        store._set_valid(address, False)
        store._live_count -= 1
        store.metrics.deletes += 1
        reports.append(
            OperationReport(
                op="delete",
                key=keys[i],
                address=address,
                cluster=releases[i][1],
                fallback_used=False,
                bit_updates=0,
                words_touched=0,
                lines_touched=0,
                nvm_latency_ns=0.0,
                predict_ns=predict_ns,
                index_lines=0,
                retrained=False,
            )
        )
        # Replay the PUT-side membership check of the sequential path
        # (update -> put -> "key in index", always False here): on an
        # NVM index that lookup is accounted read traffic, and skipping
        # it would make batched and sequential runs report different
        # index wear.
        _ = keys[i] in store.index
    return reports


def commit_endurance_updates(
    engine: "MutationEngine",
    keys: list[bytes],
    payloads: np.ndarray,
    steering: UpdateSteering,
) -> tuple[PutCommit, list[OperationReport], int]:
    """Delete-plus-steered-PUT over a chunk of distinct, present keys.

    The whole pool-visible event sequence — release ``i`` before pop
    ``i``, pops in key order — runs inside one
    :meth:`DynamicAddressPool.get_best_many` call with interleaved
    ``releases``, preserving the sequential interleaving exactly (a
    freed address is eligible for its own key's steered PUT and every
    later one).  The store-side half of each delete touches neither the
    pool nor the data zone, so replaying it after the bulk pop leaves
    identical state and identical accounting.

    Returns ``(put_commit, delete_reports, committed)``.  A trailing
    delete whose steered PUT found the pool empty is still returned
    (its delete *did* happen); the account stage records it before the
    error escapes.
    """
    store = engine.store
    m = len(keys)
    new_addresses = np.empty(m, dtype=np.int64)
    fallbacks = np.zeros(m, dtype=bool)
    try:
        new_addresses, fallbacks = store.pool.get_best_many(
            steering.put_clusters, payloads, store.config.probe_limit,
            steering.orders, releases=steering.releases,
        )
    except PoolExhaustedError as exc:
        committed = int(exc.partial_addresses.size)
        new_addresses[:committed] = exc.partial_addresses
        fallbacks[:committed] = exc.partial_fallbacks
        # The failing request's release landed before its pop died, so
        # its delete half is replayed (and recorded) too.
        applied = int(getattr(exc, "releases_applied", committed))
        delete_reports = replay_update_deletes(
            engine, keys, steering.releases, applied, steering.predict_ns
        )
        put_commit = _flush_puts(
            engine, keys[:committed], payloads, new_addresses, fallbacks
        )
        exc.chunk_reports = account.account_endurance_updates(
            engine, keys, steering, put_commit, delete_reports, committed
        )
        raise
    delete_reports = replay_update_deletes(
        engine, keys, steering.releases, m, steering.predict_ns
    )
    put_commit = _flush_puts(engine, keys, payloads, new_addresses, fallbacks)
    return put_commit, delete_reports, m


def commit_latency_updates(
    engine: "MutationEngine", keys: list[bytes], payloads: np.ndarray
) -> tuple[np.ndarray, list]:
    """In-place batch update: one multi-row write, no steering."""
    store = engine.store
    store.metrics.updates += len(keys)
    addresses = np.array([store.index.get(key) for key in keys],
                         dtype=np.int64)
    write_reports = store.nvm.write_many(addresses, payloads)
    return addresses, write_reports

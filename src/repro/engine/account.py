"""Account stage: build per-op reports and feed the store's counters.

Report construction is pure bookkeeping — no stage after commit touches
the device, the pool, or the index — so the account stage can run after
a chunk's whole commit and still record reports in the exact order the
sequential loop would (each endurance-update key's delete report lands
immediately before its put report).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.reports import OperationReport
from .commit import PutCommit
from .steer import DeleteSteering, UpdateSteering

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import MutationEngine

__all__ = [
    "account_puts",
    "account_deletes",
    "account_endurance_updates",
    "account_latency_updates",
]


def account_puts(
    engine: "MutationEngine",
    keys: list[bytes],
    clusters: np.ndarray,
    predict_ns: float,
    commit: PutCommit,
) -> list[OperationReport]:
    """One PUT report per committed pair, recorded in order."""
    metrics = engine.store.metrics
    reports: list[OperationReport] = []
    for i in range(len(keys)):
        op = OperationReport(
            op="put",
            key=keys[i],
            address=int(commit.addresses[i]),
            cluster=int(clusters[i]),
            fallback_used=bool(commit.fallbacks[i]),
            bit_updates=commit.write_reports[i].bit_updates,
            words_touched=commit.write_reports[i].words_touched,
            lines_touched=commit.write_reports[i].lines_touched,
            nvm_latency_ns=commit.write_reports[i].latency_ns,
            predict_ns=predict_ns,
            index_lines=commit.index_lines[i],
            retrained=commit.retrained[i],
        )
        metrics.record(op)
        reports.append(op)
    return reports


def account_deletes(
    engine: "MutationEngine",
    done: list[tuple[bytes, int]],
    clusters: list[int],
    steering: DeleteSteering,
) -> list[OperationReport]:
    """One DELETE report per recycled key, recorded in order."""
    metrics = engine.store.metrics
    reports: list[OperationReport] = []
    for i, (key, address) in enumerate(done):
        op = OperationReport(
            op="delete",
            key=key,
            address=address,
            cluster=clusters[i],
            fallback_used=False,
            bit_updates=0,
            words_touched=0,
            lines_touched=0,
            nvm_latency_ns=0.0,
            predict_ns=steering.predict_ns,
            index_lines=0,
            retrained=False,
        )
        metrics.record(op)
        reports.append(op)
    return reports


def account_endurance_updates(
    engine: "MutationEngine",
    keys: list[bytes],
    steering: UpdateSteering,
    commit: PutCommit,
    delete_reports: list[OperationReport],
    committed: int,
) -> list[OperationReport]:
    """Per-pair reports of an endurance-update chunk, delete-then-put.

    Each key's delete report is recorded immediately before its put
    report, matching the sequential record order; a trailing delete
    whose steered PUT found the pool empty is still recorded (its
    delete *did* happen) before the error escapes.  Returns the put
    reports — one per committed pair, the batch call's return shape.
    """
    metrics = engine.store.metrics
    reports: list[OperationReport] = []
    for i in range(committed):
        metrics.record(delete_reports[i])
        op = OperationReport(
            op="put",
            key=keys[i],
            address=int(commit.addresses[i]),
            cluster=int(steering.put_clusters[i]),
            fallback_used=bool(commit.fallbacks[i]),
            bit_updates=commit.write_reports[i].bit_updates,
            words_touched=commit.write_reports[i].words_touched,
            lines_touched=commit.write_reports[i].lines_touched,
            nvm_latency_ns=commit.write_reports[i].latency_ns,
            predict_ns=steering.predict_ns,
            index_lines=commit.index_lines[i],
            retrained=commit.retrained[i],
        )
        metrics.record(op)
        reports.append(op)
    if len(delete_reports) > committed:
        metrics.record(delete_reports[committed])
    return reports


def account_latency_updates(
    engine: "MutationEngine",
    keys: list[bytes],
    addresses: np.ndarray,
    write_reports: list,
) -> list[OperationReport]:
    """One in-place UPDATE report per pair, recorded in order."""
    metrics = engine.store.metrics
    reports: list[OperationReport] = []
    for i, write_report in enumerate(write_reports):
        op = OperationReport(
            op="update",
            key=keys[i],
            address=int(addresses[i]),
            cluster=-1,
            fallback_used=False,
            bit_updates=write_report.bit_updates,
            words_touched=write_report.words_touched,
            lines_touched=write_report.lines_touched,
            nvm_latency_ns=write_report.latency_ns,
            predict_ns=0.0,
            index_lines=0,
            retrained=False,
        )
        metrics.record(op)
        reports.append(op)
    return reports

"""The staged mutation pipeline shared by the single and sharded stores.

Every mutating store operation is one configuration of the same four
stages (paper §IV-§V):

* **plan** (:mod:`repro.engine.plan`) — normalize keys, validate and
  encode values, run the insert-only uniqueness pre-check, and carve the
  batch into chunks at duplicate-key and retrain-check boundaries;
* **steer** (:mod:`repro.engine.steer`) — the vectorized K-Means calls:
  nearest-first cluster orders for PUTs, re-labels for freed addresses;
* **commit** (:mod:`repro.engine.commit`) — pool pops, multi-row device
  writes, coalesced flag bits, index updates, retrain checks;
* **account** (:mod:`repro.engine.account`) — per-op reports and
  counters.

PUT, UPDATE, and DELETE differ only in their planner and in which stage
functions their chunks bind — there is exactly one driver loop
(:meth:`MutationEngine._drive`) and one implementation of each stage.
:class:`~repro.core.store.PNWStore` owns one engine;
:class:`~repro.shard.ShardedPNWStore` routes sub-batches to its shards'
engines and reuses the plan stage's uniqueness check directly.

Everything here is a code-motion refactor of the store's former
hand-copied batch loops: execution order — and therefore every byte of
device, index, flag, pool, and accounting state — is unchanged (pinned
by the batch-equivalence and probe-oracle suites).
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from ..core.reports import OperationReport
from ..errors import DegradedModeError, KeyNotFoundError, PoolExhaustedError
from . import account, commit, plan, steer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.store import PNWStore

__all__ = [
    "MutationEngine",
    "Chunk",
    "PutChunk",
    "SingleUpdate",
    "UpdateEnduranceChunk",
    "UpdateLatencyChunk",
    "DeleteBatch",
]


class Chunk:
    """One unit of pipeline work: a steer→commit→account configuration.

    Planners yield chunks; the driver executes them in order.  A chunk
    that dies mid-commit stamps the escaping exception with
    ``chunk_reports`` (its committed prefix) so the driver can aggregate
    ``committed_reports`` across the whole batch call.
    """

    __slots__ = ()

    def execute(self, engine: "MutationEngine") -> list[OperationReport]:
        raise NotImplementedError


class PutChunk(Chunk):
    """Steered PUT of fresh, distinct keys as one vectorized batch.

    The planner guarantees: no key is in the index, keys are distinct,
    and the chunk is short enough that a retrain check can only fire at
    its last operation.
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys: list[bytes], values: list) -> None:
        self.keys = keys
        self.values = values

    def execute(self, engine: "MutationEngine") -> list[OperationReport]:
        payloads = plan.encode_pairs(engine.store.config, self.keys, self.values)
        steering = steer.steer_puts(engine, payloads)
        committed = commit.commit_puts(engine, self.keys, payloads, steering)
        return account.account_puts(
            engine, self.keys, steering.clusters, steering.predict_ns, committed
        )


class SingleUpdate(Chunk):
    """A PUT whose key already exists, routed through the update mode
    exactly like a sequential PUT of an existing key."""

    __slots__ = ("key", "value")

    def __init__(self, key: bytes, value) -> None:
        self.key = key
        self.value = value

    def execute(self, engine: "MutationEngine") -> list[OperationReport]:
        return [engine.update_single(self.key, self.value)]


class UpdateEnduranceChunk(Chunk):
    """Endurance-mode UPDATE chunk: delete + steered PUT per pair, with
    the pool-visible interleaving preserved inside one bulk pop."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: list[tuple[bytes, object]]) -> None:
        self.pairs = pairs

    def execute(self, engine: "MutationEngine") -> list[OperationReport]:
        keys = [key for key, _ in self.pairs]
        payloads = plan.encode_pairs(
            engine.store.config, keys, [value for _, value in self.pairs]
        )
        steering = steer.steer_endurance_updates(engine, keys, payloads)
        put_commit, delete_reports, committed = commit.commit_endurance_updates(
            engine, keys, payloads, steering
        )
        return account.account_endurance_updates(
            engine, keys, steering, put_commit, delete_reports, committed
        )


class UpdateLatencyChunk(Chunk):
    """Latency-mode UPDATE chunk: in-place multi-row write, no steering."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: list[tuple[bytes, object]]) -> None:
        self.pairs = pairs

    def execute(self, engine: "MutationEngine") -> list[OperationReport]:
        keys = [key for key, _ in self.pairs]
        payloads = plan.encode_pairs(
            engine.store.config, keys, [value for _, value in self.pairs]
        )
        addresses, write_reports = commit.commit_latency_updates(
            engine, keys, payloads
        )
        return account.account_latency_updates(
            engine, keys, addresses, write_reports
        )


class DeleteBatch(Chunk):
    """Batched DELETE: per-key unindexing, one vectorized re-labeling,
    recycling in key order (Algorithm 3, batched)."""

    __slots__ = ("keys",)

    def __init__(self, keys: list[bytes]) -> None:
        self.keys = keys

    def execute(self, engine: "MutationEngine") -> list[OperationReport]:
        done, error = commit.unindex_deletes(engine, self.keys)
        if done:
            addresses = np.array([address for _, address in done],
                                 dtype=np.int64)
            steering = steer.steer_deletes(engine, addresses)
            clusters = commit.release_deletes(engine, done, steering)
            reports = account.account_deletes(engine, done, clusters, steering)
        else:
            reports = []
        if error is not None:
            error.chunk_reports = reports
            raise error
        return reports


class MutationEngine:
    """One store's staged write path: plan → steer → commit → account.

    The engine owns no state of its own — it drives the store's
    components (index, model manager, pool, device, flag bitmap,
    metrics) through the four stages, so ``engine.put_many`` on a store
    is *the* mutation path, not a parallel one.
    """

    def __init__(self, store: "PNWStore") -> None:
        self.store = store
        #: While True, retrain checks are suppressed: planners cap chunks
        #: at the batch (not the retrain interval) and the store's
        #: ``_maybe_retrain`` is a no-op.  The shard rebalancer sets this
        #: around migration batches — a full K-Means refit inside the
        #: migration window (which holds every shard lock) would stall
        #: all producers; the check simply runs on the next regular
        #: mutation instead.
        self.defer_retrain = False

    @contextlib.contextmanager
    def deferred_retrain(self):
        """Suppress retrain checks for the block (reentrancy-safe)."""
        previous = self.defer_retrain
        self.defer_retrain = True
        try:
            yield
        finally:
            self.defer_retrain = previous

    # ------------------------------------------------------------------ #
    # driver                                                              #
    # ------------------------------------------------------------------ #

    def _drive(self, chunks: Iterator[Chunk]) -> list[OperationReport]:
        """Execute planned chunks in order, aggregating reports.

        A :class:`PoolExhaustedError` or :class:`KeyNotFoundError`
        escaping a chunk (or the planner itself) is stamped with
        ``committed_reports`` — the in-order reports of every operation
        of *this call* that fully committed (earlier chunks plus the
        failing chunk's flushed prefix) — so callers can see exactly
        which operations landed, and retry the remainder.
        """
        reports: list[OperationReport] = []
        try:
            for chunk in chunks:
                reports.extend(chunk.execute(self))
        except (PoolExhaustedError, KeyNotFoundError, DegradedModeError) as exc:
            exc.committed_reports = list(reports) + list(
                exc.__dict__.pop("chunk_reports", [])
            )
            raise
        return reports

    def _normalize(self, key: bytes) -> bytes:
        return self.store._normalize(key)

    def _shed_if_degraded(self, count: int) -> None:
        """Degraded-mode write shedding: a store past the media
        retirement watermark refuses new writes outright (reads and
        deletes still run — they free capacity rather than consume it).
        The error carries empty ``committed_reports``: nothing in the
        shed batch touched the store, so the whole batch is safe to
        retry elsewhere or after scrubbing/deletes recover headroom."""
        store = self.store
        if store.config.media_enabled and store.degraded:
            store.media_stats.writes_shed += count
            exc = DegradedModeError(
                f"write shed: {store.bad_rows.count} rows retired, at or "
                f"past the watermark of {store._retire_limit} "
                f"(media_retire_watermark="
                f"{store.config.media_retire_watermark} over "
                f"{store.config.num_buckets} buckets)"
            )
            exc.committed_reports = []
            raise exc

    # ------------------------------------------------------------------ #
    # entry points (one stage configuration per operation)                #
    # ------------------------------------------------------------------ #

    def put_many(
        self,
        pairs: Iterable[tuple[bytes, object]],
        *,
        unique: bool = False,
    ) -> list[OperationReport]:
        """Batched PUT: vectorized Algorithm 2 over many K/V pairs."""
        items = [(self._normalize(key), value) for key, value in pairs]
        plan.validate_values(self.store.config, [value for _, value in items])
        self._shed_if_degraded(len(items))
        if unique:
            plan.check_unique(
                (key for key, _ in items),
                lambda key: key in self.store.index,
            )
        return self._drive(plan.plan_puts(self, items))

    def update_many(
        self, pairs: Iterable[tuple[bytes, object]]
    ) -> list[OperationReport]:
        """Batched UPDATE, state-identical to per-pair updates."""
        items = [(self._normalize(key), value) for key, value in pairs]
        plan.validate_values(self.store.config, [value for _, value in items])
        self._shed_if_degraded(len(items))
        return self._drive(plan.plan_updates(self, items))

    def delete_many(self, keys: Iterable[bytes]) -> list[OperationReport]:
        """Batched DELETE: one vectorized re-labeling for many keys."""
        normalized = [self._normalize(key) for key in keys]
        return self._drive(plan.plan_deletes(self, normalized))

    def update_single(self, key: bytes, value) -> OperationReport:
        """UPDATE of one (normalized) key — §V-B3's two modes.

        Endurance mode runs the sequential composition — DELETE, then a
        steered PUT — through the same pipeline entry points, so single
        and batched updates share every stage implementation.
        """
        store = self.store
        self._shed_if_degraded(1)
        if key not in store.index:
            raise KeyNotFoundError(f"key {key!r} not found")
        store.metrics.updates += 1
        if store.config.update_mode == "endurance":
            self.delete_many([key])
            return self.put_many([(key, value)])[0]
        # Latency mode: straight through the index, in place, no steering.
        address = store.index.get(key)
        payload = plan.encode_pairs(store.config, [key], [value])[0]
        report = store.nvm.write(address, payload)
        if store.config.media_enabled and store.config.media_verify:
            try:
                address, report = commit.verify_latency_update(
                    self, key, int(address), payload, report
                )
            except PoolExhaustedError as exc:
                exc.committed_reports = []
                raise
        op = OperationReport(
            op="update",
            key=key,
            address=address,
            cluster=-1,
            fallback_used=False,
            bit_updates=report.bit_updates,
            words_touched=report.words_touched,
            lines_touched=report.lines_touched,
            nvm_latency_ns=report.latency_ns,
            predict_ns=0.0,
            index_lines=0,
            retrained=False,
        )
        store.metrics.record(op)
        return op

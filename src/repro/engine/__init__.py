"""Staged write-path engine: plan → steer → commit → account.

The single generic mutation pipeline behind ``PNWStore`` and (shard by
shard) ``ShardedPNWStore``.  See :mod:`repro.engine.pipeline` for the
stage contract.
"""

from .pipeline import (
    Chunk,
    DeleteBatch,
    MutationEngine,
    PutChunk,
    SingleUpdate,
    UpdateEnduranceChunk,
    UpdateLatencyChunk,
)
from .plan import check_unique, encode_pairs, validate_values

__all__ = [
    "MutationEngine",
    "Chunk",
    "PutChunk",
    "SingleUpdate",
    "UpdateEnduranceChunk",
    "UpdateLatencyChunk",
    "DeleteBatch",
    "check_unique",
    "encode_pairs",
    "validate_values",
]

"""Steer stage: predict clusters and fallback orders for a planned chunk.

Everything that consults the K-Means model lives here: the PUT path's
nearest-first cluster orders (Algorithm 2, line 1 + the §V-C fallback
walk), the DELETE path's re-labeling of freed contents (Algorithm 3,
line 3), and the endurance-UPDATE path's paired delete/put predictions.
Each function returns a small steering record consumed by the commit
stage; prediction time is measured around the model calls exactly as the
store always has, so per-op ``predict_ns`` accounting is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .pipeline import MutationEngine

__all__ = [
    "PutSteering",
    "DeleteSteering",
    "UpdateSteering",
    "steer_puts",
    "steer_deletes",
    "steer_endurance_updates",
]


@dataclass
class PutSteering:
    """Cluster choices for one steered-PUT chunk."""

    clusters: np.ndarray
    orders: np.ndarray | None
    predict_ns: float


@dataclass
class DeleteSteering:
    """Re-labels (cluster per freed address, clamped by commit)."""

    clusters: np.ndarray
    predict_ns: float


@dataclass
class UpdateSteering:
    """Paired steering of one endurance-update chunk: the delete half's
    releases and the put half's cluster orders."""

    releases: list[tuple[int, int]]
    put_clusters: np.ndarray
    orders: np.ndarray | None
    predict_ns: float


def steer_puts(
    engine: "MutationEngine", payloads: np.ndarray
) -> PutSteering:
    """Predict every pair's cluster order in one vectorized model call."""
    manager = engine.store.manager
    m = payloads.shape[0]
    predict_before = manager.predict_ns_total
    if manager.is_trained:
        orders = manager.fallback_order_many(payloads)
        clusters = np.ascontiguousarray(orders[:, 0], dtype=np.int64)
    else:
        orders = None
        clusters = np.zeros(m, dtype=np.int64)
    predict_ns = float(manager.predict_ns_total - predict_before) / m
    return PutSteering(clusters, orders, predict_ns)


def steer_deletes(
    engine: "MutationEngine", addresses: np.ndarray
) -> DeleteSteering:
    """Re-label freed buckets by the data they still hold (Algorithm 3).

    Deletes never change bucket contents, so one batched prediction over
    the gathered rows matches per-key prediction exactly.
    """
    store = engine.store
    m = int(addresses.size)
    predict_before = store.manager.predict_ns_total
    if store.manager.is_trained:
        clusters = store.manager.predict_many(store.nvm.peek_many(addresses))
    else:
        clusters = np.zeros(m, dtype=np.int64)
    predict_ns = float(store.manager.predict_ns_total - predict_before) / m
    return DeleteSteering(clusters, predict_ns)


def steer_endurance_updates(
    engine: "MutationEngine", keys: list[bytes], payloads: np.ndarray
) -> UpdateSteering:
    """Steer both halves of an endurance-update chunk up front.

    The old contents are re-labeled and the new payloads' cluster orders
    predicted in two vectorized calls — valid for the whole chunk
    because the model cannot retrain before the chunk's last operation.
    The gather of soon-to-be-freed contents is unaccounted (``peek``);
    the accounted index/NVM traffic happens per-op in the commit stage's
    replay, exactly as in sequential updates.
    """
    store = engine.store
    m = len(keys)
    old_addresses = np.array(
        [store.index.peek(key) for key in keys], dtype=np.int64
    )
    predict_before = store.manager.predict_ns_total
    if store.manager.is_trained:
        delete_clusters = store.manager.predict_many(
            store.nvm.peek_many(old_addresses)
        )
        orders = store.manager.fallback_order_many(payloads)
        put_clusters = np.ascontiguousarray(orders[:, 0], dtype=np.int64)
    else:
        delete_clusters = np.zeros(m, dtype=np.int64)
        orders = None
        put_clusters = np.zeros(m, dtype=np.int64)
    predict_ns = (
        float(store.manager.predict_ns_total - predict_before) / (2 * m)
    )

    releases: list[tuple[int, int]] = []
    for i in range(m):
        cluster = int(delete_clusters[i])
        if cluster >= store.pool.n_clusters:
            cluster = 0
        releases.append((int(old_addresses[i]), cluster))
    return UpdateSteering(releases, put_clusters, orders, predict_ns)

"""Plan stage: encode, validate, dedupe, and carve batches into chunks.

The plan stage owns everything that happens *before* the model is
consulted: key normalization, value validation, payload encoding, the
insert-only uniqueness pre-check (shared verbatim by the single and the
sharded store), and the chunk planners that slice a batch so a retrain
check can only fire where the sequential loop would run it.

Planners are generators consumed lazily by the pipeline driver: a chunk's
cap depends on the store's live mutation counter, so the next chunk must
not be planned until the previous one has committed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

import numpy as np

from ..errors import DuplicateKeyError, KeyNotFoundError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import PNWConfig
    from .pipeline import Chunk, MutationEngine

__all__ = [
    "validate_values",
    "encode_pairs",
    "check_unique",
    "plan_puts",
    "plan_updates",
    "plan_deletes",
]


def validate_values(
    config: "PNWConfig", values: list[bytes | np.ndarray]
) -> None:
    """Reject oversized values without materialising anything.

    Batch entry points run this over the *whole* batch before the first
    mutation, so a bad value anywhere — even past a chunk boundary —
    rejects the batch with the store untouched.
    """
    value_bytes = config.value_bytes
    for value in values:
        size = value.nbytes if isinstance(value, np.ndarray) else len(value)
        if size > value_bytes:
            raise ValueError(
                f"value of {size} bytes exceeds bucket size {value_bytes}"
            )


def encode_pairs(
    config: "PNWConfig",
    keys: list[bytes],
    values: list[bytes | np.ndarray],
) -> np.ndarray:
    """Pack normalized keys and their values into an ``(n, bucket_bytes)``
    payload matrix — the single-matrix featurizer input of the batch
    pipeline.  Values are validated up front, so an oversized value
    rejects the batch before anything is written."""
    value_bytes = config.value_bytes
    validate_values(config, values)
    parts: list[bytes] = []
    for key, value in zip(keys, values):
        if isinstance(value, np.ndarray):
            value = value.tobytes()
        parts.append(key)
        parts.append(value.ljust(value_bytes, b"\x00"))
    return (
        np.frombuffer(b"".join(parts), dtype=np.uint8)
        .reshape(len(keys), config.bucket_bytes)
        .copy()
    )


def check_unique(
    keys: Iterable[bytes], exists: Callable[[bytes], bool]
) -> None:
    """Insert-only pre-check: the single implementation behind
    ``put_many(unique=True)`` / ``put_unique`` on *both* store types.

    ``exists`` is the store's own membership test (the single store's
    index, or the sharded store's per-shard routing).  Raises
    :class:`DuplicateKeyError` — with one shared message — if any
    (normalized) key already exists or appears twice in the batch,
    before anything is written.
    """
    seen: set[bytes] = set()
    for key in keys:
        if exists(key) or key in seen:
            raise DuplicateKeyError(f"key {key!r} already exists")
        seen.add(key)


def plan_puts(
    engine: "MutationEngine", items: list[tuple[bytes, bytes | np.ndarray]]
) -> Iterator["Chunk"]:
    """Carve a PUT batch into steered-PUT chunks and inline updates.

    A chunk holds fresh, distinct keys and is capped so the next retrain
    check can only fire at its last operation — after every deferred
    write has landed — which is exactly where the sequential loop would
    retrain.  A pair whose key already exists is routed through the
    update mode as its own single-op chunk, exactly like a sequential
    PUT of an existing key.
    """
    from .pipeline import PutChunk, SingleUpdate

    store = engine.store
    i, n = 0, len(items)
    while i < n:
        key, value = items[i]
        if key in store.index:
            yield SingleUpdate(key, value)
            i += 1
            continue
        cap = (
            n
            if engine.defer_retrain
            else store.config.retrain_check_interval
            - store._mutations_since_check
        )
        chunk_keys, chunk_values, taken = [key], [value], {key}
        i += 1
        pending_update: tuple[bytes, bytes | np.ndarray] | None = None
        while i < n and len(chunk_keys) < cap:
            next_key, next_value = items[i]
            if next_key in taken:
                break
            if next_key in store.index:
                pending_update = (next_key, next_value)
                i += 1
                break
            chunk_keys.append(next_key)
            chunk_values.append(next_value)
            taken.add(next_key)
            i += 1
        yield PutChunk(chunk_keys, chunk_values)
        if pending_update is not None:
            yield SingleUpdate(*pending_update)


def plan_updates(
    engine: "MutationEngine", items: list[tuple[bytes, bytes | np.ndarray]]
) -> Iterator["Chunk"]:
    """Carve an UPDATE batch into chunks of distinct, present keys.

    Chunks end at duplicate keys (a later update of the same key must
    observe the earlier one) and, in endurance mode, at retrain-check
    boundaries.  A missing key raises :class:`KeyNotFoundError` from the
    planner — after the pipeline has executed every chunk planned before
    it, like a sequential loop that dies on that key.
    """
    from .pipeline import UpdateEnduranceChunk, UpdateLatencyChunk

    store = engine.store
    endurance = store.config.update_mode == "endurance"
    chunk_type = UpdateEnduranceChunk if endurance else UpdateLatencyChunk
    i, n = 0, len(items)
    while i < n:
        key, value = items[i]
        if key not in store.index:
            raise KeyNotFoundError(f"key {key!r} not found")
        cap = (
            store.config.retrain_check_interval - store._mutations_since_check
            if endurance and not engine.defer_retrain
            else n
        )
        chunk: list[tuple[bytes, bytes | np.ndarray]] = [(key, value)]
        taken = {key}
        i += 1
        missing_key: bytes | None = None
        while i < n and len(chunk) < cap:
            next_key, next_value = items[i]
            if next_key in taken:
                break
            if next_key not in store.index:
                missing_key = next_key
                i += 1
                break
            chunk.append((next_key, next_value))
            taken.add(next_key)
            i += 1
        yield chunk_type(chunk)
        if missing_key is not None:
            raise KeyNotFoundError(f"key {missing_key!r} not found")


def plan_deletes(
    engine: "MutationEngine", keys: list[bytes]
) -> Iterator["Chunk"]:
    """A DELETE batch is one chunk: unindexing runs per key in order and
    the freed contents are re-labeled in a single vectorized call."""
    from .pipeline import DeleteBatch

    yield DeleteBatch(keys)

"""Principal Component Analysis for the curse-of-dimensionality fix.

Large PNW buckets (4 KB values = 32768 bit features) make k-means training
slow and noisy; the paper projects values with PCA first (§V-A1, Fig. 3).
This module implements:

* exact PCA via the economy SVD,
* randomized PCA (Halko, Martinsson & Tropp 2011) for very wide feature
  matrices, where the exact SVD would dominate the retraining budget,
* component selection either as a fixed count or as a target fraction of
  explained variance (how the paper chose 1000 components covering >80%
  on MNIST).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError

__all__ = ["PCA"]


def _randomized_svd(
    A: np.ndarray,
    rank: int,
    rng: np.random.Generator,
    n_oversamples: int = 10,
    n_power_iter: int = 4,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD of ``A`` via a randomized range finder.

    Power iterations sharpen the spectrum so slowly decaying singular
    values (typical of near-binary data) are still captured accurately.
    """
    n, m = A.shape
    sketch = min(rank + n_oversamples, min(n, m))
    omega = rng.standard_normal((m, sketch))
    Y = A @ omega
    Q, _ = np.linalg.qr(Y)
    for _ in range(n_power_iter):
        Q, _ = np.linalg.qr(A.T @ Q)
        Q, _ = np.linalg.qr(A @ Q)
    B = Q.T @ A
    Ub, S, Vt = np.linalg.svd(B, full_matrices=False)
    U = Q @ Ub
    return U[:, :rank], S[:rank], Vt[:rank]


class PCA:
    """Principal component analysis with exact and randomized solvers.

    Parameters
    ----------
    n_components:
        ``int`` — keep that many components; ``float`` in (0, 1) — keep the
        smallest count whose cumulative explained-variance ratio reaches
        the fraction (requires the exact solver); ``None`` — keep
        ``min(n_samples, n_features)`` components.
    solver:
        ``"auto"`` (randomized when it pays off), ``"exact"``, or
        ``"randomized"``.
    seed:
        Seed for the randomized solver's sketching matrix.
    """

    def __init__(
        self,
        n_components: int | float | None = None,
        *,
        solver: str = "auto",
        seed: int | None = None,
    ) -> None:
        if solver not in ("auto", "exact", "randomized"):
            raise ValueError(f"unknown solver {solver!r}")
        if isinstance(n_components, float) and not 0.0 < n_components < 1.0:
            raise ValueError(
                f"fractional n_components must be in (0, 1), got {n_components}"
            )
        if isinstance(n_components, int) and n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.solver = solver
        self.seed = seed
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.n_components_: int = 0

    # ------------------------------------------------------------------ #

    def _resolve_solver(self, n: int, m: int, rank_request: int) -> str:
        if self.solver != "auto":
            return self.solver
        # Randomized pays off when we keep a small slice of a wide matrix.
        if isinstance(self.n_components, int) and rank_request * 5 < min(n, m) and m > 512:
            return "randomized"
        return "exact"

    def fit(self, X: np.ndarray) -> "PCA":
        """Learn the principal axes of ``X`` (n_samples, n_features)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, m = X.shape
        if n < 2:
            raise ValueError("PCA needs at least 2 samples")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        total_var = float(np.var(X, axis=0, ddof=1).sum())

        max_rank = min(n, m)
        if isinstance(self.n_components, int):
            rank_request = min(self.n_components, max_rank)
        else:
            rank_request = max_rank

        solver = self._resolve_solver(n, m, rank_request)
        if solver == "randomized":
            if isinstance(self.n_components, float):
                raise ValueError(
                    "fractional n_components needs the full spectrum; "
                    "use the exact solver"
                )
            rng = np.random.default_rng(self.seed)
            _, S, Vt = _randomized_svd(centered, rank_request, rng)
        else:
            _, S, Vt = np.linalg.svd(centered, full_matrices=False)
            S, Vt = S[:rank_request], Vt[:rank_request]

        explained = (S**2) / max(n - 1, 1)
        ratio = explained / total_var if total_var > 0 else np.zeros_like(explained)

        if isinstance(self.n_components, float):
            cumulative = np.cumsum(ratio)
            keep = int(np.searchsorted(cumulative, self.n_components) + 1)
            keep = min(keep, rank_request)
        else:
            keep = rank_request

        self.components_ = Vt[:keep]
        self.explained_variance_ = explained[:keep]
        self.explained_variance_ratio_ = ratio[:keep]
        self.n_components_ = keep
        return self

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise NotFittedError("call fit() before using the PCA")

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project ``X`` onto the principal axes."""
        self._require_fitted()
        X = np.atleast_2d(np.ascontiguousarray(X, dtype=np.float64))
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its projection."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map projections back to the original feature space."""
        self._require_fitted()
        Z = np.atleast_2d(np.ascontiguousarray(Z, dtype=np.float64))
        return Z @ self.components_ + self.mean_

    def cumulative_variance_ratio(self) -> np.ndarray:
        """Cumulative explained-variance curve (the y-axis of Fig. 3)."""
        self._require_fitted()
        return np.cumsum(self.explained_variance_ratio_)

"""Multi-process k-means training for the Fig. 11 experiment.

The paper retrains its model "on a single core" versus "on all 4 cores"
(§VI-F) with scikit-learn, whose classic ``n_jobs`` semantics ran the
``n_init`` k-means++ restarts in parallel processes.  We reproduce that
design: each worker runs one complete seeded Lloyd optimisation and the
parent keeps the lowest-SSE run.

The training matrix is published to workers through a module-level global
*before* the pool is forked, so children inherit it via copy-on-write and
tasks only carry a seed.  ``assign_dense`` — the vectorised assignment
step — is shared with the in-process path so serial and parallel fits are
bit-identical for the same seeds.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

__all__ = ["assign_dense", "single_run", "run_restarts", "LloydRun"]

_SHARED: dict | None = None


def assign_dense(
    X: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """One assignment step.

    Returns ``(labels, per_cluster_sums, per_cluster_counts, sse)`` using
    the ``|x|^2 + |c|^2 - 2 x.c`` expansion for the distances.
    """
    x_sq = np.einsum("ij,ij->i", X, X)
    c_sq = np.einsum("ij,ij->i", centers, centers)
    cross = X @ centers.T
    d2 = x_sq[:, None] + c_sq[None, :] - 2.0 * cross
    np.maximum(d2, 0.0, out=d2)
    labels = np.argmin(d2, axis=1)
    sse = float(d2[np.arange(X.shape[0]), labels].sum())
    k = centers.shape[0]
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    sums = np.zeros_like(centers)
    np.add.at(sums, labels, X)
    return labels, sums, counts, sse


class LloydRun:
    """Outcome of one seeded Lloyd optimisation."""

    __slots__ = ("sse", "centers", "labels", "n_iter", "history")

    def __init__(self, sse, centers, labels, n_iter, history) -> None:
        self.sse = sse
        self.centers = centers
        self.labels = labels
        self.n_iter = n_iter
        self.history = history


def _reseed_empty(
    X: np.ndarray,
    centers: np.ndarray,
    labels: np.ndarray,
    empty: np.ndarray,
) -> np.ndarray:
    """Re-seed empty clusters on the points farthest from their centroid."""
    diffs = X - centers[labels]
    d2 = np.einsum("ij,ij->i", diffs, diffs)
    farthest = np.argsort(d2)[::-1][: empty.size]
    return X[farthest]


def single_run(
    X: np.ndarray,
    n_clusters: int,
    max_iter: int,
    scaled_tol: float,
    seed: int,
) -> LloydRun:
    """One k-means++ seeding followed by Lloyd iterations to convergence."""
    from .kmeans import kmeans_plus_plus  # local import breaks the cycle

    rng = np.random.default_rng(seed)
    centers = kmeans_plus_plus(X, n_clusters, rng)
    labels = np.zeros(X.shape[0], dtype=np.int64)
    sse = np.inf
    history: list[float] = []
    iteration = 0
    for iteration in range(1, max_iter + 1):
        labels, sums, counts, sse = assign_dense(X, centers)
        history.append(sse)
        new_centers = centers.copy()
        nonempty = counts > 0
        new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
        empty = np.flatnonzero(~nonempty)
        if empty.size:
            new_centers[empty] = _reseed_empty(X, centers, labels, empty)
        shift = float(((new_centers - centers) ** 2).sum())
        centers = new_centers
        if shift <= scaled_tol:
            break
    # Final assignment keeps labels/SSE consistent with the centroids.
    labels, _, _, sse = assign_dense(X, centers)
    history.append(sse)
    return LloydRun(sse, centers, labels, iteration, history)


def _restart_task(args: tuple[int, int, int, float]) -> LloydRun:
    """Worker task: one restart against the fork-shared matrix."""
    seed, n_clusters, max_iter, scaled_tol = args
    assert _SHARED is not None, "worker forked before the matrix was published"
    return single_run(_SHARED["X"], n_clusters, max_iter, scaled_tol, seed)


def run_restarts(
    X: np.ndarray,
    n_clusters: int,
    max_iter: int,
    scaled_tol: float,
    seeds: list[int],
    n_jobs: int,
) -> list[LloydRun]:
    """Run the ``n_init`` restarts, optionally across a process pool."""
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs == 1 or len(seeds) == 1:
        return [
            single_run(X, n_clusters, max_iter, scaled_tol, seed)
            for seed in seeds
        ]
    global _SHARED
    _SHARED = {"X": np.ascontiguousarray(X, dtype=np.float64)}
    try:
        workers = min(n_jobs, len(seeds))
        tasks = [(seed, n_clusters, max_iter, scaled_tol) for seed in seeds]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_restart_task, tasks))
    finally:
        _SHARED = None

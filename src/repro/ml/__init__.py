"""ML substrate: k-means, PCA, and the elbow method (scikit-learn-free)."""

from .elbow import ElbowResult, choose_k, find_knee, sse_curve
from .kmeans import KMeans, MiniBatchKMeans, kmeans_plus_plus
from .pca import PCA

__all__ = [
    "KMeans",
    "MiniBatchKMeans",
    "kmeans_plus_plus",
    "PCA",
    "ElbowResult",
    "choose_k",
    "find_knee",
    "sse_curve",
]

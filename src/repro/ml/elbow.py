"""The elbow method for choosing K (paper §V-A1, Eq. 1, Fig. 4).

``sse_curve`` evaluates the k-means Sum of Squared Errors over a range of
K values; ``find_knee`` locates the "sharp decrease" the paper eyeballs,
using the Kneedle idea reduced to its geometric core: normalise the curve
to the unit square and take the point with maximum vertical distance from
the chord joining the endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kmeans import KMeans

__all__ = ["ElbowResult", "sse_curve", "find_knee", "choose_k"]


@dataclass(frozen=True)
class ElbowResult:
    """SSE curve plus the selected K."""

    k_values: np.ndarray
    sse: np.ndarray
    best_k: int


def sse_curve(
    X: np.ndarray,
    k_values: list[int] | np.ndarray,
    *,
    seed: int | None = None,
    n_init: int = 2,
    max_iter: int = 50,
) -> np.ndarray:
    """SSE(X, K) — Eq. 1 — for each K in ``k_values``."""
    sses = []
    for k in k_values:
        model = KMeans(int(k), n_init=n_init, max_iter=max_iter, seed=seed)
        model.fit(X)
        sses.append(model.inertia_)
    return np.asarray(sses, dtype=np.float64)


def find_knee(x: np.ndarray, y: np.ndarray) -> int:
    """Index of the knee of a decreasing convex curve.

    Normalises both axes to [0, 1] and returns the index maximising the
    distance below the straight line between the first and last points —
    the "elbow" where adding clusters stops paying.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 3:
        return 0
    xn = (x - x[0]) / (x[-1] - x[0]) if x[-1] != x[0] else np.zeros_like(x)
    span = y[0] - y[-1]
    if span == 0:
        return 0
    yn = (y - y[-1]) / span
    chord = 1.0 - xn  # the normalised line from (0, 1) to (1, 0)
    return int(np.argmax(chord - yn))


def choose_k(
    X: np.ndarray,
    k_values: list[int] | np.ndarray,
    *,
    seed: int | None = None,
    n_init: int = 2,
    max_iter: int = 50,
) -> ElbowResult:
    """Run the elbow method end to end and pick K (Fig. 4's procedure)."""
    k_values = np.asarray(list(k_values), dtype=np.int64)
    if k_values.size == 0:
        raise ValueError("k_values must not be empty")
    sse = sse_curve(X, k_values, seed=seed, n_init=n_init, max_iter=max_iter)
    knee = find_knee(k_values.astype(np.float64), sse)
    return ElbowResult(k_values=k_values, sse=sse, best_k=int(k_values[knee]))

"""K-means clustering (Lloyd's algorithm) and a streaming mini-batch variant.

The paper clusters NVM bucket contents with scikit-learn's k-means; that
library is unavailable offline, so this module reimplements the same
estimator surface on numpy:

* k-means++ seeding (the scikit-learn default),
* Lloyd iterations with vectorised assignment,
* ``n_init`` restarts keeping the lowest-inertia solution,
* empty-cluster repair by reseeding on the farthest points,
* optional multi-process assignment (``n_jobs``) for the Fig. 11
  single-core vs multi-core retraining experiment,
* ``MiniBatchKMeans`` for cheap background refreshes between full retrains
  (used by the ablation benchmarks).

All randomness flows through a caller-supplied seed, so experiments are
exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError
from ._parallel import assign_dense, run_restarts

__all__ = ["KMeans", "MiniBatchKMeans", "kmeans_plus_plus"]


def kmeans_plus_plus(
    X: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding [Arthur & Vassilvitskii, SODA 2007].

    Picks the first centroid uniformly, then each subsequent centroid with
    probability proportional to its squared distance from the nearest
    centroid chosen so far.
    """
    n = X.shape[0]
    centers = np.empty((n_clusters, X.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = X[first]
    closest_d2 = np.einsum("ij,ij->i", X - centers[0], X - centers[0])
    for i in range(1, n_clusters):
        total = closest_d2.sum()
        if total <= 0.0:
            # All remaining points coincide with chosen centroids; fall back
            # to uniform choices so we still return n_clusters rows.
            idx = int(rng.integers(n))
        else:
            idx = int(rng.choice(n, p=closest_d2 / total))
        centers[i] = X[idx]
        diff = X - centers[i]
        np.minimum(closest_d2, np.einsum("ij,ij->i", diff, diff), out=closest_d2)
    return centers


class KMeans:
    """Lloyd's k-means with the estimator API the paper's code relied on.

    Parameters
    ----------
    n_clusters:
        Number of clusters K.
    n_init:
        Independent k-means++ restarts; the best (lowest-inertia) run wins.
    max_iter, tol:
        Lloyd iteration limit and centroid-shift convergence threshold
        (squared L2, relative to the data scale like scikit-learn's).
    seed:
        Seed for all randomness.
    n_jobs:
        Worker processes running the ``n_init`` restarts concurrently
        (classic scikit-learn semantics, the mode the paper's Fig. 11
        compares against a single core); 1 means sequential.  Results are
        bit-identical across ``n_jobs`` settings for a given seed.

    Attributes (after ``fit``)
    --------------------------
    ``cluster_centers_``, ``labels_``, ``inertia_``, ``n_iter_``, and
    ``inertia_history_`` (SSE after each Lloyd iteration of the best run).
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 3,
        max_iter: int = 100,
        tol: float = 1e-4,
        seed: int | None = None,
        n_jobs: int = 1,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.n_jobs = n_jobs
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf
        self.n_iter_: int = 0
        self.inertia_history_: list[float] = []

    # ------------------------------------------------------------------ #

    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster ``X`` (n_samples, n_features)."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n = X.shape[0]
        if n < self.n_clusters:
            raise ValueError(
                f"n_samples={n} < n_clusters={self.n_clusters}; "
                "cannot place more centroids than points"
            )
        rng = np.random.default_rng(self.seed)
        # Match scikit-learn: tol is relative to the mean feature variance.
        scaled_tol = self.tol * float(np.mean(np.var(X, axis=0)))

        # One independent seed per restart, drawn up front so serial and
        # parallel execution see the same seed list (determinism).
        run_seeds = [int(s) for s in rng.integers(0, 2**63, size=self.n_init)]
        runs = run_restarts(
            X, self.n_clusters, self.max_iter, scaled_tol, run_seeds,
            self.n_jobs,
        )
        best = min(runs, key=lambda run: run.sse)
        self.inertia_ = best.sse
        self.cluster_centers_ = best.centers
        self.labels_ = best.labels
        self.n_iter_ = best.n_iter
        self.inertia_history_ = best.history
        return self

    # ------------------------------------------------------------------ #

    def _require_fitted(self) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("call fit() before using the model")
        return self.cluster_centers_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Index of the closest centroid for each row of ``X``."""
        centers = self._require_fitted()
        X = np.atleast_2d(np.ascontiguousarray(X, dtype=np.float64))
        labels, _, _, _ = assign_dense(X, centers)
        return labels

    def centroid_distances(self, X: np.ndarray) -> np.ndarray:
        """Squared L2 distance of each row of ``X`` to every centroid.

        Returns an ``(n_samples, n_clusters)`` matrix.  This is the shared
        kernel of the single-item and batched prediction paths, so both
        produce bit-identical distances for the same row.
        """
        centers = self._require_fitted()
        X = np.atleast_2d(np.ascontiguousarray(X, dtype=np.float64))
        diff = X[:, None, :] - centers[None, :, :]
        return np.einsum("ijk,ijk->ij", diff, diff)

    def predict_one(self, x: np.ndarray) -> int:
        """Fast path for a single sample (the store's PUT hot path)."""
        x = np.asarray(x, dtype=np.float64)
        return int(np.argmin(self.centroid_distances(x[None, :])[0]))

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(X).labels_  # type: ignore[return-value]

    def score(self, X: np.ndarray) -> float:
        """Negative SSE of ``X`` against the fitted centroids."""
        centers = self._require_fitted()
        X = np.ascontiguousarray(X, dtype=np.float64)
        _, _, _, sse = assign_dense(X, centers)
        return -sse

    def centroid_order_by_distance(self, x: np.ndarray) -> np.ndarray:
        """Cluster indices sorted from nearest to farthest centroid of ``x``.

        Used by the dynamic address pool's fallback when the nearest
        cluster has no free address left (paper §V-C).
        """
        x = np.asarray(x, dtype=np.float64)
        return self.centroid_order_by_distance_many(x[None, :])[0]

    def centroid_order_by_distance_many(self, X: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`centroid_order_by_distance` for a batch.

        One ``(n_samples, n_clusters)`` distance computation serves every
        row, which is what lets the batch PUT pipeline amortise the model
        cost over the whole batch.  ``result[i, 0]`` is row ``i``'s
        predicted cluster.
        """
        return np.argsort(self.centroid_distances(X), axis=1, kind="stable")


class MiniBatchKMeans:
    """Streaming k-means with per-centroid learning rates [Sculley 2010].

    Used by the model-refresh ablation: instead of a full Lloyd retrain,
    the model is nudged with mini-batches of recently written values.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        batch_size: int = 256,
        max_iter: int = 50,
        seed: int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._rng = np.random.default_rng(seed)

    def warm_start(
        self, centers: np.ndarray, counts: np.ndarray | None = None
    ) -> "MiniBatchKMeans":
        """Seed the centroids from an already-fitted model.

        The store's incremental refresh path starts mini-batch updates
        from the *current* K-Means centroids instead of a fresh
        k-means++ draw, so a refresh nudges the model toward the zone's
        new distribution rather than re-deriving it.  ``counts`` sets
        the per-centroid sample counts that damp the learning rate
        (``eta = 1 / count``); the default of one pre-seen sample per
        centroid lets the first assignments move centroids strongly
        while keeping ``eta`` finite.
        """
        centers = np.atleast_2d(np.ascontiguousarray(centers, dtype=np.float64))
        if centers.shape[0] != self.n_clusters:
            raise ValueError(
                f"{centers.shape[0]} warm-start centers for "
                f"n_clusters={self.n_clusters}"
            )
        if counts is None:
            counts = np.ones(self.n_clusters, dtype=np.float64)
        else:
            counts = np.ascontiguousarray(counts, dtype=np.float64)
            if counts.shape != (self.n_clusters,):
                raise ValueError(
                    f"counts shape {counts.shape} does not match "
                    f"({self.n_clusters},)"
                )
        self.cluster_centers_ = centers.copy()
        self._counts = counts.copy()
        return self

    def partial_fit(self, X: np.ndarray) -> "MiniBatchKMeans":
        """Update centroids with one batch of samples."""
        X = np.atleast_2d(np.ascontiguousarray(X, dtype=np.float64))
        if self.cluster_centers_ is None:
            if X.shape[0] < self.n_clusters:
                raise ValueError(
                    f"first batch must contain at least n_clusters="
                    f"{self.n_clusters} samples, got {X.shape[0]}"
                )
            self.cluster_centers_ = kmeans_plus_plus(X, self.n_clusters, self._rng)
            self._counts = np.zeros(self.n_clusters, dtype=np.float64)
        labels, _, _, _ = assign_dense(X, self.cluster_centers_)
        for x, label in zip(X, labels):
            self._counts[label] += 1.0
            eta = 1.0 / self._counts[label]
            self.cluster_centers_[label] += eta * (x - self.cluster_centers_[label])
        return self

    def fit(self, X: np.ndarray) -> "MiniBatchKMeans":
        """Run ``max_iter`` random mini-batches over ``X``."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.shape[0] < self.n_clusters:
            raise ValueError(
                f"n_samples={X.shape[0]} < n_clusters={self.n_clusters}"
            )
        for _ in range(self.max_iter):
            take = min(self.batch_size, X.shape[0])
            idx = self._rng.choice(X.shape[0], size=take, replace=False)
            self.partial_fit(X[idx])
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Index of the closest centroid for each row of ``X``."""
        if self.cluster_centers_ is None:
            raise NotFittedError("call fit()/partial_fit() before predict()")
        X = np.atleast_2d(np.ascontiguousarray(X, dtype=np.float64))
        labels, _, _, _ = assign_dense(X, self.cluster_centers_)
        return labels

"""Common interface for the Fig. 9 baseline K/V stores.

Figure 9 compares PNW's written cache lines per request against three
persistent K/V designs: FPTree, NoveLSM, and path hashing.  Each baseline
here owns its simulated NVM device(s); ``lines_per_request`` divides the
accumulated line writes (data + structure + log + compaction) by the
number of mutating requests served — the exact y-axis of the figure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["BaselineKVStore"]


class BaselineKVStore(ABC):
    """A persistent K/V store measured in NVM cache lines per request."""

    name: str = "abstract"

    def __init__(self, key_bytes: int, value_bytes: int) -> None:
        if key_bytes <= 0 or value_bytes <= 0:
            raise ValueError("key_bytes and value_bytes must be positive")
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self.mutations = 0

    # -- operations ----------------------------------------------------- #

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update a pair."""

    @abstractmethod
    def get(self, key: bytes) -> bytes:
        """Look up a value; raise ``KeyNotFoundError`` when absent."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove a pair; raise ``KeyNotFoundError`` when absent."""

    # -- accounting ------------------------------------------------------ #

    @property
    @abstractmethod
    def total_nvm_lines(self) -> int:
        """Cache lines written to NVM since construction."""

    @property
    def lines_per_request(self) -> float:
        """Mean written cache lines per mutating request (Fig. 9)."""
        if self.mutations == 0:
            return 0.0
        return self.total_nvm_lines / self.mutations

    # -- helpers ---------------------------------------------------------- #

    def _normalize_key(self, key: bytes) -> bytes:
        if len(key) > self.key_bytes:
            raise ValueError(f"key of {len(key)} bytes exceeds {self.key_bytes}")
        return key.ljust(self.key_bytes, b"\x00")

    def _normalize_value(self, value: bytes) -> bytes:
        if len(value) > self.value_bytes:
            raise ValueError(f"value of {len(value)} bytes exceeds {self.value_bytes}")
        return value.ljust(self.value_bytes, b"\x00")

    @staticmethod
    def _to_array(data: bytes) -> np.ndarray:
        return np.frombuffer(data, dtype=np.uint8)

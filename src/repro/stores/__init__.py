"""Baseline persistent K/V stores compared against PNW in Figure 9."""

from .base import BaselineKVStore
from .fptree import FPTreeStore
from .novelsm import NoveLSMStore
from .pathhash_store import PathHashKVStore

__all__ = ["BaselineKVStore", "FPTreeStore", "NoveLSMStore", "PathHashKVStore"]

"""NoveLSM [Kannan et al., USENIX ATC 2018] — simplified persistent LSM.

The Fig. 9 baseline.  NoveLSM is an LSM K/V store redesigned for NVM; our
reproduction keeps the parts that generate its NVM write traffic:

* every mutation appends a record to a persistent write-ahead region
  (NoveLSM's persistent NVM memtable plays this role — mutations become
  durable immediately without a separate log),
* when the active memtable fills, it is flushed as a sorted immutable run,
* when too many L0 runs accumulate, they are compacted (rewritten) into a
  single sorted L1 run.

The flush + compaction rewrites are why an LSM pays several cache lines
per request in Figure 9 even though each individual append is small.
Simplifications: a single compaction level and DRAM-side run catalogs
(search metadata only; the K/V bytes all live on the simulated NVM).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import CapacityError, KeyNotFoundError
from ..nvm.device import SimulatedNVM
from .base import BaselineKVStore

__all__ = ["NoveLSMStore"]

_FLAG_LIVE = 0
_FLAG_TOMBSTONE = 1


class _Run:
    """An immutable sorted run: bucket ids + their sorted keys."""

    __slots__ = ("keys", "buckets")

    def __init__(self, keys: list[bytes], buckets: list[int]) -> None:
        self.keys = keys
        self.buckets = buckets


class NoveLSMStore(BaselineKVStore):
    """Persistent LSM with NVM memtable appends, flushes, and compaction.

    Parameters
    ----------
    capacity:
        Maximum live pairs.
    memtable_entries:
        Mutations buffered before a flush.
    l0_runs_limit:
        L0 runs that trigger a compaction into L1.
    """

    name = "NoveLSM"

    def __init__(
        self,
        key_bytes: int,
        value_bytes: int,
        capacity: int,
        *,
        memtable_entries: int = 64,
        l0_runs_limit: int = 4,
    ) -> None:
        super().__init__(key_bytes, value_bytes)
        self.memtable_entries = memtable_entries
        self.l0_runs_limit = l0_runs_limit
        # Record layout: [tombstone flag | key | value], word padded.
        record_bytes = 1 + key_bytes + value_bytes
        self._record_bytes = -(-record_bytes // 4) * 4
        # Arena sizing: live data + one memtable + L0 staging + a full
        # compaction target, with headroom for transient double-buffering.
        arena = capacity * 3 + memtable_entries * (l0_runs_limit + 2) * 2 + 64
        self.nvm = SimulatedNVM(arena, self._record_bytes)
        self._free: deque[int] = deque(range(arena))
        # key -> (value or None for a tombstone, memtable record bucket)
        self._memtable: dict[bytes, tuple[bytes | None, int]] = {}
        self._l0: list[_Run] = []
        self._l1: _Run | None = None

    # ------------------------------------------------------------------ #
    # arena                                                               #
    # ------------------------------------------------------------------ #

    def _alloc(self) -> int:
        if not self._free:
            raise CapacityError("NoveLSM arena exhausted; raise capacity")
        return self._free.popleft()

    def _write_record(self, bucket: int, key: bytes, value: bytes | None) -> None:
        """Persist one record; ``value=None`` writes a tombstone."""
        payload = np.zeros(self._record_bytes, dtype=np.uint8)
        payload[0] = _FLAG_TOMBSTONE if value is None else _FLAG_LIVE
        payload[1 : 1 + self.key_bytes] = self._to_array(key)
        if value is not None:
            start = 1 + self.key_bytes
            payload[start : start + len(value)] = self._to_array(value)
        self.nvm.write(bucket, payload)

    def _read_record(self, bucket: int) -> tuple[bytes, bytes | None]:
        raw = self.nvm.read(bucket)
        key = raw[1 : 1 + self.key_bytes].tobytes()
        if raw[0] == _FLAG_TOMBSTONE:
            return key, None
        start = 1 + self.key_bytes
        return key, raw[start : start + self.value_bytes].tobytes()

    def _release_run(self, run: _Run) -> None:
        self._free.extend(run.buckets)

    # ------------------------------------------------------------------ #
    # LSM machinery                                                       #
    # ------------------------------------------------------------------ #

    def _append(self, key: bytes, value: bytes | None) -> None:
        """Durable memtable append (one record write), then maybe flush."""
        bucket = self._alloc()
        self._write_record(bucket, key, value)
        previous = self._memtable.get(key)
        if previous is not None:
            self._free.append(previous[1])
        self._memtable[key] = (value, bucket)
        if len(self._memtable) >= self.memtable_entries:
            self._flush()

    def _flush(self) -> None:
        """Freeze the memtable into a sorted immutable L0 run.

        The persistent-memtable records are rewritten in sorted order (the
        LSM's defining write amplification step).
        """
        if not self._memtable:
            return
        keys = sorted(self._memtable)
        buckets: list[int] = []
        for key in keys:
            value, old_bucket = self._memtable[key]
            bucket = self._alloc()
            self._write_record(bucket, key, value)
            buckets.append(bucket)
            self._free.append(old_bucket)
        self._memtable.clear()
        self._l0.append(_Run(keys, buckets))
        if len(self._l0) > self.l0_runs_limit:
            self._compact()

    def _compact(self) -> None:
        """Merge every L0 run plus L1 into one fresh sorted L1 run.

        Tombstones are dropped here: L1 is the bottom level, so a deleted
        key can simply vanish from the merged output.
        """
        merged: dict[bytes, bytes | None] = {}
        if self._l1 is not None:
            for bucket in self._l1.buckets:
                key, value = self._read_record(bucket)
                merged[key] = value
        for run in self._l0:  # oldest first; newer runs overwrite
            for bucket in run.buckets:
                key, value = self._read_record(bucket)
                merged[key] = value
        old_runs = list(self._l0) + ([self._l1] if self._l1 is not None else [])
        keys = sorted(k for k, v in merged.items() if v is not None)
        buckets = []
        for key in keys:
            bucket = self._alloc()
            self._write_record(bucket, key, merged[key])
            buckets.append(bucket)
        self._l0 = []
        self._l1 = _Run(keys, buckets)
        for run in old_runs:
            self._release_run(run)

    @staticmethod
    def _search_run(run: _Run, key: bytes) -> int | None:
        import bisect

        idx = bisect.bisect_left(run.keys, key)
        if idx < len(run.keys) and run.keys[idx] == key:
            return run.buckets[idx]
        return None

    # ------------------------------------------------------------------ #
    # operations                                                          #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes) -> None:
        key = self._normalize_key(key)
        value = self._normalize_value(value)
        self.mutations += 1
        self._append(key, value)

    def get(self, key: bytes) -> bytes:
        key = self._normalize_key(key)
        # Newest wins: the first hit (memtable, then L0 newest-first, then
        # L1) decides, including tombstones.
        if key in self._memtable:
            value = self._memtable[key][0]
        else:
            value = None
            found = False
            for run in reversed(self._l0):
                bucket = self._search_run(run, key)
                if bucket is not None:
                    value = self._read_record(bucket)[1]
                    found = True
                    break
            if not found and self._l1 is not None:
                bucket = self._search_run(self._l1, key)
                if bucket is not None:
                    value = self._read_record(bucket)[1]
        if value is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        return value

    def delete(self, key: bytes) -> None:
        key = self._normalize_key(key)
        self.get(key)  # raises KeyNotFoundError when absent
        self.mutations += 1
        self._append(key, None)

    @property
    def total_nvm_lines(self) -> int:
        return self.nvm.stats.total_lines_touched

"""FPTree [Oukid et al., SIGMOD 2016] — simplified hybrid SCM-DRAM B+-tree.

The Fig. 9 baseline.  FPTree keeps inner nodes in DRAM (rebuilt on
recovery) and leaf nodes in SCM.  A leaf holds a slot array of K/V pairs,
a validity bitmap, and one-byte key *fingerprints* that accelerate
lookups.  Persistence-critical writes — the appended pair, the
fingerprint, the bitmap word, and the entry copies of a leaf split — all
hit NVM, which is why its cache lines per request sit at the top of
Figure 9.

Simplifications relative to the original (documented in DESIGN.md):
inner nodes are a plain sorted list (their writes are DRAM-side and free
either way), and concurrency (HTM) is out of scope.  The NVM write
pattern per request — slot + metadata, plus periodic split copies — is
the behaviour the figure measures, and that is reproduced faithfully.
"""

from __future__ import annotations

import bisect

import numpy as np

from ..errors import CapacityError, KeyNotFoundError
from ..nvm.device import SimulatedNVM
from .base import BaselineKVStore

__all__ = ["FPTreeStore"]


class _Leaf:
    """DRAM-side mirror of one NVM leaf (slots live on the device)."""

    __slots__ = ("base_bucket", "keys", "slot_of", "free_slots")

    def __init__(self, base_bucket: int, fanout: int) -> None:
        self.base_bucket = base_bucket
        self.keys: list[bytes] = []          # sorted live keys
        self.slot_of: dict[bytes, int] = {}  # key -> slot id
        self.free_slots = list(range(fanout - 1, -1, -1))


class FPTreeStore(BaselineKVStore):
    """Hybrid B+-tree with NVM leaves, fingerprints, and bitmap commits.

    Parameters
    ----------
    capacity:
        Maximum live pairs the tree must hold.
    leaf_fanout:
        Slots per leaf (the original uses large multi-line leaves).
    """

    name = "FPTree"

    def __init__(
        self,
        key_bytes: int,
        value_bytes: int,
        capacity: int,
        *,
        leaf_fanout: int = 32,
    ) -> None:
        super().__init__(key_bytes, value_bytes)
        if leaf_fanout < 4:
            raise ValueError(f"leaf_fanout must be >= 4, got {leaf_fanout}")
        self.leaf_fanout = leaf_fanout
        # Slot bucket holds one K/V pair; header bucket holds the bitmap +
        # fingerprint array + next pointer of the leaf.
        pair_bytes = key_bytes + value_bytes
        self._slot_bytes = -(-pair_bytes // 4) * 4
        header_bytes = -(-(leaf_fanout + leaf_fanout // 8 + 8) // 4) * 4
        self._header_bytes = max(self._slot_bytes, header_bytes)
        # Splits halve leaves, so worst-case leaf count is ~2x the minimum.
        max_leaves = max(4, int(np.ceil(capacity / (leaf_fanout // 2))) + 4)
        buckets_per_leaf = leaf_fanout + 1
        self.nvm = SimulatedNVM(max_leaves * buckets_per_leaf, self._header_bytes)
        self._buckets_per_leaf = buckets_per_leaf
        self._free_leaf_bases = list(
            range((max_leaves - 1) * buckets_per_leaf, -1, -buckets_per_leaf)
        )
        self._leaves: list[_Leaf] = [self._alloc_leaf()]
        self._count = 0

    # ------------------------------------------------------------------ #

    def _alloc_leaf(self) -> _Leaf:
        if not self._free_leaf_bases:
            raise CapacityError("FPTree leaf arena exhausted; raise capacity")
        return _Leaf(self._free_leaf_bases.pop(), self.leaf_fanout)

    def _leaf_for(self, key: bytes) -> int:
        """Index of the leaf whose key range covers ``key`` (the DRAM
        inner-node traversal)."""
        lows = [leaf.keys[0] if leaf.keys else b"" for leaf in self._leaves]
        idx = bisect.bisect_right(lows, key) - 1
        return max(idx, 0)

    def _write_slot(self, leaf: _Leaf, slot: int, key: bytes, value: bytes) -> None:
        payload = np.zeros(self._header_bytes, dtype=np.uint8)
        payload[: self.key_bytes] = self._to_array(key)
        payload[self.key_bytes : self.key_bytes + self.value_bytes] = self._to_array(
            value
        )
        self.nvm.write(leaf.base_bucket + 1 + slot, payload)

    def _write_header(self, leaf: _Leaf) -> None:
        """Persist bitmap + fingerprints (the commit point of an insert)."""
        header = np.zeros(self._header_bytes, dtype=np.uint8)
        for key, slot in leaf.slot_of.items():
            header[slot] = (key[0] ^ key[-1]) & 0xFF  # 1-byte fingerprint
            header[self.leaf_fanout + slot // 8] |= 1 << (slot % 8)
        self.nvm.write(leaf.base_bucket, header)

    def _read_slot_value(self, leaf: _Leaf, slot: int) -> bytes:
        bucket = self.nvm.read(leaf.base_bucket + 1 + slot)
        return bucket[self.key_bytes : self.key_bytes + self.value_bytes].tobytes()

    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes) -> None:
        key = self._normalize_key(key)
        value = self._normalize_value(value)
        self.mutations += 1
        leaf = self._leaves[self._leaf_for(key)]

        existing = leaf.slot_of.get(key)
        if existing is not None:
            self._write_slot(leaf, existing, key, value)
            return

        if not leaf.free_slots:
            leaf = self._split(leaf, key)
        slot = leaf.free_slots.pop()
        self._write_slot(leaf, slot, key, value)
        leaf.slot_of[key] = slot
        bisect.insort(leaf.keys, key)
        self._write_header(leaf)
        self._count += 1

    def _split(self, leaf: _Leaf, key: bytes) -> _Leaf:
        """Split a full leaf; the upper half is *copied* to a new NVM leaf.

        Returns the leaf that should receive ``key``.
        """
        new_leaf = self._alloc_leaf()
        mid = len(leaf.keys) // 2
        moved = leaf.keys[mid:]
        for moved_key in moved:
            old_slot = leaf.slot_of.pop(moved_key)
            value = self._read_slot_value(leaf, old_slot)
            new_slot = new_leaf.free_slots.pop()
            self._write_slot(new_leaf, new_slot, moved_key, value)
            new_leaf.slot_of[moved_key] = new_slot
            new_leaf.keys.append(moved_key)
            leaf.free_slots.append(old_slot)
        leaf.keys = leaf.keys[:mid]
        self._write_header(leaf)
        self._write_header(new_leaf)
        position = self._leaves.index(leaf)
        self._leaves.insert(position + 1, new_leaf)
        return new_leaf if key >= new_leaf.keys[0] else leaf

    def get(self, key: bytes) -> bytes:
        key = self._normalize_key(key)
        leaf = self._leaves[self._leaf_for(key)]
        slot = leaf.slot_of.get(key)
        if slot is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        return self._read_slot_value(leaf, slot)

    def delete(self, key: bytes) -> None:
        key = self._normalize_key(key)
        self.mutations += 1
        leaf = self._leaves[self._leaf_for(key)]
        slot = leaf.slot_of.pop(key, None)
        if slot is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        leaf.keys.remove(key)
        leaf.free_slots.append(slot)
        self._write_header(leaf)  # bitmap clear is the persistent delete
        self._count -= 1
        if not leaf.keys and len(self._leaves) > 1:
            self._leaves.remove(leaf)
            self._free_leaf_bases.append(leaf.base_bucket)

    def __len__(self) -> int:
        return self._count

    @property
    def total_nvm_lines(self) -> int:
        return self.nvm.stats.total_lines_touched

"""Path-hashing K/V store [Zuo & Hua, TPDS 2018] — the third Fig. 9 baseline.

Unlike the tree/LSM baselines, path hashing writes each pair exactly once
into a hash slot and never rehashes, so its cache lines per request are
low — but it is not *memory-aware*: a pair lands wherever its hash paths
have room, regardless of what bits the slot currently holds.  That gap
(placement by hash vs placement by content) is precisely what separates
it from PNW in Figure 9.

The structure is the inverted-binary-tree layout of
:class:`~repro.index.path_hashing.PathHashingIndex`, with full values
stored inline in the slots.
"""

from __future__ import annotations

import numpy as np

from ..errors import CapacityError, KeyNotFoundError
from ..index.base import stable_hash64
from ..nvm.device import SimulatedNVM
from .base import BaselineKVStore

__all__ = ["PathHashKVStore"]

_FLAG_EMPTY = 0
_FLAG_LIVE = 1


class PathHashKVStore(BaselineKVStore):
    """K/V pairs stored directly in two-path hash slots on NVM."""

    name = "PathHash"

    def __init__(
        self,
        key_bytes: int,
        value_bytes: int,
        capacity: int,
        *,
        reserved_levels: int = 4,
    ) -> None:
        super().__init__(key_bytes, value_bytes)
        exponent = max(3, int(np.ceil(np.log2(max(capacity, 2)))) + 1)
        self.levels_exponent = exponent
        self.reserved_levels = min(reserved_levels, exponent + 1)
        self._level_sizes = [
            2 ** (exponent - d) for d in range(self.reserved_levels)
        ]
        self._level_offsets = np.concatenate([[0], np.cumsum(self._level_sizes[:-1])])
        total_slots = int(np.sum(self._level_sizes))
        slot_bytes = -(-(1 + key_bytes + value_bytes) // 4) * 4
        self.nvm = SimulatedNVM(total_slots, slot_bytes)
        self._slot_bytes = slot_bytes
        self._count = 0

    # ------------------------------------------------------------------ #

    def _paths(self, key: bytes) -> list[list[int]]:
        top = self._level_sizes[0]
        p1 = stable_hash64(key, seed=1) % top
        p2 = stable_hash64(key, seed=2) % top
        paths: list[list[int]] = [[], []]
        for level in range(self.reserved_levels):
            paths[0].append(int(self._level_offsets[level]) + (p1 >> level))
            paths[1].append(int(self._level_offsets[level]) + (p2 >> level))
        return paths

    def _encode(self, key: bytes, value: bytes) -> np.ndarray:
        slot = np.zeros(self._slot_bytes, dtype=np.uint8)
        slot[0] = _FLAG_LIVE
        slot[1 : 1 + self.key_bytes] = self._to_array(key)
        slot[1 + self.key_bytes : 1 + self.key_bytes + self.value_bytes] = (
            self._to_array(value)
        )
        return slot

    def _locate(self, key: bytes) -> int | None:
        for path in self._paths(key):
            for slot_id in path:
                slot = self.nvm.read(slot_id)
                if slot[0] == _FLAG_LIVE and (
                    slot[1 : 1 + self.key_bytes].tobytes() == key
                ):
                    return slot_id
        return None

    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes) -> None:
        key = self._normalize_key(key)
        value = self._normalize_value(value)
        self.mutations += 1
        existing = self._locate(key)
        if existing is not None:
            self.nvm.write(existing, self._encode(key, value))
            return
        paths = self._paths(key)
        for level in range(self.reserved_levels):
            for path in paths:
                slot_id = path[level]
                if self.nvm.read(slot_id)[0] == _FLAG_EMPTY:
                    self.nvm.write(slot_id, self._encode(key, value))
                    self._count += 1
                    return
        raise CapacityError(f"both paths of key {key!r} are full")

    def get(self, key: bytes) -> bytes:
        key = self._normalize_key(key)
        slot_id = self._locate(key)
        if slot_id is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        slot = self.nvm.read(slot_id)
        return slot[1 + self.key_bytes : 1 + self.key_bytes + self.value_bytes].tobytes()

    def delete(self, key: bytes) -> None:
        key = self._normalize_key(key)
        self.mutations += 1
        slot_id = self._locate(key)
        if slot_id is None:
            raise KeyNotFoundError(f"key {key!r} not found")
        slot = self.nvm.read(slot_id)
        slot[0] = _FLAG_EMPTY  # one-bit delete, as in the index variant
        self.nvm.write(slot_id, slot)
        self._count -= 1

    def __len__(self) -> int:
        return self._count

    @property
    def total_nvm_lines(self) -> int:
        return self.nvm.stats.total_lines_touched

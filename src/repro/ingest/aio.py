"""``asyncio``-native facade over :class:`~repro.ingest.IngestQueue`.

:class:`AsyncIngestQueue` lets event-loop code (an HTTP front end, a
gateway, a CDC consumer) drive the store with plain ``await``s while the
futures-based core keeps coalescing ops into per-shard batches on its
own flusher thread:

* ``await queue.put/update/delete(...)`` resolves to the op's
  :class:`~repro.core.reports.OperationReport` (or raises the op's
  error — :class:`~repro.errors.KeyNotFoundError`,
  :class:`~repro.errors.QueueFullError`, ...), exactly like calling
  ``.result()`` on the core queue's future.
* The event loop never blocks: submissions that can wait for an
  admission slot (``block`` and ``deadline`` overload policies) run on
  an executor thread; ``shed`` submissions are non-blocking and run
  inline.  Batch execution always happens on the core queue's flusher
  thread, and completion hops back to the loop via
  :func:`asyncio.wrap_future`.
* Cancelling a pending ``await`` abandons the *result*, not the batch:
  an admitted op still executes (admission is the serialization point),
  the core queue simply skips resolving the cancelled future.  Sibling
  ops in the same batch are unaffected.

The facade owns its core queue only if it built it: pass a ``store`` to
let it construct (and on ``close`` tear down) an :class:`IngestQueue`
with the given knobs, or pass an existing ``queue=`` to share one
admission layer between sync producers and the event loop.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.reports import OperationReport
from .queue import IngestQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.store import PNWStore
    from ..shard.store import ShardedPNWStore

__all__ = ["AsyncIngestQueue"]


class AsyncIngestQueue:
    """Awaitable PUT/UPDATE/DELETE/GET over a coalescing ingest queue.

    Parameters
    ----------
    store:
        Build a fresh :class:`IngestQueue` over this store; every extra
        keyword argument (``max_batch``, ``max_delay``, ``max_pending``,
        ``overload``, ...) is forwarded to it.  Mutually exclusive with
        ``queue``.
    queue:
        Adopt an existing core queue instead.  :meth:`close` closes it
        either way (there is one admission layer; closing the facade
        closes the front door).
    """

    def __init__(
        self,
        store: "PNWStore | ShardedPNWStore | None" = None,
        *,
        queue: IngestQueue | None = None,
        **queue_kwargs: Any,
    ) -> None:
        if (store is None) == (queue is None):
            raise ValueError("pass exactly one of store= or queue=")
        if queue is not None and queue_kwargs:
            raise ValueError(
                "queue options belong to the adopted queue; "
                f"got {sorted(queue_kwargs)}"
            )
        self.queue = queue if queue is not None else IngestQueue(
            store, **queue_kwargs
        )
        #: Dedicated threads for submissions that may block waiting for
        #: an admission slot (block/deadline policies).  Keeping those
        #: waits off the loop's default executor means a wall of
        #: backpressured puts can never occupy every default-executor
        #: thread and starve get()/flush()/close(); excess submissions
        #: queue here in FIFO order instead.
        self._submit_pool = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="pnw-aio-submit"
        )

    # ------------------------------------------------------------------ #
    # ops                                                                 #
    # ------------------------------------------------------------------ #

    async def put(
        self, key: bytes, value: bytes | np.ndarray
    ) -> OperationReport:
        """Awaitable PUT; resolves when the op's batch has executed."""
        return await self._bridge(self.queue.put, key, value)

    async def update(
        self, key: bytes, value: bytes | np.ndarray
    ) -> OperationReport:
        """Awaitable UPDATE (missing key raises ``KeyNotFoundError``)."""
        return await self._bridge(self.queue.update, key, value)

    async def delete(self, key: bytes) -> OperationReport:
        """Awaitable DELETE (missing key raises ``KeyNotFoundError``)."""
        return await self._bridge(self.queue.delete, key)

    async def get(self, key: bytes) -> bytes:
        """Awaitable GET, off-loop (reads serialize with dispatch)."""
        return await asyncio.get_running_loop().run_in_executor(
            None, self.queue.get, key
        )

    async def _bridge(self, submit, *args) -> OperationReport:
        """Submit off-loop when admission can block, then await the op."""
        loop = asyncio.get_running_loop()
        if self.queue.overload == "shed":
            # Non-blocking admission: QueueFullError raises right here.
            future: Future = submit(*args)
        else:
            # block/deadline admission may wait for a window slot; keep
            # that wait off the event loop — and off the default
            # executor, which reads and close() need.
            try:
                off_loop = loop.run_in_executor(
                    self._submit_pool, submit, *args
                )
            except RuntimeError:
                # close() already shut the pool down, so the core queue
                # is closed too: submitting inline cannot block — it
                # raises QueueClosedError immediately.
                future = submit(*args)
            else:
                future = await off_loop
        return await asyncio.wrap_future(future, loop=loop)

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    async def flush(self) -> None:
        """Dispatch everything pending and wait for it to execute."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.queue.flush
        )

    async def close(self) -> None:
        """Close the core queue off-loop (drains, resolves every future).

        Outstanding ``await``s finish from the drain — results for
        admitted ops, :class:`~repro.errors.QueueClosedError` for
        anything the drain could not apply.
        """
        await asyncio.get_running_loop().run_in_executor(
            None, self.queue.close
        )
        # Closing the core queue woke every submission blocked on
        # admission (QueueClosedError), so the pool drains promptly;
        # don't block the loop waiting for it.
        self._submit_pool.shutdown(wait=False)

    async def __aenter__(self) -> "AsyncIngestQueue":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def pending_ops(self) -> int:
        """Ops admitted but not yet dispatched."""
        return self.queue.pending_ops

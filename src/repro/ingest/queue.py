"""Async coalescing ingestion queue over the staged write path.

Streaming drivers produce one operation at a time; the store's engine is
fastest when fed whole batches (one featurize, one K-Means call, one
bulk pop, one multi-row commit per chunk).  :class:`IngestQueue` closes
that gap: callers submit single PUT/UPDATE/DELETE ops and immediately
get a :class:`~concurrent.futures.Future`; the queue coalesces pending
ops into per-shard ``put_many`` / ``update_many`` / ``delete_many``
batches under a size/latency-deadline policy and drains them through
the store's existing batch pipelines — the sharded store's thread-pooled
per-shard engines included — resolving each future with its op's
:class:`~repro.core.reports.OperationReport`.

Ordering and equivalence
------------------------

Ops are grouped *per shard* (one logical shard for a plain
``PNWStore``), and each shard's ops keep their submission order: a run
of consecutive same-kind ops becomes one ``*_many`` call, and a kind
change (or the ``max_batch`` cap) cuts the run.  Two ops on different
shards own disjoint key spaces, so cross-shard regrouping cannot
reorder conflicting ops, and per-shard batch boundaries don't change
state at all — the engine's batch pipeline is state-identical to
sequential execution.  Coalesced ingestion is therefore byte-identical
(data zone, index, pool, wear accounting) to hand-batched ``*_many``
calls over the same per-shard op sequences (pinned by
``tests/ingest/``).

Failure semantics follow the batch calls they coalesce into: when a run
dies mid-batch (missing key, pool exhaustion), the committed prefix's
futures resolve normally from the exception's ``committed_reports``,
and the remaining futures of that run receive the exception.  Later
runs — including the same shard's — still execute.

One queue must be driven from one producer thread at a time (like the
store itself); the flusher thread and explicit :meth:`flush` calls are
internally serialized against each other, in submission order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING

import numpy as np

from ..core.reports import OperationReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.store import PNWStore
    from ..shard.store import ShardedPNWStore

__all__ = ["IngestQueue"]


class _Run:
    """One shard's run of consecutive same-kind ops (one ``*_many``)."""

    __slots__ = ("kind", "items", "futures")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.items: list = []
        self.futures: list[Future] = []


class IngestQueue:
    """Coalesce single ops into per-shard batches behind futures.

    Parameters
    ----------
    store:
        A :class:`~repro.core.store.PNWStore` or
        :class:`~repro.shard.ShardedPNWStore`.  The queue becomes the
        store's single driving thread; don't mutate the store directly
        while the queue is open.
    max_batch:
        Flush a shard as soon as it has this many pending ops; also the
        cap on one coalesced ``*_many`` call (the dispatch batch size).
    max_delay:
        Latency deadline in seconds: no accepted op waits longer than
        this for its batch to be dispatched (plus the batch's own
        execution time).
    autostart:
        Start the background flusher thread immediately.  With
        ``False`` nothing is dispatched until :meth:`flush` — handy for
        deterministic tests and crash simulations.
    """

    def __init__(
        self,
        store: "PNWStore | ShardedPNWStore",
        *,
        max_batch: int = 256,
        max_delay: float = 0.005,
        autostart: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay <= 0.0:
            raise ValueError(f"max_delay must be positive, got {max_delay}")
        self.store = store
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._sharded = hasattr(store, "run_shard_batches")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: Per-shard ordered runs of pending ops.
        self._pending: dict[int, list[_Run]] = {}
        self._pending_counts: dict[int, int] = {}
        #: Enqueue time of each shard's oldest pending op.
        self._oldest: dict[int, float] = {}
        self._closed = False
        #: Serializes dispatch (flusher thread vs explicit flush calls)
        #: so batches reach the store in take-order.
        self._drain_lock = threading.Lock()
        self.ops_submitted = 0
        self.batches_dispatched = 0
        self._flusher: threading.Thread | None = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the background flusher (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self._flusher is not None:
                return
            self._flusher = threading.Thread(
                target=self._flush_loop, name="pnw-ingest", daemon=True
            )
            self._flusher.start()

    def close(self) -> None:
        """Flush everything still pending and stop the flusher."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        flusher = self._flusher
        if flusher is not None:
            flusher.join()
            self._flusher = None
        # Anything still pending (no flusher, or enqueued after the
        # flusher's final sweep began).
        with self._drain_lock:
            with self._lock:
                batches = self._take(due_only=False)
            self._dispatch(batches)

    def __enter__(self) -> "IngestQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # producer API                                                        #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> Future:
        """Enqueue a PUT; the future resolves to its OperationReport."""
        return self._submit("put", key, (key, value))

    def update(self, key: bytes, value: bytes | np.ndarray) -> Future:
        """Enqueue an UPDATE; missing keys fail the future with
        :class:`~repro.errors.KeyNotFoundError`."""
        return self._submit("update", key, (key, value))

    def delete(self, key: bytes) -> Future:
        """Enqueue a DELETE; missing keys fail the future with
        :class:`~repro.errors.KeyNotFoundError`."""
        return self._submit("delete", key, key)

    def _shard_of(self, key: bytes) -> int:
        if self._sharded:
            return self.store.shard_of_key(key)
        return 0

    def _submit(self, kind: str, key: bytes, item) -> Future:
        future: Future = Future()
        wake = False
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed IngestQueue")
            shard_id = self._shard_of(key)
            runs = self._pending.setdefault(shard_id, [])
            if (
                not runs
                or runs[-1].kind != kind
                or len(runs[-1].items) >= self.max_batch
            ):
                runs.append(_Run(kind))
            run = runs[-1]
            run.items.append(item)
            run.futures.append(future)
            count = self._pending_counts.get(shard_id, 0) + 1
            self._pending_counts[shard_id] = count
            self._oldest.setdefault(shard_id, time.monotonic())
            self.ops_submitted += 1
            if count >= self.max_batch:
                wake = True
            if wake or count == 1:
                # Size trigger, or a shard just became non-empty (the
                # flusher must learn its deadline).
                self._cond.notify()
        if wake and self._flusher is None:
            # No background flusher: size-triggered batches drain inline
            # so a paused queue still makes progress under load.
            self.flush()
        return future

    def flush(self) -> None:
        """Dispatch everything pending and wait for it to execute.

        Returns once every op submitted before the call has its future
        resolved (the futures of failing runs carry their exception).
        Also waits out any dispatch already in flight.
        """
        with self._drain_lock:
            with self._lock:
                batches = self._take(due_only=False)
            self._dispatch(batches)

    # ------------------------------------------------------------------ #
    # flusher                                                             #
    # ------------------------------------------------------------------ #

    def _take(
        self, *, due_only: bool, now: float | None = None
    ) -> dict[int, list[_Run]]:
        """Detach pending runs (all shards, or only size/deadline-due
        ones).  Caller holds ``_lock``."""
        taken: dict[int, list[_Run]] = {}
        for shard_id in list(self._pending):
            if due_only:
                due = (
                    self._pending_counts[shard_id] >= self.max_batch
                    or (now or time.monotonic()) - self._oldest[shard_id]
                    >= self.max_delay
                )
                if not due:
                    continue
            runs = self._pending.pop(shard_id)
            if runs:
                taken[shard_id] = runs
            self._pending_counts.pop(shard_id, None)
            self._oldest.pop(shard_id, None)
        return taken

    def _next_deadline(self) -> float | None:
        """Earliest pending deadline (monotonic).  Caller holds ``_lock``."""
        if not self._oldest:
            return None
        return min(self._oldest.values()) + self.max_delay

    def _something_due(self, now: float) -> bool:
        """Whether any shard hit its size or deadline trigger.  Caller
        holds ``_lock``."""
        if any(
            count >= self.max_batch
            for count in self._pending_counts.values()
        ):
            return True
        deadline = self._next_deadline()
        return deadline is not None and now >= deadline

    def _flush_loop(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._something_due(
                    time.monotonic()
                ):
                    deadline = self._next_deadline()
                    timeout = (
                        None
                        if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    self._cond.wait(timeout)
                stop = self._closed
            # Take-and-dispatch runs under _drain_lock so concurrent
            # flush() calls and the flusher hand batches to the store
            # strictly in take order.
            with self._drain_lock:
                with self._lock:
                    batches = self._take(
                        due_only=not stop, now=time.monotonic()
                    )
                self._dispatch(batches)
            if stop:
                return

    # ------------------------------------------------------------------ #
    # dispatch                                                            #
    # ------------------------------------------------------------------ #

    def _dispatch(self, batches: dict[int, list[_Run]]) -> None:
        """Drain detached runs through the store's batch pipelines."""
        if not batches:
            return
        if self._sharded:
            results = self.store.run_shard_batches(
                {
                    shard_id: [(run.kind, run.items) for run in runs]
                    for shard_id, runs in batches.items()
                }
            )
            for shard_id, outcomes in results.items():
                for run, (reports, error) in zip(batches[shard_id], outcomes):
                    self._resolve(run, reports, error)
                self.batches_dispatched += len(outcomes)
            return
        ops = {
            "put": self.store.put_many,
            "update": self.store.update_many,
            "delete": self.store.delete_many,
        }
        for run in batches.get(0, []):
            try:
                reports = ops[run.kind](run.items)
            except Exception as exc:  # noqa: BLE001 - routed to futures
                self._resolve(run, None, exc)
            else:
                self._resolve(run, reports, None)
            self.batches_dispatched += 1

    @staticmethod
    def _resolve(
        run: _Run,
        reports: list[OperationReport] | None,
        error: BaseException | None,
    ) -> None:
        """Map one executed run back onto its futures.

        On error, the batch call's ``committed_reports`` (an in-order
        prefix) resolve the ops that did land; every later future of the
        run gets the exception — the ``*_many`` contract the run
        coalesced into.
        """
        if error is None:
            assert reports is not None
            for future, report in zip(run.futures, reports):
                future.set_result(report)
            return
        committed = list(getattr(error, "committed_reports", []))
        for i, future in enumerate(run.futures):
            if i < len(committed):
                future.set_result(committed[i])
            else:
                future.set_exception(error)

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def pending_ops(self) -> int:
        """Ops accepted but not yet dispatched."""
        with self._lock:
            return sum(self._pending_counts.values())

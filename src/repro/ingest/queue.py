"""Multi-producer admission layer over the staged write path.

Streaming drivers produce one operation at a time; the store's engine is
fastest when fed whole batches (one featurize, one K-Means call, one
bulk pop, one multi-row commit per chunk).  :class:`IngestQueue` closes
that gap: callers submit single PUT/UPDATE/DELETE ops and immediately
get a :class:`~concurrent.futures.Future`; the queue coalesces pending
ops into per-shard ``put_many`` / ``update_many`` / ``delete_many``
batches under a size/latency-deadline policy and drains them through
the store's existing batch pipelines — the sharded store's per-shard
engines included, whichever executor backs them (dispatch goes through
``run_shard_batches``, so thread-pooled shards and per-shard worker
processes over shared memory behave identically here) — resolving each
future with its op's :class:`~repro.core.reports.OperationReport`.

Admission control
-----------------

The queue is the store's front door, so it is built for *many*
producers and *uncontrolled* arrival rates:

* **Lock-striped lanes.**  Pending ops live in one lane per shard, each
  with its own lock; producers contend only on the lane their key hashes
  to (plus one counting window), never on a global submission lock.
* **Bounded window.**  At most ``max_pending`` ops may be admitted but
  not yet dispatched.  What happens at the bound is the ``overload``
  policy:

  ========== =========================================================
  ``block``   the producer waits for a free slot (default); a producer
              blocked in ``submit`` is woken by the next dispatch, or
              fails with :class:`~repro.errors.QueueClosedError` if the
              queue closes first.
  ``shed``    submission fails immediately with
              :class:`~repro.errors.QueueFullError`; the store never
              sees the op.
  ``deadline`` every op carries an admission deadline
              (``admission_timeout`` from submission).  A producer
              waits for a slot only until the deadline; an admitted op
              whose deadline passes before its batch is dispatched is
              rejected at dispatch time.  Either way the future fails
              with :class:`~repro.errors.DeadlineExceededError` and the
              op is never applied.
  ========== =========================================================

  Rejected ops (``shed`` and ``deadline``) are never partially applied:
  shedding happens before the op enters a lane, and expired ops are
  dropped from their batch before the batch reaches the store.

Ordering and equivalence
------------------------

Ops are grouped *per shard* (one logical shard for a plain
``PNWStore``), and each shard's ops keep their admission order: a run
of consecutive same-kind ops becomes one ``*_many`` call, and a kind
change (or the ``max_batch`` cap) cuts the run.  Two ops on different
shards own disjoint key spaces, so cross-shard regrouping cannot
reorder conflicting ops, and per-shard batch boundaries don't change
state at all — the engine's batch pipeline is state-identical to
sequential execution.  Coalesced ingestion is therefore byte-identical
(data zone, index, pool, wear accounting) to hand-batched ``*_many``
calls over the same per-shard admission sequences (pinned by
``tests/ingest/``).  With several producers the admission order *is*
the serialization: ops racing on one key resolve to exactly the state
a sequential oracle fed the admitted order produces.

Failure semantics follow the batch calls they coalesce into: when a run
dies mid-batch (missing key, pool exhaustion), the committed prefix's
futures resolve normally from the exception's ``committed_reports``,
and the remaining futures of that run receive the exception.  Later
runs — including the same shard's — still execute.

Lifecycle: :meth:`close` stops admission, drains everything already
admitted (waiting out a dispatch in flight), and *deterministically*
rejects — never hangs — any future the drain could not resolve, e.g.
when the dispatch machinery itself dies.  Producers blocked in a full
window are woken with :class:`~repro.errors.QueueClosedError`.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import threading
import time
from concurrent.futures import Future, InvalidStateError
from typing import TYPE_CHECKING

import numpy as np

from ..core.reports import OperationReport
from ..errors import (
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    WorkerCrashedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.store import PNWStore
    from ..shard.store import ShardedPNWStore

__all__ = ["IngestQueue"]

OVERLOAD_POLICIES = ("block", "shed", "deadline")


class _Run:
    """One shard's run of consecutive same-kind ops (one ``*_many``)."""

    __slots__ = ("kind", "items", "futures", "deadlines", "seqs", "epoch")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.items: list = []
        self.futures: list[Future] = []
        #: Admission deadlines (monotonic), only under the ``deadline``
        #: overload policy; ``None`` otherwise.
        self.deadlines: list[float] | None = None
        #: Global admission sequence number per op: dispatch restores
        #: the cross-lane admission order when re-routing stale-laned
        #: runs after a routing-table change.
        self.seqs: list[int] = []
        #: The oldest routing epoch observed by any op laned into this
        #: run (each producer reads the epoch *before* routing, so a
        #: run whose epoch matches the table at dispatch is guaranteed
        #: to be laned correctly).
        self.epoch: int = 0


class _Lane:
    """One shard's pending ops: its own lock, runs, and deadline clock."""

    __slots__ = ("lock", "runs", "count", "oldest", "submitted")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.runs: list[_Run] = []
        self.count = 0
        #: Enqueue time (monotonic) of the oldest pending op, or None.
        self.oldest: float | None = None
        self.submitted = 0


class _Window:
    """Counting admission window with timed waits and close wakeup.

    A semaphore whose blocked acquirers can also be released by
    :meth:`close` — the piece ``threading.Semaphore`` is missing — so a
    producer stuck waiting for a slot fails fast when the queue shuts
    down instead of hanging forever.
    """

    __slots__ = ("limit", "_free", "_cond", "_closed")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._free = limit
        self._cond = threading.Condition()
        self._closed = False

    def acquire(self, timeout: float | None = None) -> bool:
        """Take one slot.  ``timeout=None`` waits forever, ``0`` never.

        Returns ``False`` on timeout; raises
        :class:`~repro.errors.QueueClosedError` if the window closes
        while (or before) waiting.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise QueueClosedError(
                        "cannot submit to a closed IngestQueue"
                    )
                if self._free > 0:
                    self._free -= 1
                    return True
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        return False
                    self._cond.wait(remaining)

    def release(self, n: int = 1) -> None:
        if n <= 0:
            return
        with self._cond:
            self._free += n
            self._cond.notify(n)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class IngestQueue:
    """Coalesce single ops into per-shard batches behind futures.

    Parameters
    ----------
    store:
        A :class:`~repro.core.store.PNWStore` or
        :class:`~repro.shard.ShardedPNWStore`.  The queue becomes the
        store's mutation driver; don't mutate the store directly while
        the queue is open (reads go through :meth:`get`, which is
        serialized against dispatch).
    max_batch:
        Flush a shard as soon as it has this many pending ops; also the
        cap on one coalesced ``*_many`` call (the dispatch batch size).
    max_delay:
        Latency deadline in seconds: no accepted op waits longer than
        this for its batch to be dispatched (plus the batch's own
        execution time).
    max_pending:
        The admission window: at most this many ops admitted but not
        yet dispatched, across all lanes.  Defaults to
        ``4 * max_batch``.
    overload:
        What happens to a submission when the window is full —
        ``"block"`` (default), ``"shed"``, or ``"deadline"``; see the
        module docstring's policy matrix.
    admission_timeout:
        ``deadline`` policy only: seconds from submission to the op's
        admission deadline.  Defaults to ``2 * max_delay`` (one full
        flush cycle of headroom).
    autostart:
        Start the background flusher thread immediately.  With
        ``False`` nothing is dispatched until :meth:`flush` — handy for
        deterministic tests and crash simulations.

    The producer API (:meth:`put` / :meth:`update` / :meth:`delete` /
    :meth:`get`) is thread-safe; any number of producers may drive one
    queue concurrently.
    """

    def __init__(
        self,
        store: "PNWStore | ShardedPNWStore",
        *,
        max_batch: int = 256,
        max_delay: float = 0.005,
        max_pending: int | None = None,
        overload: str = "block",
        admission_timeout: float | None = None,
        autostart: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay <= 0.0:
            raise ValueError(f"max_delay must be positive, got {max_delay}")
        if max_pending is None:
            max_pending = 4 * max_batch
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload must be one of {OVERLOAD_POLICIES}, got {overload!r}"
            )
        if admission_timeout is None:
            admission_timeout = 2.0 * max_delay
        if admission_timeout <= 0.0:
            raise ValueError(
                f"admission_timeout must be positive, got {admission_timeout}"
            )
        self.store = store
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.overload = overload
        self.admission_timeout = admission_timeout
        self._sharded = hasattr(store, "run_shard_batches")
        n_lanes = store.n_shards if self._sharded else 1
        #: One pending lane per shard; producers stripe across them.
        self._lanes = [_Lane() for _ in range(n_lanes)]
        self._window = _Window(max_pending)
        #: Producers poke this when a lane becomes non-empty (the
        #: flusher must learn its deadline) or hits the size trigger.
        self._wake = threading.Event()
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        #: Serializes dispatch (flusher thread, explicit flush calls,
        #: inline size-trigger drains) so batches reach the store in
        #: take-order.
        self._drain_lock = threading.Lock()
        self.batches_dispatched = 0
        self.ops_rejected = 0
        #: Ops re-submitted after their run died to a worker-process
        #: crash (each op counts once per retry attempt).
        self.ops_retried = 0
        #: Guards ops_rejected: shed/deadline producers and _expire
        #: (under the drain lock) all bump it concurrently.
        self._rejected_lock = threading.Lock()
        #: Global admission order: dispatch re-lanes pending runs by
        #: these when the store's routing table changed under them.
        self._seq = itertools.count()
        self._flusher: threading.Thread | None = None
        if autostart:
            self.start()

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start the background flusher (idempotent)."""
        with self._lifecycle_lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if self._flusher is not None:
                return
            self._flusher = threading.Thread(
                target=self._flush_loop, name="pnw-ingest", daemon=True
            )
            self._flusher.start()

    def close(self) -> None:
        """Stop admission, drain everything admitted, resolve every future.

        Graceful under load: producers blocked in a full window are
        woken with :class:`~repro.errors.QueueClosedError`, a dispatch
        already in flight is waited out, and every op admitted before
        the close is dispatched.  Deterministic even when dispatch
        breaks: any future the drain could not resolve is rejected with
        :class:`~repro.errors.QueueClosedError` rather than left to
        hang.  Idempotent; concurrent closers wait for the first.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            # Wake blocked producers (they raise QueueClosedError) and
            # the flusher (it runs a final full sweep and exits).
            self._window.close()
            self._wake.set()
            flusher = self._flusher
            if flusher is not None:
                flusher.join()
                self._flusher = None
            # Anything still pending (no flusher, or admitted after the
            # flusher's final sweep began).
            with self._drain_lock:
                self._dispatch(self._take(due_only=False))
            # The drain above resolves everything a working store can
            # resolve; sweep up stragglers so close() never leaks a
            # pending future (e.g. dispatch machinery died mid-run).
            self._reject_stragglers()

    def _reject_stragglers(self) -> None:
        exc = QueueClosedError("IngestQueue closed before the op was applied")
        for lane in self._lanes:
            with lane.lock:
                runs, lane.runs = lane.runs, []
                lane.count = 0
                lane.oldest = None
            for run in runs:
                for future in run.futures:
                    if not future.done():
                        _set_exception(future, exc)

    def __enter__(self) -> "IngestQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # producer API                                                        #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> Future:
        """Enqueue a PUT; the future resolves to its OperationReport."""
        return self._submit("put", key, (key, value))

    def update(self, key: bytes, value: bytes | np.ndarray) -> Future:
        """Enqueue an UPDATE; missing keys fail the future with
        :class:`~repro.errors.KeyNotFoundError`."""
        return self._submit("update", key, (key, value))

    def delete(self, key: bytes) -> Future:
        """Enqueue a DELETE; missing keys fail the future with
        :class:`~repro.errors.KeyNotFoundError`."""
        return self._submit("delete", key, key)

    def get(self, key: bytes) -> bytes:
        """Read ``key`` from the store, serialized against dispatch.

        Reads bypass the pending lanes — an op is visible once its
        future resolves, not at submission — so a producer that awaits
        its PUT before GETting reads its own write.  On a sharded store
        the read takes only the owning shard's lock (concurrent with
        other shards' flushes); on a single store it serializes with
        dispatch.  Safe from any thread; allowed on a closed queue.
        """
        if self._sharded:
            return self.store.get(key)
        with self._drain_lock:
            return self.store.get(key)

    def _shard_of(self, key: bytes) -> int:
        if self._sharded:
            return self.store.shard_of_key(key)
        return 0

    def _admit(self) -> float | None:
        """Take a window slot per the overload policy.

        Returns the op's admission deadline (``deadline`` policy) or
        ``None``; raises :class:`QueueFullError` /
        :class:`DeadlineExceededError` / :class:`QueueClosedError` when
        the op cannot be admitted.
        """
        if self.overload == "shed":
            if not self._window.acquire(timeout=0.0):
                self._count_rejected()
                raise QueueFullError(
                    f"admission window full ({self.max_pending} ops pending)"
                )
            return None
        if self.overload == "deadline":
            deadline = time.monotonic() + self.admission_timeout
            if not self._window.acquire(timeout=self.admission_timeout):
                self._count_rejected()
                raise DeadlineExceededError(
                    f"no admission slot within {self.admission_timeout}s "
                    f"({self.max_pending} ops pending)"
                )
            return deadline
        self._window.acquire()
        return None

    def _count_rejected(self, n: int = 1) -> None:
        with self._rejected_lock:
            self.ops_rejected += n

    def _submit(self, kind: str, key: bytes, item) -> Future:
        if self._closed:
            raise QueueClosedError("cannot submit to a closed IngestQueue")
        # Read the routing epoch *before* routing: if the table changes
        # after this read, the dispatch-time epoch check catches it and
        # re-lanes the op, so a stale lane choice is never executed.
        epoch = getattr(self.store, "routing_epoch", 0)
        # Resolve the shard *before* taking a window slot: on a sharded
        # store this validates the key (shard_of_key raises on bad
        # type/length), and a rejected key must never consume a slot.
        lane = self._lanes[self._shard_of(key)]
        deadline = self._admit()
        future: Future = Future()
        try:
            with lane.lock:
                if self._closed:
                    # Lost the race with close(): the final sweep may
                    # have already run, so don't enqueue into a dead
                    # lane.
                    raise QueueClosedError(
                        "cannot submit to a closed IngestQueue"
                    )
                runs = lane.runs
                if (
                    not runs
                    or runs[-1].kind != kind
                    or len(runs[-1].items) >= self.max_batch
                ):
                    run = _Run(kind)
                    run.epoch = epoch
                    if self.overload == "deadline":
                        run.deadlines = []
                    runs.append(run)
                run = runs[-1]
                run.epoch = min(run.epoch, epoch)
                run.items.append(item)
                run.futures.append(future)
                run.seqs.append(next(self._seq))
                if run.deadlines is not None:
                    run.deadlines.append(deadline)
                lane.count += 1
                if lane.oldest is None:
                    lane.oldest = time.monotonic()
                lane.submitted += 1
                count = lane.count
        except BaseException:
            # The slot was acquired but the op never entered a lane;
            # hand the slot back so nothing leaks.
            self._window.release()
            raise
        size_triggered = count >= self.max_batch
        if size_triggered or count == 1:
            # Size trigger, or a lane just became non-empty (the
            # flusher must learn its deadline).
            self._wake.set()
        if size_triggered and self._flusher is None:
            # No background flusher: size-triggered batches drain inline
            # so a paused queue still makes progress under load.
            self.flush()
        return future

    def flush(self) -> None:
        """Dispatch everything pending and wait for it to execute.

        Returns once every op admitted before the call has its future
        resolved (the futures of failing runs carry their exception).
        Also waits out any dispatch already in flight.  Safe from any
        thread.
        """
        with self._drain_lock:
            self._dispatch(self._take(due_only=False))

    # ------------------------------------------------------------------ #
    # flusher                                                             #
    # ------------------------------------------------------------------ #

    def _take(
        self, *, due_only: bool, now: float | None = None
    ) -> dict[int, list[_Run]]:
        """Detach pending runs (all lanes, or only size/deadline-due
        ones), release their window slots, and — under the ``deadline``
        policy — reject ops whose admission deadline already passed."""
        taken: dict[int, list[_Run]] = {}
        released = 0
        if now is None:
            now = time.monotonic()
        for shard_id, lane in enumerate(self._lanes):
            with lane.lock:
                if not lane.runs:
                    continue
                if due_only:
                    due = (
                        lane.count >= self.max_batch
                        or now - lane.oldest >= self.max_delay
                    )
                    if not due:
                        continue
                runs = lane.runs
                lane.runs = []
                released += lane.count
                lane.count = 0
                lane.oldest = None
            taken[shard_id] = runs
        # Free the slots before dispatch: the window bounds *pending*
        # (admitted-but-undispatched) ops, so producers refill the lanes
        # while the store chews on the detached batches.
        self._window.release(released)
        if self.overload == "deadline":
            self._expire(taken, now)
        return taken

    def _expire(self, taken: dict[int, list[_Run]], now: float) -> None:
        """Drop ops whose admission deadline passed before this flush;
        their futures are rejected, their items never reach the store."""
        for shard_id, runs in taken.items():
            kept_runs: list[_Run] = []
            for run in runs:
                assert run.deadlines is not None
                live = [i for i, dl in enumerate(run.deadlines) if dl > now]
                if len(live) < len(run.items):
                    exc = DeadlineExceededError(
                        "admission deadline passed before dispatch"
                    )
                    expired = len(run.items) - len(live)
                    self._count_rejected(expired)
                    for i, future in enumerate(run.futures):
                        if run.deadlines[i] <= now:
                            _set_exception(future, exc)
                    run.items = [run.items[i] for i in live]
                    run.futures = [run.futures[i] for i in live]
                    run.deadlines = [run.deadlines[i] for i in live]
                if run.items:
                    kept_runs.append(run)
            taken[shard_id] = kept_runs

    def _next_deadline(self) -> float | None:
        """Earliest pending flush deadline (monotonic) across lanes."""
        oldest: float | None = None
        for lane in self._lanes:
            with lane.lock:
                if lane.oldest is not None and (
                    oldest is None or lane.oldest < oldest
                ):
                    oldest = lane.oldest
        return None if oldest is None else oldest + self.max_delay

    def _something_due(self, now: float) -> bool:
        """Whether any lane hit its size or deadline trigger."""
        for lane in self._lanes:
            with lane.lock:
                if lane.count >= self.max_batch:
                    return True
                if (
                    lane.oldest is not None
                    and now - lane.oldest >= self.max_delay
                ):
                    return True
        return False

    def _flush_loop(self) -> None:
        while True:
            while True:
                self._wake.clear()
                now = time.monotonic()
                if self._closed or self._something_due(now):
                    break
                deadline = self._next_deadline()
                self._wake.wait(
                    None if deadline is None else max(0.0, deadline - now)
                )
            stop = self._closed
            # Take-and-dispatch runs under _drain_lock so concurrent
            # flush() calls and the flusher hand batches to the store
            # strictly in take order.
            with self._drain_lock:
                self._dispatch(self._take(due_only=not stop))
            if stop:
                return

    # ------------------------------------------------------------------ #
    # dispatch                                                            #
    # ------------------------------------------------------------------ #

    def _dispatch(self, batches: dict[int, list[_Run]]) -> None:
        """Drain detached runs through the store's batch pipelines.

        Every future of ``batches`` is resolved by the time this
        returns: normally from the batch results, and — should the
        dispatch machinery itself die — with the escaping exception, so
        a broken store can never strand a producer on an unresolved
        future.
        """
        if not batches:
            return
        try:
            self._dispatch_inner(batches)
        except BaseException as exc:
            for runs in batches.values():
                for run in runs:
                    for future in run.futures:
                        if not future.done():
                            _set_exception(future, exc)
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt and friends still escape
            # Ordinary failures live on the futures; swallowing here
            # keeps the flusher thread alive and close() non-raising.

    #: Retry policy for runs lost to a worker-process crash: how many
    #: re-submissions before the error reaches the futures, and the
    #: backoff base (seconds; doubled per attempt, jittered ±50%).
    worker_retry_limit = 3
    worker_retry_backoff = 0.01

    def _dispatch_inner(self, batches: dict[int, list[_Run]]) -> None:
        if self._sharded:
            self._dispatch_sharded(batches)
            return
        ops = {
            "put": self.store.put_many,
            "update": self.store.update_many,
            "delete": self.store.delete_many,
        }
        for run in batches.get(0, []):
            try:
                reports = ops[run.kind](run.items)
            except Exception as exc:  # noqa: BLE001 - routed to futures
                self._resolve(run, None, exc)
            else:
                self._resolve(run, reports, None)
            self.batches_dispatched += 1

    def _dispatch_sharded(self, batches: dict[int, list[_Run]]) -> None:
        # Give the store's rebalancer its shot *before* pinning the
        # routing epoch — a rebalance pass takes the epoch's write side,
        # which a pin held by this same thread would deadlock against.
        check = getattr(self.store, "rebalance_check", None)
        if check is not None:
            check(sum(
                len(run.items)
                for runs in batches.values()
                for run in runs
            ))
        pending = {shard_id: list(runs) for shard_id, runs in batches.items()}
        pin = getattr(self.store, "routing_pin", None)
        with (pin() if pin is not None else contextlib.nullcontext()):
            # Runs were laned under the routing epoch their producers
            # observed; if a bucket migration slid in since, re-lane
            # them (in global admission order) under the pinned table.
            epoch = getattr(self.store, "routing_epoch", None)
            if epoch is not None and any(
                run.epoch != epoch
                for runs in pending.values()
                for run in runs
            ):
                pending = self._reroute(pending, epoch)
            for attempt in range(self.worker_retry_limit + 1):
                results = self.store.run_shard_batches(
                    {
                        shard_id: [(run.kind, run.items) for run in runs]
                        for shard_id, runs in pending.items()
                    }
                )
                retry: dict[int, list[_Run]] = {}
                for shard_id, outcomes in results.items():
                    for run, (reports, error) in zip(pending[shard_id], outcomes):
                        if (
                            isinstance(error, WorkerCrashedError)
                            and attempt < self.worker_retry_limit
                        ):
                            # The shard worker died mid-run; its zone has
                            # already been recovered, so the run is safe
                            # to re-submit whole (puts/updates are
                            # idempotent upserts; a delete that half
                            # landed re-raises the standard missing-key
                            # outcome).  Bounded + jittered so a
                            # crash-looping worker fails loudly instead
                            # of hammering the respawn path in lockstep.
                            retry.setdefault(shard_id, []).append(run)
                        else:
                            self._resolve(run, reports, error)
                            self.batches_dispatched += 1
                if not retry:
                    return
                self.ops_retried += sum(
                    len(run.items) for runs in retry.values() for run in runs
                )
                time.sleep(
                    self.worker_retry_backoff
                    * (2 ** attempt)
                    * (0.5 + random.random())
                )
                pending = retry

    def _reroute(
        self, pending: dict[int, list[_Run]], epoch: int
    ) -> dict[int, list[_Run]]:
        """Re-lane detached runs under the current routing table.

        A bucket migration between submission (where lanes were chosen)
        and dispatch may have re-homed keys; executing stale-laned runs
        would hand ops to shards that no longer own them.  Flatten every
        op, restore the global admission order via the per-op sequence
        numbers, and regroup into fresh runs under the pinned table with
        the same run-cutting rules as submission — so the re-laned
        batches are exactly what submission would have produced had the
        new table been live all along.
        """
        flat: list[tuple] = []
        for runs in pending.values():
            for run in runs:
                deadlines = run.deadlines or [None] * len(run.items)
                for seq, item, future, deadline in zip(
                    run.seqs, run.items, run.futures, deadlines
                ):
                    flat.append((seq, run.kind, item, future, deadline))
        flat.sort(key=lambda entry: entry[0])
        out: dict[int, list[_Run]] = {}
        for seq, kind, item, future, deadline in flat:
            key = item if kind == "delete" else item[0]
            runs = out.setdefault(self.store.shard_of_key(key), [])
            if (
                not runs
                or runs[-1].kind != kind
                or len(runs[-1].items) >= self.max_batch
            ):
                run = _Run(kind)
                run.epoch = epoch
                if self.overload == "deadline":
                    run.deadlines = []
                runs.append(run)
            run = runs[-1]
            run.seqs.append(seq)
            run.items.append(item)
            run.futures.append(future)
            if run.deadlines is not None:
                run.deadlines.append(deadline)
        return out

    @staticmethod
    def _resolve(
        run: _Run,
        reports: list[OperationReport] | None,
        error: BaseException | None,
    ) -> None:
        """Map one executed run back onto its futures.

        On error, the batch call's ``committed_reports`` (an in-order
        prefix) resolve the ops that did land; every later future of the
        run gets the exception — the ``*_many`` contract the run
        coalesced into.  Futures cancelled while pending (an async
        caller gave up) are skipped: the op still executed, the result
        just has nobody to go to.
        """
        if error is None:
            assert reports is not None
            for future, report in zip(run.futures, reports):
                _set_result(future, report)
            return
        committed = list(getattr(error, "committed_reports", []))
        for i, future in enumerate(run.futures):
            if i < len(committed):
                _set_result(future, committed[i])
            else:
                _set_exception(future, error)

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def pending_ops(self) -> int:
        """Ops admitted but not yet dispatched (never > ``max_pending``)."""
        total = 0
        for lane in self._lanes:
            with lane.lock:
                total += lane.count
        return total

    @property
    def ops_submitted(self) -> int:
        """Ops admitted over the queue's lifetime (rejections excluded)."""
        total = 0
        for lane in self._lanes:
            with lane.lock:
                total += lane.submitted
        return total


def _set_result(future: Future, result) -> None:
    """Resolve a future, tolerating a concurrent cancellation."""
    if future.cancelled():
        return
    try:
        future.set_result(result)
    except InvalidStateError:  # pragma: no cover - cancel race window
        pass


def _set_exception(future: Future, exc: BaseException) -> None:
    """Reject a future, tolerating a concurrent cancellation."""
    if future.cancelled():
        return
    try:
        future.set_exception(exc)
    except InvalidStateError:  # pragma: no cover - cancel race window
        pass

"""Async coalescing ingestion over the staged write-path engine."""

from .queue import IngestQueue

__all__ = ["IngestQueue"]

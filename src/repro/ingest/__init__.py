"""Admission layer: multi-producer coalescing ingestion with backpressure."""

from .aio import AsyncIngestQueue
from .queue import IngestQueue

__all__ = ["IngestQueue", "AsyncIngestQueue"]

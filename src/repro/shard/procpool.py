"""Process-parallel shard execution over shared-memory zones.

The thread executor's ceiling is the GIL: PR 4's probe engine made the
per-op Python fraction small, but on a busy multi-shard store the
remaining interpreter work of N shards still serializes on one core.
This module breaks that ceiling with one long-lived **worker process**
per shard.  Each worker owns a complete, unmodified
:class:`~repro.core.store.PNWStore` whose durable regions — the NVM data
zone, the validity bitmap, and both devices' wear counters — live in a
:class:`~repro.nvm.shm.SharedZone` (one ``multiprocessing.shared_memory``
segment per shard) that the parent created and also maps.  Requests
travel over a private duplex pipe as small command tuples; replies carry
compact :class:`~repro.core.reports.OperationReport` payloads (or the
pickled engine exception, whose ``committed_reports`` attributes survive
the trip).  Addresses in replies are shard-local;
:class:`~repro.shard.store.ShardedPNWStore` globalizes them exactly as
it does for thread-mode shards, so the two executors are
indistinguishable above this layer.

Worker-crash semantics
----------------------
The shared zone holds precisely the state the single store's
:meth:`~repro.core.store.PNWStore.recover` path reads after a simulated
power failure, so a worker process dying — even ``kill -9`` — is
*survivable independently of the parent*: the client respawns the
worker, the fresh worker re-attaches the same segment (attachment never
zeroes anything), and the standard recovery path rebuilds the volatile
DRAM state (index, model, pool) from the surviving bitmap + data zone.
Only the dead worker's unflagged in-flight operations are lost — the
torn-shard guarantee of a power failure, now scoped to one process.  A
death detected *between* requests heals transparently; a death *during*
a request raises :class:`~repro.errors.WorkerCrashedError` after the
respawn+recover, so the caller can simply retry the lost operations.
With ``persist_flags=False`` (the paper's Fig. 2a architecture) there is
no persistent bitmap, so a crashed worker restarts empty — the same
"crash recovery unavailable" trade-off the single store documents.

What stays worker-local on purpose: the DRAM hash index, the k-means
model, and the probe engine's free lists + content cache.  They are
exactly the structures the recovery path rebuilds, they are written on
every hot-path op (sharing them would turn each op into cross-process
synchronization), and keeping them private preserves the byte-identity
contract — each worker runs the very same engine code a thread-mode
shard runs.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import weakref
from collections.abc import ItemsView, KeysView, ValuesView
from typing import Any, Iterable

import numpy as np

from ..core.config import PNWConfig
from ..core.reports import OperationReport, StoreMetrics
from ..core.store import PNWStore
from ..errors import ReproError, WorkerCrashedError
from ..nvm.shm import SharedZone, ZoneLayout
from ..nvm.stats import SharedWearStats

__all__ = ["ShardProcessClient", "zone_layout_for"]


def _mp_context():
    """``fork`` where available (fast, shares the resource tracker), else
    ``spawn``.  Workers import nothing beyond what the parent already
    loaded, so fork is safe here."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")  # pragma: no cover - non-Linux


def zone_layout_for(config: PNWConfig) -> ZoneLayout:
    """The shared-segment layout of one shard zone built from ``config``.

    Media-enabled configs map the fault model's stuck-bit mask into the
    segment too, so a respawned worker inherits which cells have already
    failed (the row-retirement bitmap is always present)."""
    return ZoneLayout(
        num_buckets=config.num_buckets,
        bucket_bytes=config.bucket_bytes,
        track_bit_wear=config.track_bit_wear,
        media_stuck=config.media_enabled,
    )


# ---------------------------------------------------------------------- #
# worker side                                                             #
# ---------------------------------------------------------------------- #

def _resolve(store: PNWStore, path: str) -> Any:
    obj: Any = store
    for part in path.split("."):
        obj = getattr(obj, part)
    return obj


def _sanitize(value: Any) -> Any:
    """Make RPC results picklable: materialize iterators and dict views
    (e.g. ``index.items()``) into lists; everything else rides as-is."""
    if isinstance(value, (ItemsView, KeysView, ValuesView)):
        return list(value)
    if hasattr(value, "__next__") and hasattr(value, "__iter__"):
        return list(value)
    return value


def _execute_runs(
    store: PNWStore, runs: list[tuple[str, list]]
) -> list[tuple[list[OperationReport] | None, BaseException | None]]:
    """The worker half of ``run_shard_batches``: ordered ``(kind, items)``
    runs on this zone's engine, one ``(reports, error)`` outcome per run
    (runs are independent — a failing run does not stop later runs),
    with shard-local addresses; the parent globalizes."""
    ops = {
        "put": store.put_many,
        "update": store.update_many,
        "delete": store.delete_many,
    }
    outcomes: list[tuple[list[OperationReport] | None, BaseException | None]] = []
    for kind, items in runs:
        try:
            outcomes.append((ops[kind](items), None))
        except Exception as exc:  # noqa: BLE001 - outcome-encoded like thread mode
            outcomes.append((None, exc))
    return outcomes


def _install_sabotage(store: PNWStore, rows_before_kill: int) -> None:
    """Test hook: make the next data-zone multi-row flush write only its
    first ``rows_before_kill`` rows and then SIGKILL this worker —
    a deterministic mid-commit process crash (the flags of the batch are
    set *after* ``write_many``, so the whole sub-batch dies unflagged)."""
    device = store.nvm
    original = type(device).write_many

    def torn_write_many(addresses, rows, scheme=None):
        original(device, addresses[:rows_before_kill],
                 rows[:rows_before_kill], scheme)
        os.kill(os.getpid(), signal.SIGKILL)

    device.write_many = torn_write_many


def _worker_main(layout: ZoneLayout, shm_name: str, config: PNWConfig,
                 conn) -> None:
    """Long-lived per-shard worker: attach the zone, build the store,
    serve command tuples until ``exit`` (or parent death: EOF)."""
    zone = SharedZone.attach(layout, shm_name)
    store = PNWStore(config, zone=zone)
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            try:
                if op == "exit":
                    conn.send(("ok", None))
                    break
                elif op == "runs":
                    conn.send(("ok", _execute_runs(store, msg[1])))
                elif op == "call":
                    target = _resolve(store, msg[1])
                    conn.send(("ok", _sanitize(target(*msg[2], **msg[3]))))
                elif op == "get":
                    target = _resolve(store, msg[1])
                    if callable(target):
                        conn.send(("ok", ("callable", None)))
                    else:
                        conn.send(("ok", ("value", _sanitize(target))))
                elif op == "set":
                    parent_path, _, name = msg[1].rpartition(".")
                    parent = _resolve(store, parent_path) if parent_path else store
                    setattr(parent, name, msg[2])
                    conn.send(("ok", None))
                elif op == "sabotage":
                    _install_sabotage(store, msg[1])
                    conn.send(("ok", None))
                else:
                    conn.send(("err", ReproError(f"unknown worker op {op!r}")))
            except Exception as exc:  # noqa: BLE001 - piped to the parent
                conn.send(("err", exc))
    finally:
        conn.close()
        zone.close()


# ---------------------------------------------------------------------- #
# parent-side facades                                                     #
# ---------------------------------------------------------------------- #

class _ZoneDeviceFacade:
    """Parent-side view of a worker's NVM device over the shared zone.

    Reads the same bytes and wear counters the worker writes — no RPC,
    no copies beyond :meth:`snapshot` — which is what the aggregation
    paths (``wear_stats`` merges) and the equivalence suites touch.
    """

    def __init__(self, view: np.ndarray, stats: SharedWearStats) -> None:
        self._view = view
        self.stats = stats
        self.num_buckets, self.bucket_bytes = view.shape

    @property
    def contents(self) -> np.ndarray:
        out = self._view.view()
        out.flags.writeable = False
        return out

    def snapshot(self) -> np.ndarray:
        return self._view.copy()

    def detach(self) -> None:
        """Swap the shared views for private copies (pre-unlink): reads
        after ``close()`` still see the final state, and the facade no
        longer pins the shared mapping open."""
        self._view = self._view.copy()
        self.stats.detach()


class _RemoteAttr:
    """Lazy dotted-path proxy for a worker-local component (``pool``,
    ``manager``, ``index``).  Attribute reads round-trip to the worker;
    an attribute that resolves to a callable comes back as a caller that
    round-trips its invocation.  Purely for introspection/test surface —
    the hot paths never touch it."""

    def __init__(self, client: "ShardProcessClient", path: str) -> None:
        self._client = client
        self._path = path

    def __getattr__(self, name: str):
        if name.startswith("_client") or name.startswith("_path"):
            raise AttributeError(name)
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)  # keep pickle/copy honest
        path = f"{self._path}.{name}"
        kind, value = self._client._get(path)
        if kind == "callable":
            return lambda *args, **kwargs: self._client._call(
                path, *args, **kwargs
            )
        return value


def _reap(holder: dict, zone: SharedZone) -> None:
    """GC / interpreter-exit safety net: kill the worker, free the zone."""
    proc = holder.get("proc")
    if proc is not None and proc.is_alive():  # pragma: no cover - GC timing
        proc.terminate()
        proc.join(timeout=1.0)
    zone.close()
    zone.unlink()


# ---------------------------------------------------------------------- #
# parent-side client                                                      #
# ---------------------------------------------------------------------- #

class ShardProcessClient:
    """One shard's process-executor handle: shared zone + worker + pipe.

    Exposes the slice of the :class:`PNWStore` surface the sharded layer
    and its test suites use, with identical semantics — every mutation
    executes the very same engine code in the worker, so state and
    reports are byte-identical to a thread-mode shard.  All requests on
    one client serialize on an internal lock (the sharded store already
    serializes K/V traffic per shard; the lock additionally keeps
    concurrent introspection reads off a busy pipe).
    """

    def __init__(self, shard_id: int, config: PNWConfig, *, ctx=None) -> None:
        self.shard_id = shard_id
        self.config = config
        self._ctx = ctx if ctx is not None else _mp_context()
        self.layout = zone_layout_for(config)
        self.zone = SharedZone.create(self.layout)
        self._rpc_lock = threading.Lock()
        self._closed = False
        self._proc = None
        self._conn = None
        self._holder: dict = {"proc": None}
        self._finalizer = weakref.finalize(self, _reap, self._holder, self.zone)
        self._spawn()
        self.nvm = _ZoneDeviceFacade(self.zone.view("data"),
                                     self.zone.data_stats())
        self.flags_nvm = _ZoneDeviceFacade(self.zone.view("flags"),
                                           self.zone.flag_stats())
        self.pool = _RemoteAttr(self, "pool")
        self.manager = _RemoteAttr(self, "manager")
        self.index = _RemoteAttr(self, "index")

    # ------------------------------------------------------------------ #
    # worker lifecycle                                                    #
    # ------------------------------------------------------------------ #

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self.layout, self.zone.name, self.config, child_conn),
            name=f"pnw-shard-{self.shard_id}",
            daemon=True,
        )
        proc.start()
        # Close our copy of the child end immediately: the worker must be
        # the only holder, so its death (even SIGKILL) turns into EOF on
        # our end instead of a hang.
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn
        self._holder["proc"] = proc

    def _revive_locked(self) -> None:
        """Respawn the worker over the surviving zone and run recovery.

        The segment's bytes are untouched by the old worker's death, so
        the fresh worker's store attaches them as-is and — when the
        persistent validity bitmap exists — the ordinary
        :meth:`PNWStore.recover` path rebuilds index/model/pool from it.
        """
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already broken
            pass
        if self._proc.is_alive():  # pragma: no cover - raced liveness check
            self._proc.terminate()
        self._proc.join(timeout=5.0)
        self._spawn()
        if self.config.persist_flags:
            self._conn.send(("call", "recover", (), {}))
            status, payload = self._conn.recv()
            if status == "err":  # pragma: no cover - recover() is total here
                raise payload

    @property
    def pid(self) -> int | None:
        """The live worker's PID (tests aim ``kill -9`` at it)."""
        return self._proc.pid if self._proc is not None else None

    def is_alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the worker and free the shared zone (idempotent)."""
        with self._rpc_lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(("exit",))
                self._conn.recv()
            except (EOFError, ConnectionError, OSError):
                pass  # worker already gone
            self._conn.close()
            self._proc.join(timeout=timeout)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
                self._proc.join(timeout=timeout)
            self._holder["proc"] = None
            self.nvm.detach()
            self.flags_nvm.detach()
            self.zone.close()
            self.zone.unlink()
            self._finalizer.detach()

    # ------------------------------------------------------------------ #
    # transport                                                           #
    # ------------------------------------------------------------------ #

    def _request(self, *msg) -> Any:
        with self._rpc_lock:
            if self._closed:
                raise ReproError(
                    f"shard {self.shard_id} worker is shut down (store closed)"
                )
            if not self._proc.is_alive():
                # The worker died idle (between requests): nothing was in
                # flight, so recovery loses nothing — heal transparently.
                self._revive_locked()
            try:
                self._conn.send(msg)
                status, payload = self._conn.recv()
            except (EOFError, ConnectionError, OSError) as exc:
                self._revive_locked()
                raise WorkerCrashedError(
                    f"shard {self.shard_id} worker process died "
                    f"mid-request; the zone was recovered from its shared "
                    f"segment (unflagged in-flight ops lost) — retry"
                ) from exc
            if status == "err":
                raise payload
            return payload

    def _call(self, path: str, *args, **kwargs) -> Any:
        return self._request("call", path, args, kwargs)

    def _get(self, path: str) -> tuple[str, Any]:
        return self._request("get", path)

    # ------------------------------------------------------------------ #
    # PNWStore surface (shard-local addresses; the sharded layer          #
    # globalizes, exactly as for thread-mode shards)                      #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value) -> OperationReport:
        return self._call("put", key, value)

    def put_unique(self, key: bytes, value) -> OperationReport:
        return self._call("put_unique", key, value)

    def put_many(self, pairs: Iterable, *, unique: bool = False):
        return self._request("call", "put_many", (list(pairs),),
                             {"unique": unique})

    def update(self, key: bytes, value) -> OperationReport:
        return self._call("update", key, value)

    def update_many(self, pairs: Iterable):
        return self._call("update_many", list(pairs))

    def delete(self, key: bytes) -> OperationReport:
        return self._call("delete", key)

    def delete_many(self, keys: Iterable):
        return self._call("delete_many", list(keys))

    def get(self, key: bytes) -> bytes:
        return self._call("get", key)

    def get_many(self, keys: Iterable[bytes]) -> list[bytes]:
        """Bulk read in one round-trip (the migration copy path)."""
        return self._call("get_many", list(keys))

    def set_defer_retrain(self, defer: bool) -> None:
        """Toggle the worker engine's retrain deferral (the rebalancer
        wraps migration batches in this so a K-Means refit can't stall
        the quiesced migration window)."""
        self._request("set", "engine.defer_retrain", bool(defer))

    def warm_up(self, old_data: np.ndarray) -> None:
        return self._call("warm_up", np.ascontiguousarray(old_data))

    def retrain(self) -> None:
        return self._call("retrain")

    def crash(self) -> None:
        return self._call("crash")

    def recover(self) -> None:
        return self._call("recover")

    def run_sequence(self, runs: list[tuple[str, list]]):
        """Ordered ``(kind, items)`` runs in one round-trip (the
        ``run_shard_batches`` drain path)."""
        return self._request("runs", runs)

    def __len__(self) -> int:
        return int(self._call("__len__"))

    def __contains__(self, key: bytes) -> bool:
        return bool(self._call("__contains__", key))

    @property
    def live_fraction(self) -> float:
        return float(self._get("live_fraction")[1])

    @property
    def metrics(self) -> StoreMetrics:
        """A snapshot of the worker store's counters (and kept reports,
        with shard-local addresses)."""
        return self._get("metrics")[1]

    def set_keep_reports(self, keep: bool) -> None:
        self._request("set", "metrics.keep_reports", bool(keep))

    @property
    def media_stats(self):
        """Snapshot of the worker store's media-health counters."""
        return self._get("media_stats")[1]

    @property
    def degraded(self) -> bool:
        """Whether the worker store is shedding writes (media watermark)."""
        return bool(self._get("degraded")[1])

    def scrub(self, limit: int | None = None) -> dict[str, int]:
        """One patrol-scrub pass on the worker store."""
        return self._call("scrub", limit)

    # ------------------------------------------------------------------ #
    # test support                                                        #
    # ------------------------------------------------------------------ #

    def sabotage_next_flush(self, rows_before_kill: int) -> None:
        """Arm the deterministic mid-commit SIGKILL (crash tests only)."""
        self._request("sabotage", int(rows_before_kill))

"""Hash-partitioned PNW store: N independent zones, one pipeline each.

``ShardedPNWStore`` splits the key space across ``N`` shards by a
stable hash of the key through a virtual-bucket indirection table
(:class:`~repro.shard.router.RoutingTable` — with the default table
this is exactly ``hash % n_shards``).  Each shard is a complete,
unmodified :class:`~repro.core.store.PNWStore` — its own NVM zone,
validity bitmap, hash index, k-means model, and dynamic address pool —
so everything proved about the single store (batch/sequential
equivalence, crash recovery from NVM state, wear accounting) holds
per shard by construction.  Every sub-batch therefore executes through
the same staged write-path engine (:mod:`repro.engine`) as the single
store; this module only routes and reassembles.

The sharded layer adds exactly two things:

* **Routing** — batch mutations (``put_many`` / ``update_many`` /
  ``delete_many``) are split into per-shard sub-batches that preserve
  batch order, executed concurrently on a thread pool, and their
  reports reassembled into input order.  The NumPy-heavy stages of the
  per-shard pipeline (featurize, predict, Hamming probing, multi-row
  commit) release the GIL, and each shard's pool probe scans a free
  list ``1/N`` the size, so sharding wins twice: less probe work per
  op and real thread parallelism over it.  Each shard runs its own
  probe engine — array-backed free lists plus a DRAM content cache of
  its zone's free buckets, scored with cluster-grouped popcount
  kernels — which shrinks the GIL-held Python fraction of a pop and
  lets shard threads overlap almost all of the probe cost.
* **Aggregation** — cross-shard :class:`WearStats` / ``StoreMetrics``
  merges and whole-store CDFs, with shard-local bucket addresses
  remapped into one global address space (shard ``s`` owns the
  contiguous range ``[base(s), base(s) + buckets(s))``).

Consistency across shards: each sub-batch keeps the single store's
sequential semantics *within its shard*.  Because shards execute
concurrently, a mid-batch error in one shard (pool exhaustion, missing
key) cannot stop the others part-way — sibling sub-batches run to
completion, then the lowest-shard error is re-raised (with
``committed_reports`` aggregated across shards for pool exhaustion).
Whole-store ``crash()`` / ``recover()`` delegate per shard; a torn
shard loses only its own unflagged operations.

Executors: the per-shard engines run either on a thread pool
(``executor="thread"``, the default) or on one long-lived worker
process per shard over shared-memory zones (``executor="process"``,
:mod:`repro.shard.procpool`) — the GIL-free mode for real multi-core
scaling.  Both executors sit behind the exact same
``OperationReport`` API and produce byte-identical store state; the
process mode additionally survives a worker process dying (the zone
lives in shared memory; the worker is respawned and the standard
recovery path replays it — see :class:`~repro.shard.procpool.ShardProcessClient`).

Reentrancy and lock ordering: each shard's engine is guarded by its own
lock, so K/V calls (single ops, ``*_many`` batches,
``run_shard_batches``, ``get``) may be issued from several threads
concurrently — the ingestion layer's multi-producer front door relies
on this.  Concurrent calls interleave at sub-batch granularity per
shard with no cross-call ordering promise; callers that need a global
order (like :class:`~repro.ingest.IngestQueue`'s drain) must serialize
themselves.  Lifecycle calls (``warm_up`` / ``retrain`` / ``crash`` /
``recover`` / ``close``) quiesce the store deterministically instead of
requiring the caller to: they acquire **every** shard lock in ascending
shard order before acting, so they wait for all in-flight K/V work and
exclude new K/V work for their duration.  The ordering discipline that
makes this deadlock-free: K/V paths take exactly **one** shard lock and
never nest, lifecycle paths take **all** locks in ascending order, and
lifecycle work never runs on the shared K/V thread pool (it uses a
transient pool), so a queued K/V task blocked on a shard lock can never
sit in front of the lifecycle work that would release it.

Load-aware routing (``rebalance_mode != "off"``) adds one more layer to
that discipline: a writer-preferring **routing latch**
(:class:`~repro.shard.rebalance.RoutingLatch`).  Every K/V path pins
the routing epoch with a read hold around route-and-execute, and the
:class:`~repro.shard.rebalance.Rebalancer` takes the write side (then
quiesces) before editing the :class:`~repro.shard.router.RoutingTable`.
The lock order is always latch → shard locks, so the existing
cycle-freedom argument carries over unchanged.  With the default
``rebalance_mode="off"`` the table keeps its FNV-equivalent layout and
the store's on-device state is byte-identical to the pre-table code.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable

import numpy as np

from ..core.config import PNWConfig
from ..core.store import OperationReport, PNWStore, StoreMetrics
from ..engine.plan import check_unique
from ..errors import (
    ConfigError,
    DegradedModeError,
    KeyNotFoundError,
    PoolExhaustedError,
    WorkerCrashedError,
)
from ..index.base import KeyIndex, stable_hash64
from ..nvm.shm import SharedZone, ZoneLayout
from ..nvm.stats import MediaStats, WearStats
from .procpool import ShardProcessClient
from .rebalance import Rebalancer, RoutingLatch
from .router import ROUTER_SEED, RouterStats, RoutingTable, hash_keys

__all__ = ["ShardedPNWStore", "make_store", "shard_configs"]


def shard_configs(config: PNWConfig, shards: int | None = None) -> list[PNWConfig]:
    """Derive the per-shard configs a sharded store builds its zones from.

    ``num_buckets`` is split as evenly as possible (the first
    ``num_buckets % shards`` shards get one extra bucket); each shard's
    seed is offset by its shard id so the k-means restarts are
    independent streams, and ``shards`` is reset to 1 — a shard is a
    plain single-zone store.  Exposed so tests and ablations can build
    the *identical* standalone stores a sharded store runs internally.
    """
    n = config.shards if shards is None else shards
    if n < 1:
        raise ConfigError(f"shards must be >= 1, got {n}")
    if n > config.num_buckets:
        raise ConfigError(
            f"shards={n} exceeds num_buckets={config.num_buckets}"
        )
    base, extra = divmod(config.num_buckets, n)
    return [
        dataclasses.replace(
            config,
            num_buckets=base + (1 if i < extra else 0),
            seed=None if config.seed is None else config.seed + i,
            shards=1,
        )
        for i in range(n)
    ]


def make_store(
    config: PNWConfig, *, max_workers: int | None = None
) -> "PNWStore | ShardedPNWStore | TieredStore":
    """Store factory: single-zone for ``shards=1``, sharded otherwise,
    wrapped in a :class:`~repro.tier.TieredStore` when ``tier_mode`` is
    not ``"off"``.

    The drop-in entry point for drivers that take ``shards=N`` /
    ``tier_mode=...`` knobs — all return types expose the same
    ``OperationReport``-based API.
    """
    store: "PNWStore | ShardedPNWStore"
    if config.shards == 1:
        store = PNWStore(config)
    else:
        store = ShardedPNWStore(config, max_workers=max_workers)
    if config.tier_mode != "off":
        # Imported here: repro.tier imports engine helpers that import
        # core modules — a module-level import would be circular.
        from ..tier import TieredStore

        return TieredStore(store)
    return store


class ShardedPNWStore:
    """N hash-partitioned :class:`PNWStore` zones behind one batch API."""

    def __init__(
        self,
        config: PNWConfig,
        shards: int | None = None,
        *,
        max_workers: int | None = None,
        executor: str | None = None,
    ) -> None:
        self.config = config
        configs = shard_configs(config, shards)
        self.n_shards = len(configs)
        #: ``"thread"`` or ``"process"`` — from ``config.executor`` unless
        #: overridden here.
        self.executor_kind = config.executor if executor is None else executor
        if self.executor_kind not in ("thread", "process"):
            raise ConfigError(
                f"executor must be 'thread' or 'process', "
                f"got {self.executor_kind!r}"
            )
        if self.executor_kind == "process":
            if config.index_placement != "dram":
                raise ConfigError(
                    "executor='process' requires index_placement='dram': the "
                    "NVM-resident path-hashing index lives in worker-local "
                    "memory, so it could not survive a worker crash the way "
                    "the shared zone does"
                )
            self.stores: list = [
                ShardProcessClient(shard_id, shard_config)
                for shard_id, shard_config in enumerate(configs)
            ]
        else:
            self.stores = [PNWStore(shard_config) for shard_config in configs]
        sizes = [shard_config.num_buckets for shard_config in configs]
        #: Global base address of each shard's zone (plus a total sentinel).
        self.shard_bases = np.concatenate(([0], np.cumsum(sizes)))
        #: One lock per shard engine: concurrent K/V calls from several
        #: threads serialize per shard, never against the whole store.
        self._shard_locks = [threading.Lock() for _ in self.stores]
        #: Whether the live rebalancer is armed (``rebalance_mode``).
        self.rebalance_enabled = config.rebalance_mode != "off"
        if self.rebalance_enabled and config.index_placement != "dram":
            raise ConfigError(
                "rebalance_mode requires index_placement='dram': bucket "
                "migrations enumerate a shard's live keys through its "
                "DRAM index"
            )
        self._stats_lock = threading.Lock()
        self._router_stats = RouterStats.for_shards(self.n_shards)
        self._routing_zone: SharedZone | None = None
        if self.rebalance_enabled and self.executor_kind == "process":
            # The table must survive kill -9 worker respawns and stay
            # authoritative across crash()/recover(), so it lives in its
            # own small shared segment rather than parent DRAM.
            self._routing_zone = SharedZone.create(
                ZoneLayout(
                    num_buckets=1,
                    bucket_bytes=1,
                    routing_slots=self.n_shards * config.router_vbuckets,
                )
            )
            self._router = RoutingTable(
                self.n_shards,
                config.router_vbuckets,
                table=self._routing_zone.view("routing"),
                meta=self._routing_zone.view("routing_meta"),
            )
        else:
            self._router = RoutingTable(self.n_shards, config.router_vbuckets)
        #: The routing latch: K/V paths read-pin the epoch, the
        #: rebalancer write-locks it before editing the table.
        self._epoch = RoutingLatch()
        self._rebalancer = (
            Rebalancer(self) if self.rebalance_enabled else None
        )
        # Size the pool to the CPUs this process can actually run on: on
        # a single-CPU host threads only add GIL churn, so sub-batches
        # run serially there (the per-shard probe-set reduction is the
        # win that survives).  An explicit max_workers overrides.  In
        # process mode the pool threads just block on worker pipes
        # (blocking recv releases the GIL), so one thread per shard is
        # right regardless of local core count — the parallelism lives
        # in the worker processes.
        if max_workers is None:
            if self.executor_kind == "process":
                max_workers = self.n_shards
            else:
                try:
                    max_workers = len(os.sched_getaffinity(0))
                except AttributeError:  # pragma: no cover - non-Linux
                    max_workers = os.cpu_count() or 1
        workers = min(self.n_shards, max_workers)
        self._executor = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="pnw-shard"
            )
            if workers > 1
            else None
        )

    # ------------------------------------------------------------------ #
    # plumbing                                                            #
    # ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def _quiesced(self):
        """Hold every shard lock (ascending shard order) for the block.

        This is the lifecycle half of the store's lock ordering: K/V
        paths take exactly one shard lock and never nest, so acquiring
        all of them in a fixed ascending order (a) waits for every
        in-flight sub-batch to finish, (b) excludes new K/V work for the
        duration, and (c) cannot deadlock — there is no lock cycle.
        Lifecycle bodies must not dispatch onto the shared K/V thread
        pool while quiesced (queued K/V tasks blocked on these locks
        would sit in front of them); :meth:`_map_shards_quiesced` uses a
        transient pool instead.
        """
        for lock in self._shard_locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._shard_locks):
                lock.release()

    def _map_shards_quiesced(
        self, tasks: dict[int, Callable[[], Any]]
    ) -> tuple[dict[int, Any], dict[int, BaseException]]:
        """Like :meth:`_map_shards`, but safe while :meth:`_quiesced`:
        runs on a transient pool so it never queues behind K/V tasks
        that are blocked on the very shard locks the caller holds."""
        results: dict[int, Any] = {}
        errors: dict[int, BaseException] = {}
        if len(tasks) <= 1 or self._executor is None:
            for shard_id in sorted(tasks):
                try:
                    results[shard_id] = tasks[shard_id]()
                except Exception as exc:  # noqa: BLE001 - re-raised by caller
                    errors[shard_id] = exc
            return results, errors
        with ThreadPoolExecutor(
            max_workers=len(tasks), thread_name_prefix="pnw-lifecycle"
        ) as pool:
            futures = {
                shard_id: pool.submit(task)
                for shard_id, task in tasks.items()
            }
            for shard_id, future in futures.items():
                exc = future.exception()
                if exc is not None:
                    errors[shard_id] = exc
                else:
                    results[shard_id] = future.result()
        return results, errors

    def close(self) -> None:
        """Drain in-flight batches, then shut the executors down.

        First the shared thread pool is drained *without* holding any
        shard lock (queued sub-batches still need to acquire them), then
        the store quiesces and — in process mode — stops every worker
        process and frees its shared zone.  A thread-mode store stays
        usable after ``close()`` (calls simply run serially); a
        process-mode store does not — its workers and zones are gone, so
        later calls raise.  Idempotent.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.executor_kind == "process":
            with self._quiesced():
                for store in self.stores:
                    store.shutdown()
        if self._routing_zone is not None:
            self._router.detach()
            self._routing_zone.close()
            self._routing_zone.unlink()
            self._routing_zone = None

    def __enter__(self) -> "ShardedPNWStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def shard_of_key(self, key: bytes) -> int:
        """The shard that owns ``key`` under the *current* routing table
        (identical to the historical ``hash % n_shards`` until a bucket
        migration edits the table).  Callers that must act on a stable
        answer should hold :meth:`routing_pin` across use."""
        normalized = KeyIndex.normalize_key(key, self.config.key_bytes)
        return self._router.shard_of_hash(
            stable_hash64(normalized, seed=ROUTER_SEED)
        )

    def _assign(self, normalized_keys: list[bytes]) -> list[int]:
        """Owning shard per normalized key, through the routing table
        (one vectorized hash + one fancy-index op)."""
        return self._router.assign_hashes(
            hash_keys(normalized_keys)
        ).tolist()

    @property
    def routing_epoch(self) -> int:
        """The routing table's version; ``0`` means the FNV default.
        The ingestion layer compares epochs at dispatch to re-route
        batches laned under an older table."""
        return self._router.version

    def routing_pin(self):
        """Read-hold on the routing epoch for the block (reentrant per
        thread).  While held, no bucket migration can run, so routing
        answers and shard-addressed batches stay mutually consistent."""
        return self._epoch.read_locked()

    def rebalance_check(self, ops: int = 1) -> bool:
        """Account ``ops`` toward the rebalance check interval and run a
        watermark-triggered rebalance pass when due.  No-op (False) when
        ``rebalance_mode="off"``.  Must not be called while holding a
        routing pin issued to the same thread's caller — the store's own
        entry points call this *before* pinning."""
        if self._rebalancer is None:
            return False
        return self._rebalancer.maybe_rebalance(ops)

    def router_stats(self) -> RouterStats:
        """Routing/rebalancing counters (a consistent snapshot)."""
        with self._stats_lock:
            return self._router_stats.snapshot()

    def _count_routed(self, shard_id: int, ops: int = 1) -> None:
        with self._stats_lock:
            self._router_stats.routed_ops[shard_id] += ops

    def global_address(self, shard_id: int, local_address: int) -> int:
        """Map a shard-local bucket address into the global address space."""
        return int(self.shard_bases[shard_id]) + local_address

    def _globalize(self, shard_id: int, report: OperationReport) -> OperationReport:
        """Re-key a shard-local report's address to the global space.

        Clusters stay shard-local (each shard has its own model, so a
        cluster id only means something next to its shard's centroids).
        """
        return dataclasses.replace(
            report, address=self.global_address(shard_id, report.address)
        )

    def _map_shards(
        self, tasks: dict[int, Callable[[], Any]]
    ) -> tuple[dict[int, Any], dict[int, BaseException]]:
        """Run one thunk per shard, concurrently when it pays.

        Every task runs to completion (a failing shard never interrupts
        its siblings mid-sub-batch); exceptions are collected, not
        raised.  Single-task maps and closed stores run inline.
        """
        results: dict[int, Any] = {}
        errors: dict[int, BaseException] = {}
        if self._executor is None or len(tasks) <= 1:
            for shard_id in sorted(tasks):
                try:
                    results[shard_id] = tasks[shard_id]()
                except Exception as exc:  # noqa: BLE001 - re-raised by caller
                    errors[shard_id] = exc
            return results, errors
        futures = {
            shard_id: self._executor.submit(task)
            for shard_id, task in tasks.items()
        }
        for shard_id, future in futures.items():
            exc = future.exception()
            if exc is not None:
                errors[shard_id] = exc
            else:
                results[shard_id] = future.result()
        return results, errors

    def _raise_merged(
        self,
        errors: dict[int, BaseException],
        results: dict[int, list[OperationReport]],
    ) -> None:
        """Re-raise the lowest shard's error after all shards settled.

        For pool exhaustion and mid-batch missing keys the engine stamps
        the exception with ``committed_reports``; the sharded form
        aggregates them across shards — every sibling shard's full
        sub-batch plus the failing shards' committed prefixes, grouped
        shard by shard (concurrent shards have no global commit order)
        with global addresses.
        """
        first = errors[min(errors)]
        if isinstance(
            first, (PoolExhaustedError, KeyNotFoundError, DegradedModeError)
        ):
            committed: list[OperationReport] = []
            for shard_id in sorted(set(results) | set(errors)):
                reports = (
                    results[shard_id]
                    if shard_id in results
                    else getattr(errors[shard_id], "committed_reports", [])
                )
                committed.extend(
                    self._globalize(shard_id, report) for report in reports
                )
            first.committed_reports = committed
        raise first

    def _run_batch(
        self,
        items: list,
        shard_ids: list[int],
        op: Callable[[PNWStore, list], list[OperationReport]],
    ) -> list[OperationReport]:
        """Split a batch by shard, run sub-batches concurrently, and
        reassemble per-shard reports into input order."""
        groups: list[list[int]] = [[] for _ in range(self.n_shards)]
        for position, shard_id in enumerate(shard_ids):
            groups[shard_id].append(position)
        with self._stats_lock:
            for shard_id, positions in enumerate(groups):
                self._router_stats.routed_ops[shard_id] += len(positions)
        tasks: dict[int, Callable[[], list[OperationReport]]] = {}
        for shard_id, positions in enumerate(groups):
            if positions:
                sub = [items[position] for position in positions]

                def task(
                    store=self.stores[shard_id],
                    sub=sub,
                    lock=self._shard_locks[shard_id],
                ):
                    with lock:
                        return op(store, sub)

                tasks[shard_id] = task
        results, errors = self._map_shards(tasks)
        if errors:
            self._raise_merged(errors, results)
        out: list[OperationReport | None] = [None] * len(items)
        for shard_id, reports in results.items():
            for position, report in zip(groups[shard_id], reports):
                out[position] = self._globalize(shard_id, report)
        return out  # type: ignore[return-value]

    def run_shard_batches(
        self, batches: dict[int, list[tuple[str, list]]]
    ) -> dict[int, list[tuple[list[OperationReport] | None, BaseException | None]]]:
        """Execute pre-routed per-shard batch sequences concurrently.

        The drain path of :class:`repro.ingest.IngestQueue`: ``batches``
        maps a shard id to an ordered list of ``(kind, items)`` runs,
        where ``kind`` is ``"put"`` / ``"update"`` / ``"delete"`` and
        ``items`` the corresponding ``*_many`` argument.  Each shard's
        runs execute in order on that shard's engine; shards run
        concurrently on the store's thread pool.  Runs are independent:
        a failing run does not stop the shard's later runs.

        Returns, per shard, one ``(reports, error)`` pair per run —
        reports (and any ``committed_reports`` stamped on an error) are
        remapped to global addresses.  Reentrant: each shard's run
        sequence executes under that shard's lock, so concurrent calls
        (and concurrent single-op/``get`` traffic) are safe, though a
        shard's runs from different calls interleave in lock-acquisition
        order — callers needing a strict global order must serialize.
        """
        def globalize_outcome(shard_id, reports, exc):
            if exc is not None:
                committed = getattr(exc, "committed_reports", None)
                if committed is not None:
                    exc.committed_reports = [
                        self._globalize(shard_id, report)
                        for report in committed
                    ]
                return (None, exc)
            return (
                [self._globalize(shard_id, report) for report in reports],
                None,
            )

        def run_shard(shard_id: int, runs: list[tuple[str, list]]):
            store = self.stores[shard_id]
            with self._shard_locks[shard_id]:
                if isinstance(store, ShardProcessClient):
                    # One round-trip per run *sequence*: the worker
                    # executes the ordered runs locally and returns the
                    # per-run outcomes with shard-local addresses.  A
                    # worker death mid-sequence (the zone has already
                    # been recovered by the client) becomes one
                    # WorkerCrashedError outcome per run, so the drain
                    # path can retry them like any other failed run.
                    try:
                        raw = store.run_sequence(runs)
                    except WorkerCrashedError as exc:
                        return [(None, exc) for _ in runs]
                    return [
                        globalize_outcome(shard_id, reports, exc)
                        for reports, exc in raw
                    ]
                ops = {
                    "put": store.put_many,
                    "update": store.update_many,
                    "delete": store.delete_many,
                }
                outcomes: list[tuple[list[OperationReport] | None,
                                     BaseException | None]] = []
                for kind, items in runs:
                    try:
                        reports = ops[kind](items)
                    except Exception as exc:  # noqa: BLE001 - routed to futures
                        outcomes.append(globalize_outcome(shard_id, None, exc))
                    else:
                        outcomes.append(
                            globalize_outcome(shard_id, reports, None)
                        )
            return outcomes

        tasks = {
            shard_id: (lambda shard_id=shard_id, runs=runs:
                       run_shard(shard_id, runs))
            for shard_id, runs in batches.items()
            if runs
        }
        # Pinned: the batches were routed under the caller's view of the
        # table, so no migration may slide between routing and execution.
        # Reentrant for the ingest drain, which pins around the whole
        # route-and-dispatch sequence.
        with self._epoch.read_locked():
            with self._stats_lock:
                for shard_id, runs in batches.items():
                    self._router_stats.routed_ops[shard_id] += sum(
                        len(items) for _, items in runs
                    )
            results, errors = self._map_shards(tasks)
        if errors:  # pragma: no cover - run_shard captures its exceptions
            raise errors[min(errors)]
        return results

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #

    def warm_up(self, old_data: np.ndarray) -> None:
        """Fill the zones with "old data" and train every shard's model.

        Rows are dealt to shards as contiguous slices of the global
        address space (shard ``s`` gets rows ``[base(s), base(s+1))``),
        so a full-zone warm-up leaves the concatenated shard zones
        byte-identical to a single store warmed with the same matrix.
        Every shard warms up — a shard whose slice is empty (partial
        warm-up) trains on its zeroed zone, exactly as a single store
        given fewer rows than buckets does.  Shard training runs
        concurrently.  Quiesces the store first (all shard locks,
        ascending) so in-flight batches finish before zones are loaded.
        """
        old_data = np.atleast_2d(np.ascontiguousarray(old_data, dtype=np.uint8))
        if old_data.shape[0] > self.config.num_buckets:
            raise ValueError(
                f"{old_data.shape[0]} warm-up rows exceed the "
                f"{self.config.num_buckets}-bucket zone"
            )
        tasks: dict[int, Callable[[], None]] = {}
        for shard_id, store in enumerate(self.stores):
            rows = old_data[
                self.shard_bases[shard_id] : self.shard_bases[shard_id + 1]
            ]
            tasks[shard_id] = lambda store=store, rows=rows: store.warm_up(rows)
        with self._quiesced():
            _, errors = self._map_shards_quiesced(tasks)
        if errors:
            raise errors[min(errors)]

    def retrain(self) -> None:
        """Retrain every shard's model on its own zone, concurrently
        (quiesced: waits out in-flight batches, excludes new ones)."""
        with self._quiesced():
            _, errors = self._map_shards_quiesced(
                {i: store.retrain for i, store in enumerate(self.stores)}
            )
        if errors:
            raise errors[min(errors)]

    def crash(self) -> None:
        """Power-fail every shard: all DRAM state is dropped.

        Quiesced like every lifecycle call: a ``crash()`` issued while
        ``run_shard_batches`` traffic is in flight waits for the running
        sub-batches to finish, so the "power failure" lands at a
        deterministic batch boundary on every shard.
        """
        with self._quiesced():
            _, errors = self._map_shards_quiesced(
                {i: store.crash for i, store in enumerate(self.stores)}
            )
        if errors:
            raise errors[min(errors)]

    def recover(self) -> None:
        """Rebuild every shard from its own NVM state, concurrently.

        Shards recover independently — a shard torn mid-flush loses only
        its own unflagged operations; sibling shards come back whole.
        Quiesced (all shard locks, ascending) like ``crash()``.

        When the routing table has ever been edited (``version > 0``), a
        post-recovery sweep reconciles migration orphans: a crash
        between a bucket migration's copy and its donor delete leaves
        keys resident off their routed shard.  The table is
        authoritative — the routed owner's copy wins (it always carries
        the key's latest committed value), strays are deleted, and a
        stray whose owner lost its copy to the crash is moved home.  A
        key is therefore never lost and never double-owned after
        ``recover()`` returns.
        """
        with self._quiesced():
            _, errors = self._map_shards_quiesced(
                {i: store.recover for i, store in enumerate(self.stores)}
            )
            # Sweep whenever a migration *could* have run: a crash
            # before the first-ever table flip leaves orphans at
            # version 0, so the version alone can't gate it.
            if not errors and (
                self.rebalance_enabled or self._router.version > 0
            ):
                self._sweep_misplaced_quiesced()
        if errors:
            raise errors[min(errors)]

    def _sweep_misplaced_quiesced(self) -> None:
        """Delete (or re-home) every key resident off its routed shard.
        Caller holds all shard locks."""
        swept = 0
        for shard_id, shard_store in enumerate(self.stores):
            keys = [key for key, _ in list(shard_store.index.items())]
            if not keys:
                continue
            owners = self._router.assign_hashes(hash_keys(keys)).tolist()
            strays = [
                key
                for key, owner in zip(keys, owners)
                if owner != shard_id
            ]
            if not strays:
                continue
            for key, owner in zip(keys, owners):
                if owner == shard_id:
                    continue
                owner_store = self.stores[owner]
                if key not in owner_store:
                    # The owner lost its copy to the crash; this stray
                    # holds the only committed value — move it home.
                    owner_store.put_many([(key, shard_store.get(key))])
            shard_store.delete_many(strays)
            swept += len(strays)
        if swept:
            with self._stats_lock:
                self._router_stats.orphans_swept += swept

    # ------------------------------------------------------------------ #
    # K/V operations                                                      #
    # ------------------------------------------------------------------ #

    def put(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """Route one PUT to its shard (Algorithm 2 there)."""
        self.rebalance_check()
        with self._epoch.read_locked():
            shard_id = self.shard_of_key(key)
            self._count_routed(shard_id)
            with self._shard_locks[shard_id]:
                return self._globalize(
                    shard_id, self.stores[shard_id].put(key, value)
                )

    def put_unique(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """PUT that refuses to overwrite, routed to the owning shard."""
        self.rebalance_check()
        with self._epoch.read_locked():
            shard_id = self.shard_of_key(key)
            self._count_routed(shard_id)
            with self._shard_locks[shard_id]:
                return self._globalize(
                    shard_id, self.stores[shard_id].put_unique(key, value)
                )

    def put_many(
        self,
        pairs: Iterable[tuple[bytes, bytes | np.ndarray]],
        *,
        unique: bool = False,
    ) -> list[OperationReport]:
        """Batched PUT across shards; reports come back in input order.

        With ``unique=True`` the whole batch is validated against every
        shard's index *before* anything is dispatched, so a duplicate
        anywhere rejects the batch with no shard mutated — the same
        :func:`repro.engine.plan.check_unique` implementation (and error
        text) as the single store's ``unique`` path, with per-shard
        routing as the membership test.
        """
        items = list(pairs)
        self.rebalance_check(len(items))
        with self._epoch.read_locked():
            keys = [
                KeyIndex.normalize_key(key, self.config.key_bytes)
                for key, _ in items
            ]
            shard_ids = self._assign(keys)
            if unique:
                owner = dict(zip(keys, shard_ids))
                check_unique(
                    keys, lambda key: key in self.stores[owner[key]]
                )
            return self._run_batch(
                items, shard_ids, lambda store, sub: store.put_many(sub)
            )

    def update_many(
        self, pairs: Iterable[tuple[bytes, bytes | np.ndarray]]
    ) -> list[OperationReport]:
        """Batched UPDATE across shards; reports in input order."""
        items = list(pairs)
        self.rebalance_check(len(items))
        with self._epoch.read_locked():
            keys = [
                KeyIndex.normalize_key(key, self.config.key_bytes)
                for key, _ in items
            ]
            return self._run_batch(
                items,
                self._assign(keys),
                lambda store, sub: store.update_many(sub),
            )

    def delete_many(self, keys: Iterable[bytes]) -> list[OperationReport]:
        """Batched DELETE across shards; reports in input order."""
        normalized = [
            KeyIndex.normalize_key(key, self.config.key_bytes) for key in keys
        ]
        self.rebalance_check(len(normalized))
        with self._epoch.read_locked():
            return self._run_batch(
                normalized,
                self._assign(normalized),
                lambda store, sub: store.delete_many(sub),
            )

    def update(self, key: bytes, value: bytes | np.ndarray) -> OperationReport:
        """Route one UPDATE to its shard."""
        self.rebalance_check()
        with self._epoch.read_locked():
            shard_id = self.shard_of_key(key)
            self._count_routed(shard_id)
            with self._shard_locks[shard_id]:
                return self._globalize(
                    shard_id, self.stores[shard_id].update(key, value)
                )

    def delete(self, key: bytes) -> OperationReport:
        """Route one DELETE to its shard (Algorithm 3 there)."""
        self.rebalance_check()
        with self._epoch.read_locked():
            shard_id = self.shard_of_key(key)
            self._count_routed(shard_id)
            with self._shard_locks[shard_id]:
                return self._globalize(
                    shard_id, self.stores[shard_id].delete(key)
                )

    def get(self, key: bytes) -> bytes:
        """Route a GET to its shard: index lookup + data-zone read.

        Takes only the owning shard's lock (under a routing pin), so
        reads proceed concurrently with other shards' writes.
        """
        with self._epoch.read_locked():
            shard_id = self.shard_of_key(key)
            self._count_routed(shard_id)
            with self._shard_locks[shard_id]:
                return self.stores[shard_id].get(key)

    # ------------------------------------------------------------------ #
    # aggregation / introspection                                         #
    # ------------------------------------------------------------------ #

    @property
    def metrics(self) -> StoreMetrics:
        """Merged operation counters (a fresh snapshot on every access).

        Kept reports carry *global* addresses, consistent with the
        reports the mutation calls return and with
        :meth:`wear_stats`'s per-address arrays.  Because this is a
        snapshot, assigning to it (e.g. the single-store idiom
        ``store.metrics.keep_reports = True``) has no effect — use
        :meth:`set_keep_reports`.
        """
        parts = [store.metrics for store in self.stores]
        merged = StoreMetrics.merge(parts)
        merged.reports = [
            self._globalize(shard_id, report)
            for shard_id, part in enumerate(parts)
            for report in part.reports
        ]
        return merged

    def set_keep_reports(self, keep: bool) -> None:
        """Toggle per-operation report retention on every shard."""
        for store in self.stores:
            if isinstance(store, ShardProcessClient):
                # ``store.metrics`` is an RPC snapshot here; set the flag
                # on the worker-resident object instead.
                store.set_keep_reports(keep)
            else:
                store.metrics.keep_reports = keep

    def media_stats(self) -> MediaStats:
        """Merged media-health counters across shards (a snapshot)."""
        return MediaStats.merge([store.media_stats for store in self.stores])

    @property
    def degraded(self) -> bool:
        """True when any shard is past its media retirement watermark —
        a batch touching that shard will be shed with
        :class:`~repro.errors.DegradedModeError`."""
        return any(store.degraded for store in self.stores)

    def scrub(self, limit: int | None = None) -> dict[str, int]:
        """One patrol-scrub pass on every shard, quiesced like the other
        lifecycle calls (all shard locks, ascending).  ``limit`` caps the
        rows scanned *per shard*.  Returns the summed pass counters; a
        media alarm from the lowest shard re-raises after every shard's
        pass settles."""
        with self._quiesced():
            results, errors = self._map_shards_quiesced(
                {
                    i: (lambda store=store: store.scrub(limit))
                    for i, store in enumerate(self.stores)
                }
            )
        if errors:
            raise errors[min(errors)]
        totals: dict[str, int] = {}
        for counters in results.values():
            for name, value in counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def wear_stats(self) -> WearStats:
        """Merged data-zone wear accounting across shards.

        Per-address counters are laid out in the global address space
        (shard order), so :meth:`WearStats.address_write_cdf` /
        :meth:`WearStats.bit_wear_cdf` on the result are the whole-store
        Figures 12/13 curves.  A snapshot — re-merge after more ops.
        """
        return WearStats.merge([store.nvm.stats for store in self.stores])

    def wear_summary(self) -> dict[str, float]:
        """Headline counters of the merged data-zone wear."""
        return self.wear_stats().summary()

    def address_write_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Whole-store per-address write CDF (paper Fig. 12, all shards)."""
        return self.wear_stats().address_write_cdf()

    def bit_wear_cdf(self) -> tuple[np.ndarray, np.ndarray]:
        """Whole-store per-bit wear CDF (paper Fig. 13, all shards)."""
        return self.wear_stats().bit_wear_cdf()

    @property
    def total_free(self) -> int:
        """Free addresses across every shard's pool."""
        return sum(store.pool.total_free for store in self.stores)

    @property
    def live_fraction(self) -> float:
        """Occupied fraction of the combined data zones."""
        return len(self) / self.config.num_buckets

    def __contains__(self, key: bytes) -> bool:
        with self._epoch.read_locked():
            return key in self.stores[self.shard_of_key(key)]

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

"""Sharded PNW: hash-partitioned zones with concurrent batch pipelines."""

from .procpool import ShardProcessClient
from .rebalance import POLICIES, Rebalancer
from .router import (
    ROUTER_SEED,
    RouterStats,
    RoutingTable,
    assign_shards,
    hash_keys,
    shard_of,
)
from .store import ShardedPNWStore, make_store, shard_configs

__all__ = [
    "POLICIES",
    "ROUTER_SEED",
    "Rebalancer",
    "RouterStats",
    "RoutingTable",
    "ShardProcessClient",
    "ShardedPNWStore",
    "assign_shards",
    "hash_keys",
    "make_store",
    "shard_configs",
    "shard_of",
]

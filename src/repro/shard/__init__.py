"""Sharded PNW: hash-partitioned zones with concurrent batch pipelines."""

from .procpool import ShardProcessClient
from .router import ROUTER_SEED, assign_shards, shard_of
from .store import ShardedPNWStore, make_store, shard_configs

__all__ = [
    "ROUTER_SEED",
    "ShardProcessClient",
    "ShardedPNWStore",
    "assign_shards",
    "make_store",
    "shard_configs",
    "shard_of",
]

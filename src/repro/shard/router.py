"""Key-to-shard routing: virtual-bucket indirection over a stable hash.

Routing used to be a pure function of the key (``hash % n_shards``).
That bakes in the assumption that every shard's pool drains evenly —
on skewed streams one shard exhausts while siblings idle.  This module
splits routing into two layers:

* a **stable hash** of the normalized key into a fixed universe of
  *virtual buckets* (``vbuckets_per_shard * n_shards`` of them), still
  the repo's seeded FNV-1a under the dedicated router seed; and
* a :class:`RoutingTable` mapping virtual bucket → shard, which the
  rebalancer (:mod:`repro.shard.rebalance`) may edit at run time to
  shift whole buckets of keys between zones.

The table's *default* layout maps bucket ``b`` to ``b % n_shards``,
which composes with the hash to ``(h % (V * n)) % n == h % n`` — i.e.
exactly the old direct-hash routing, for any virtual-bucket multiple.
A store that never rebalances is therefore bit-identical to the
pre-table layout, and ``version == 0`` means "still the FNV default".

The table is versioned: every bucket move bumps ``version``, which the
ingestion layer checks at dispatch (a *routing epoch*) to re-route
batches that were laned under an older table.  For process-executor
stores the table and its version can be backed by a shared-memory
region (:class:`~repro.nvm.shm.ZoneLayout` ``routing`` /
``routing_meta``), so respawned workers and crash/recover cycles agree
on ownership.

The batch hash (:func:`hash_keys`) is vectorized: the normalized-key
matrix is folded column by column with NumPy uint64 arithmetic (which
wraps exactly like the scalar loop's explicit masking), so routing a
10k-key batch costs ``key_bytes`` array ops instead of 10k Python-level
FNV loops.  :func:`assign_shards` keeps its historical signature on top
of it.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from ..index.base import _FNV_OFFSET, _FNV_PRIME, KeyIndex, stable_hash64

__all__ = [
    "ROUTER_SEED",
    "RouterStats",
    "RoutingTable",
    "assign_shards",
    "hash_keys",
    "shard_of",
]

#: Seed deriving the routing hash; distinct from every index-side seed.
ROUTER_SEED = 0x5A4D

_MASK64 = 0xFFFFFFFFFFFFFFFF


def hash_keys(
    normalized_keys: list[bytes], seed: int = ROUTER_SEED
) -> np.ndarray:
    """Vectorized :func:`~repro.index.base.stable_hash64` over a batch.

    Keys must already be normalized to one fixed width (the batch entry
    points normalize up front).  Returns a ``uint64`` hash per key,
    bit-identical to the scalar FNV-1a loop: NumPy's uint64 arithmetic
    wraps modulo 2**64, which is exactly the scalar path's explicit
    ``& 0xFFFF...`` masking.
    """
    n = len(normalized_keys)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    matrix = np.frombuffer(b"".join(normalized_keys), dtype=np.uint8)
    key_bytes = matrix.size // n
    matrix = matrix.reshape(n, key_bytes)
    init = (_FNV_OFFSET ^ (seed * 0x9E3779B97F4A7C15)) & _MASK64
    values = np.full(n, init, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    for column in range(key_bytes):
        values ^= matrix[:, column].astype(np.uint64)
        values *= prime
    return values


def shard_of(key: bytes, n_shards: int, key_bytes: int) -> int:
    """Shard owning ``key`` under the *default* (table-free) layout."""
    normalized = KeyIndex.normalize_key(key, key_bytes)
    return stable_hash64(normalized, seed=ROUTER_SEED) % n_shards


def assign_shards(normalized_keys: list[bytes], n_shards: int) -> list[int]:
    """Owning shard per key under the default layout, vectorized.

    Keys must already be normalized to the store's key width.  This is
    the historical batch-routing entry point; a table-routing store goes
    through :meth:`RoutingTable.assign_hashes` instead (which reduces to
    this while the table holds its default layout).
    """
    return (
        (hash_keys(normalized_keys) % np.uint64(n_shards))
        .astype(np.int64)
        .tolist()
    )


class RoutingTable:
    """Versioned virtual-bucket → shard indirection.

    ``n_shards * vbuckets_per_shard`` virtual buckets; a key's bucket is
    ``hash % n_vbuckets`` and its shard is ``table[bucket]``.  The
    default table (``bucket % n_shards``) composes to the plain
    ``hash % n_shards`` routing, so a never-rebalanced store is
    bit-identical to the pre-table layout.

    ``table``/``meta`` optionally back the entries with shared-memory
    views (``meta`` is ``int64[4]``: version, n_shards, n_vbuckets,
    reserved).  A fresh zero-filled segment is detected by
    ``meta[1] == 0`` and initialized to the default layout; a reattached
    segment is validated against the requested geometry and used as-is,
    so every process mapping the segment agrees on ownership.
    """

    #: int64 slots of the ``meta`` region: version, n_shards,
    #: n_vbuckets, reserved.
    META_SLOTS = 4

    def __init__(
        self,
        n_shards: int,
        vbuckets_per_shard: int = 64,
        *,
        table: np.ndarray | None = None,
        meta: np.ndarray | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if vbuckets_per_shard < 1:
            raise ValueError(
                f"vbuckets_per_shard must be >= 1, got {vbuckets_per_shard}"
            )
        if (table is None) != (meta is None):
            raise ValueError("table and meta must be provided together")
        self.n_shards = n_shards
        self.n_vbuckets = n_shards * vbuckets_per_shard
        if table is None:
            table = self._default_table()
            meta = np.zeros(self.META_SLOTS, dtype=np.int64)
            meta[1] = n_shards
            meta[2] = self.n_vbuckets
        else:
            table = np.asarray(table)
            meta = np.asarray(meta)
            if table.shape != (self.n_vbuckets,):
                raise ValueError(
                    f"routing table has {table.shape[0]} slots; this store "
                    f"needs {self.n_vbuckets}"
                )
            if int(meta[1]) == 0:
                # Fresh zero-filled segment: install the default layout.
                table[:] = self._default_table()
                meta[0] = 0
                meta[1] = n_shards
                meta[2] = self.n_vbuckets
            elif (
                int(meta[1]) != n_shards or int(meta[2]) != self.n_vbuckets
            ):
                raise ValueError(
                    f"persisted routing geometry ({int(meta[1])} shards x "
                    f"{int(meta[2])} vbuckets) does not match this store "
                    f"({n_shards} x {self.n_vbuckets})"
                )
        self._table = table
        self._meta = meta

    def _default_table(self) -> np.ndarray:
        return (
            np.arange(self.n_vbuckets, dtype=np.int32)
            % np.int32(self.n_shards)
        )

    # ------------------------------------------------------------------ #
    # lookups                                                             #
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """Routing epoch: bumped on every bucket move.  ``0`` means the
        table still holds the default (pure-FNV) layout."""
        return int(self._meta[0])

    @property
    def is_default(self) -> bool:
        """Whether the table equals the default ``bucket % n_shards``
        layout (regardless of version)."""
        return bool(np.array_equal(self._table, self._default_table()))

    def bucket_of_hash(self, key_hash: int) -> int:
        return int(key_hash % self.n_vbuckets)

    def shard_of_hash(self, key_hash: int) -> int:
        return int(self._table[key_hash % self.n_vbuckets])

    def shard_of_bucket(self, bucket: int) -> int:
        return int(self._table[bucket])

    def assign_hashes(self, hashes: np.ndarray) -> np.ndarray:
        """Shard per key hash (``int32`` array), one fancy-index op."""
        return self._table[hashes % np.uint64(self.n_vbuckets)]

    def buckets_of_shard(self, shard_id: int) -> np.ndarray:
        return np.flatnonzero(self._table == shard_id)

    def snapshot(self) -> np.ndarray:
        return self._table.copy()

    # ------------------------------------------------------------------ #
    # edits                                                               #
    # ------------------------------------------------------------------ #

    def move(self, bucket: int, shard_id: int) -> None:
        """Reassign one virtual bucket and bump the routing epoch.

        The caller (the rebalancer) flips the entry only *after* the
        bucket's keys are fully copied to ``shard_id``, so a reader that
        observes the new epoch always finds the keys at their new home.
        """
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard {shard_id} out of range")
        if not 0 <= bucket < self.n_vbuckets:
            raise ValueError(f"virtual bucket {bucket} out of range")
        self._table[bucket] = shard_id
        self._meta[0] += 1

    def detach(self) -> None:
        """Swap shared-memory views for private copies (pre-unlink)."""
        self._table = self._table.copy()
        self._meta = self._meta.copy()


@dataclasses.dataclass
class RouterStats:
    """Routing-layer counters, mergeable like :class:`WearStats` /
    ``TierStats`` / ``MediaStats``.

    * ``routed_ops`` — K/V operations routed per shard (list indexed by
      shard id; merge is elementwise).
    * ``bucket_moves`` — virtual-bucket table flips applied.
    * ``keys_migrated`` — keys copied + deleted across zones by
      completed bucket migrations.
    * ``migration_batches`` — engine-stage batches issued by migrations
      (copy and delete sides both count).
    * ``migration_batches_retried`` — migration batches re-issued after
      a worker-process crash.
    * ``rebalances`` — watermark-triggered rebalance passes that moved
      at least one bucket.
    * ``orphans_swept`` — keys found off their routed shard during
      ``recover()`` (a crash between a migration's copy and its donor
      delete) and reconciled.
    """

    routed_ops: list[int] = dataclasses.field(default_factory=list)
    bucket_moves: int = 0
    keys_migrated: int = 0
    migration_batches: int = 0
    migration_batches_retried: int = 0
    rebalances: int = 0
    orphans_swept: int = 0

    @classmethod
    def for_shards(cls, n_shards: int) -> "RouterStats":
        return cls(routed_ops=[0] * n_shards)

    def snapshot(self) -> "RouterStats":
        return dataclasses.replace(self, routed_ops=list(self.routed_ops))

    @classmethod
    def merge(cls, parts: Iterable["RouterStats"]) -> "RouterStats":
        """Sum snapshots: scalar counters field-generically, the
        per-shard ``routed_ops`` list elementwise."""
        parts = list(parts)
        if not parts:
            raise ValueError("merge() needs at least one RouterStats")
        width = max(len(part.routed_ops) for part in parts)
        merged = cls(routed_ops=[0] * width)
        for part in parts:
            for shard_id, count in enumerate(part.routed_ops):
                merged.routed_ops[shard_id] += count
            for spec in dataclasses.fields(cls):
                if spec.name == "routed_ops":
                    continue
                setattr(
                    merged,
                    spec.name,
                    getattr(merged, spec.name) + getattr(part, spec.name),
                )
        return merged

    def as_dict(self) -> dict:
        out = {
            spec.name: getattr(self, spec.name)
            for spec in dataclasses.fields(self)
        }
        out["routed_ops"] = list(self.routed_ops)
        return out

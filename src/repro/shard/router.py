"""Key-to-shard routing for the hash-partitioned store.

Shard choice must be a pure function of the (normalized) key: the same
key always lands on the same shard across puts, gets, updates, deletes,
and crash/recovery cycles, with no routing table to persist.  We reuse
the repo's seeded FNV-1a (``stable_hash64``) under a dedicated seed so
shard routing is statistically independent of the hash index's own
bucket choice — correlated hashes would funnel one index bucket's keys
into one shard and skew the partition.
"""

from __future__ import annotations

from ..index.base import KeyIndex, stable_hash64

__all__ = ["ROUTER_SEED", "assign_shards", "shard_of"]

#: Seed deriving the routing hash; distinct from every index-side seed.
ROUTER_SEED = 0x5A4D


def shard_of(key: bytes, n_shards: int, key_bytes: int) -> int:
    """Shard owning ``key`` (normalized to the store's key width)."""
    normalized = KeyIndex.normalize_key(key, key_bytes)
    return stable_hash64(normalized, seed=ROUTER_SEED) % n_shards


def assign_shards(normalized_keys: list[bytes], n_shards: int) -> list[int]:
    """Owning shard per key — the batch path's one-hash-per-key form.

    Keys must already be normalized to the store's key width (the batch
    entry points normalize once up front); each key is hashed exactly
    once here and the result reused for routing, uniqueness pre-checks,
    and report reassembly.
    """
    return [
        stable_hash64(key, seed=ROUTER_SEED) % n_shards
        for key in normalized_keys
    ]

"""Live shard rebalancing: watermark triggers + virtual-bucket migration.

FNV routing assumes every zone's pool drains evenly; skewed streams
empty one shard while siblings idle.  This module treats key→shard
assignment as a balanced-partition problem over the router's virtual
buckets (:class:`~repro.shard.router.RoutingTable`): a
:class:`Rebalancer` watches per-shard pool-occupancy (and optionally
wear) watermarks and, when a shard is starved while a meaningfully
freer sibling exists, migrates whole virtual buckets of keys between
zones.

**Migrations are engine-stage batches.**  A bucket moves as ordinary
``get_many`` (donor) → ``put_many`` (recipient) → ``delete_many``
(donor) calls straight into the per-shard stores, so prefix-commit,
write-verify, media relocation, and crash/recovery semantics all carry
over unchanged — there is no second write path.  The ordering is
crash-safe the same way the scrubber's live-row relocation is:

1. copy the bucket's keys to the recipient (in ``rebalance_max_keys``
   chunks);
2. flip the routing-table entry (bumping the routing epoch);
3. delete the copies from the donor.

A crash before the flip leaves the donor authoritative (the recipient
holds unreferenced duplicates); a crash after it leaves the recipient
authoritative (the donor holds the duplicates).  Either way every key
is readable at its routed home with its latest value, and a key is
never lost or double-owned — ``ShardedPNWStore.recover`` sweeps the
losing copies.  A recipient that runs out of healthy rows mid-copy
aborts the bucket (the partial copy is deleted, the table never
flips).

Locking: the rebalancer runs under the store's **routing latch** (a
writer-preferring read/write lock).  K/V paths pin the routing epoch
with a read hold around route-and-execute; the rebalancer takes the
write side and then quiesces the store (every shard lock, ascending),
so a migration observes no concurrent mutations and routing never
changes under a pinned reader.  Lock order is always latch → shard
locks, so the discipline stays cycle-free.  Retrain checks are
deferred during migration batches (``MutationEngine.defer_retrain``):
a full K-Means refit inside the all-locks migration window would stall
every producer.

Policies are pluggable via ``PNWConfig.rebalance_policy``:

========== ============================================================
greedy      repeated best-single-move local search minimizing the
            maximum fractional shard load, warm-started from the
            current table (the balanced-districting flavour).
hot_bucket  move only the single heaviest bucket off the most loaded
            shard per pass (minimal-churn flavour).
========== ============================================================
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

from ..errors import (
    DegradedModeError,
    KeyNotFoundError,
    PoolExhaustedError,
    WorkerCrashedError,
)
from .router import hash_keys

__all__ = [
    "POLICIES",
    "Rebalancer",
    "RoutingLatch",
    "SimulatedRebalanceCrash",
    "greedy_moves",
    "hot_bucket_moves",
]


class SimulatedRebalanceCrash(RuntimeError):
    """Test seam: a crash injected at a migration crash point."""


class RoutingLatch:
    """Writer-preferring read/write lock over the routing epoch.

    Readers (K/V paths) pin the current routing table around
    route-and-execute; the single writer (the rebalancer) excludes them
    while it edits the table.  Reads are reentrant per thread (the
    ingest dispatch path pins once and then calls store entry points
    that pin again); a thread holding a read pin must not take the
    write side — that raises instead of deadlocking.  Waiting writers
    block *new* readers (writer preference) so a steady K/V stream
    cannot starve a rebalance forever.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._local = threading.local()

    def read_depth(self) -> int:
        """This thread's reentrant read-hold depth."""
        return getattr(self._local, "depth", 0)

    @contextlib.contextmanager
    def read_locked(self):
        depth = self.read_depth()
        if depth:
            self._local.depth = depth + 1
            try:
                yield
            finally:
                self._local.depth = depth
            return
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write_locked(self):
        if self.read_depth():
            raise RuntimeError(
                "cannot take the routing write latch while holding a "
                "read pin (would self-deadlock)"
            )
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


# ---------------------------------------------------------------------- #
# move policies                                                           #
# ---------------------------------------------------------------------- #

def _improves(load, capacities, donor, recipient, count) -> bool:
    """Whether moving ``count`` keys donor→recipient lowers the pair's
    maximum fractional load (the local-search acceptance test)."""
    before = max(load[donor] / capacities[donor],
                 load[recipient] / capacities[recipient])
    after = max((load[donor] - count) / capacities[donor],
                (load[recipient] + count) / capacities[recipient])
    return after < before


def _recipient_order(load, capacities, wear) -> np.ndarray:
    """Shards by ascending fractional load; mean wear breaks near-ties
    toward the least-worn shard when the wear trigger is armed."""
    frac = load / capacities
    if wear is None:
        return np.argsort(frac, kind="stable")
    worn = wear / max(float(wear.max()), 1.0)
    return np.argsort(frac + 1e-6 * worn, kind="stable")


def greedy_moves(
    bucket_counts: np.ndarray,
    table: np.ndarray,
    capacities: np.ndarray,
    wear: np.ndarray | None = None,
    max_moves: int | None = None,
) -> list[tuple[int, int]]:
    """Repeated best-single-move local search, warm-started from
    ``table``: move the heaviest improving bucket from the most loaded
    shard (fractionally) to the least loaded, until no single move
    lowers the pair's maximum load.  Returns ``(bucket, recipient)``
    moves in application order.
    """
    table = table.copy()
    capacities = np.asarray(capacities, dtype=np.float64)
    n_shards = len(capacities)
    load = np.zeros(n_shards, dtype=np.int64)
    for shard in range(n_shards):
        load[shard] = int(bucket_counts[table == shard].sum())
    if max_moves is None:
        max_moves = len(table)
    moves: list[tuple[int, int]] = []
    for _ in range(max_moves):
        frac = load / capacities
        donor = int(np.argmax(frac))
        best: tuple[int, int] | None = None
        for candidate in _recipient_order(load, capacities, wear):
            recipient = int(candidate)
            if recipient == donor:
                continue
            owned = np.flatnonzero(table == donor)
            counts = bucket_counts[owned]
            order = np.argsort(counts, kind="stable")[::-1]
            for slot in order:
                count = int(counts[slot])
                if count <= 0:
                    break
                if _improves(load, capacities, donor, recipient, count):
                    best = (int(owned[slot]), recipient)
                    break
            if best is not None:
                break
        if best is None:
            break
        bucket, recipient = best
        count = int(bucket_counts[bucket])
        table[bucket] = recipient
        load[donor] -= count
        load[recipient] += count
        moves.append((bucket, recipient))
    return moves


def hot_bucket_moves(
    bucket_counts: np.ndarray,
    table: np.ndarray,
    capacities: np.ndarray,
    wear: np.ndarray | None = None,
    max_moves: int | None = None,
) -> list[tuple[int, int]]:
    """Minimal-churn policy: one move per pass — the heaviest bucket of
    the most loaded shard to the least loaded shard, if it improves."""
    capacities = np.asarray(capacities, dtype=np.float64)
    n_shards = len(capacities)
    load = np.zeros(n_shards, dtype=np.int64)
    for shard in range(n_shards):
        load[shard] = int(bucket_counts[table == shard].sum())
    donor = int(np.argmax(load / capacities))
    owned = np.flatnonzero(table == donor)
    if owned.size == 0:
        return []
    bucket = int(owned[int(np.argmax(bucket_counts[owned]))])
    count = int(bucket_counts[bucket])
    if count <= 0:
        return []
    for candidate in _recipient_order(load, capacities, wear):
        recipient = int(candidate)
        if recipient == donor:
            continue
        if _improves(load, capacities, donor, recipient, count):
            return [(bucket, recipient)]
        break
    return []


POLICIES = {"greedy": greedy_moves, "hot_bucket": hot_bucket_moves}


# ---------------------------------------------------------------------- #
# the rebalancer                                                          #
# ---------------------------------------------------------------------- #

class Rebalancer:
    """Watermark-triggered bucket migration for one sharded store.

    Cheap by default: :meth:`maybe_rebalance` bumps a counter and
    returns until ``rebalance_check_interval`` mutations have passed;
    the watermark probe reads per-shard pool occupancy only then, and a
    full pass (routing write latch + quiesce + enumerate + migrate)
    runs only when the trigger actually fires.  Exactly one pass runs
    at a time; concurrent callers skip rather than queue.
    """

    #: Re-submissions of a migration batch lost to a worker-process
    #: crash before the error escapes the pass.
    migration_retry_limit = 3

    def __init__(self, store) -> None:
        self.store = store
        self.config = store.config
        self._capacities = np.diff(store.shard_bases).astype(np.int64)
        self._ops_since_check = 0
        self._counter_lock = threading.Lock()
        self._rebalance_lock = threading.Lock()
        #: Test seam: ``"copy"`` raises after the first copied chunk,
        #: ``"flip"`` after the table flip but before the donor delete.
        self._crash_point: str | None = None

    # -------------------------------------------------------------- #
    # triggers                                                        #
    # -------------------------------------------------------------- #

    def maybe_rebalance(self, ops: int = 1) -> bool:
        """Account ``ops`` mutations; run a pass when due + triggered.

        Callers must hold no shard lock and no routing read pin (the
        store's entry points call this before pinning).  Returns True
        when a pass moved at least one bucket.
        """
        if self.config.rebalance_mode == "off":
            return False
        with self._counter_lock:
            self._ops_since_check += max(1, int(ops))
            if self._ops_since_check < self.config.rebalance_check_interval:
                return False
            self._ops_since_check = 0
        if self.store._epoch.read_depth():
            return False  # this thread holds a pin; check again later
        if not self._rebalance_lock.acquire(blocking=False):
            return False  # a pass is already running
        try:
            if not self._should_rebalance(self._free_fractions()):
                return False
            return self._rebalance()
        finally:
            self._rebalance_lock.release()

    def _free_fractions(self) -> np.ndarray:
        free = np.array(
            [store.pool.total_free for store in self.store.stores],
            dtype=np.float64,
        )
        return free / self._capacities

    def _wear_means(self) -> np.ndarray | None:
        means = []
        for shard_id, store in enumerate(self.store.stores):
            total = getattr(store.nvm.stats, "total_writes", None)
            if total is None:
                return None
            means.append(float(total) / float(self._capacities[shard_id]))
        return np.array(means, dtype=np.float64)

    def _should_rebalance(self, free_frac: np.ndarray) -> bool:
        low = self.config.rebalance_low_watermark
        spread = float(free_frac.max() - free_frac.min())
        if float(free_frac.min()) < low and spread > low:
            return True
        if self.config.rebalance_wear_factor > 0.0:
            wear = self._wear_means()
            if wear is not None and float(wear.max()) > 0.0:
                floor = max(float(wear.min()), 1.0)
                if float(wear.max()) / floor > self.config.rebalance_wear_factor:
                    return True
        return False

    # -------------------------------------------------------------- #
    # one pass                                                        #
    # -------------------------------------------------------------- #

    def _rebalance(self) -> bool:
        store = self.store
        with store._epoch.write_locked():
            with store._quiesced():
                # Re-measure under the latch: the pre-check raced with
                # in-flight batches.
                if not self._should_rebalance(self._free_fractions()):
                    return False
                return self._rebalance_quiesced() > 0

    def _rebalance_quiesced(self) -> int:
        """Enumerate, plan, and migrate — all locks held by the caller."""
        store = self.store
        table = store._router
        n_vbuckets = table.n_vbuckets
        bucket_counts = np.zeros(n_vbuckets, dtype=np.int64)
        resident: dict[tuple[int, int], list[bytes]] = {}
        for shard_id, shard_store in enumerate(store.stores):
            keys = [key for key, _ in list(shard_store.index.items())]
            if not keys:
                continue
            buckets = (
                hash_keys(keys) % np.uint64(n_vbuckets)
            ).astype(np.int64)
            np.add.at(bucket_counts, buckets, 1)
            for key, bucket in zip(keys, buckets.tolist()):
                resident.setdefault((shard_id, bucket), []).append(key)
        wear = (
            self._wear_means()
            if self.config.rebalance_wear_factor > 0.0
            else None
        )
        policy = POLICIES[self.config.rebalance_policy]
        moves = policy(
            bucket_counts, table.snapshot(), self._capacities, wear=wear
        )
        applied = 0
        for bucket, recipient in moves:
            donor = table.shard_of_bucket(bucket)
            if donor == recipient:
                continue
            keys = resident.get((donor, bucket), [])
            if self._migrate_bucket(bucket, donor, recipient, keys):
                applied += 1
        if applied:
            self._bump(rebalances=1)
        return applied

    # -------------------------------------------------------------- #
    # bucket migration                                                #
    # -------------------------------------------------------------- #

    def _migrate_bucket(
        self, bucket: int, donor: int, recipient: int, keys: list[bytes]
    ) -> bool:
        """Copy → flip → delete for one bucket; False aborts cleanly."""
        store = self.store
        donor_store = store.stores[donor]
        recipient_store = store.stores[recipient]
        chunk_size = self.config.rebalance_max_keys
        copied: list[bytes] = []
        with self._deferred_retrain(donor_store), \
                self._deferred_retrain(recipient_store):
            for start in range(0, len(keys), chunk_size):
                chunk = keys[start : start + chunk_size]
                values = self._read_chunk(donor_store, chunk)
                pairs = list(zip(chunk, values))
                if not self._copy_chunk(recipient_store, pairs):
                    self._undo_copies(recipient_store, copied)
                    return False
                copied.extend(chunk)
                if self._crash_point == "copy":
                    raise SimulatedRebalanceCrash(
                        f"injected crash after copying bucket {bucket}"
                    )
            store._router.move(bucket, recipient)
            self._bump(bucket_moves=1)
            if self._crash_point == "flip":
                raise SimulatedRebalanceCrash(
                    f"injected crash after flipping bucket {bucket}"
                )
            self._delete_from_donor(donor_store, copied)
        self._bump(keys_migrated=len(copied))
        return True

    def _read_chunk(self, donor_store, chunk: list[bytes]) -> list[bytes]:
        for attempt in range(self.migration_retry_limit + 1):
            try:
                return donor_store.get_many(chunk)
            except WorkerCrashedError:
                if attempt == self.migration_retry_limit:
                    raise
                self._bump(migration_batches_retried=1)
        raise AssertionError("unreachable")

    def _copy_chunk(self, recipient_store, pairs) -> bool:
        """Upsert one migration chunk; False means the recipient cannot
        take the bucket (exhausted/degraded) and the committed prefix
        has been rolled back."""
        self._bump(migration_batches=1)
        for attempt in range(self.migration_retry_limit + 1):
            try:
                recipient_store.put_many(pairs)
                return True
            except WorkerCrashedError:
                if attempt == self.migration_retry_limit:
                    raise
                self._bump(migration_batches_retried=1)
                # The respawned worker's engine lost the deferral flag.
                self._set_defer(recipient_store, True)
            except (PoolExhaustedError, DegradedModeError) as exc:
                committed = [
                    report.key
                    for report in getattr(exc, "committed_reports", [])
                ]
                if committed:
                    self._undo_copies(recipient_store, committed)
                return False
        return False

    def _undo_copies(self, recipient_store, keys: list[bytes]) -> None:
        """Roll an aborted bucket's copies back off the recipient.  Best
        effort: anything left behind is an unreferenced duplicate the
        recovery sweep reconciles."""
        remaining = list(keys)
        for _attempt in range(self.migration_retry_limit + 1):
            if not remaining:
                return
            try:
                recipient_store.delete_many(remaining)
                return
            except WorkerCrashedError:
                self._bump(migration_batches_retried=1)
                remaining = [
                    key for key in remaining if key in recipient_store
                ]
            except KeyNotFoundError as exc:
                committed = {
                    report.key
                    for report in getattr(exc, "committed_reports", [])
                }
                rest = [key for key in remaining if key not in committed]
                remaining = rest[1:]  # the failing key is already gone

    def _delete_from_donor(self, donor_store, keys: list[bytes]) -> None:
        """Retire the donor's copies after the flip (retry-tolerant: a
        crash replay may find some already deleted)."""
        if not keys:
            return
        self._bump(migration_batches=1)
        remaining = list(keys)
        for attempt in range(self.migration_retry_limit + 1):
            if not remaining:
                return
            try:
                donor_store.delete_many(remaining)
                return
            except WorkerCrashedError:
                if attempt == self.migration_retry_limit:
                    raise
                self._bump(migration_batches_retried=1)
                remaining = [key for key in remaining if key in donor_store]
            except KeyNotFoundError as exc:
                committed = {
                    report.key
                    for report in getattr(exc, "committed_reports", [])
                }
                rest = [key for key in remaining if key not in committed]
                remaining = rest[1:]  # the failing key is already gone

    # -------------------------------------------------------------- #
    # helpers                                                         #
    # -------------------------------------------------------------- #

    @contextlib.contextmanager
    def _deferred_retrain(self, shard_store):
        """Defer retrain checks on one shard for the block (works for
        in-process stores and process clients alike)."""
        self._set_defer(shard_store, True)
        try:
            yield
        finally:
            try:
                self._set_defer(shard_store, False)
            except WorkerCrashedError:  # pragma: no cover - respawn race
                pass  # a respawned worker starts with the flag clear

    @staticmethod
    def _set_defer(shard_store, value: bool) -> None:
        engine = getattr(shard_store, "engine", None)
        if engine is not None:
            engine.defer_retrain = value
        else:
            shard_store.set_defer_retrain(value)

    def _bump(self, **counts: int) -> None:
        store = self.store
        with store._stats_lock:
            for name, delta in counts.items():
                setattr(
                    store._router_stats,
                    name,
                    getattr(store._router_stats, name) + delta,
                )

"""Stream drivers shared by every reproduced experiment.

The paper's evaluation methodology (§VI-A): warm the data zone with "old
data", train the model on it, then stream new items that replace the old
ones, with inserts and deletes interleaved so addresses recycle through
the dynamic address pool.  Baselines replace in place (no steering);
PNW places each write through the model.

``live_window`` controls how many of the most recent keys stay live:
the paper's "insert n followed by deleting 0.5n" corresponds to a window
of half the zone, so at steady state half the addresses are free for
steering.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from .._bitops import bytes_to_array
from ..core.config import PNWConfig
from ..core.store import PNWStore
from ..shard import ShardedPNWStore, make_store
from ..stores.base import BaselineKVStore
from ..writeschemes.base import WriteScheme
from ..nvm.device import SimulatedNVM
from .metrics import StreamMetrics

__all__ = [
    "key_for",
    "build_bucket_rows",
    "run_scheme_stream",
    "make_pnw_store",
    "PNWStreamSession",
    "run_pnw_stream",
    "run_kv_store_stream",
    "run_pnw_kv_stream",
    "time_training",
]

KEY_BYTES = 8


def key_for(i: int) -> bytes:
    """The i-th stream key (8-byte big-endian counter)."""
    return int(i).to_bytes(KEY_BYTES, "big")


def build_bucket_rows(values: np.ndarray, keys: list[bytes] | None = None) -> np.ndarray:
    """Pack values into full bucket payloads ``[key | value]``.

    With ``keys=None`` the key prefix is zero — matching how
    ``PNWStore.warm_up`` stores old data, so baselines and PNW write
    byte-identical buckets.
    """
    values = np.atleast_2d(np.ascontiguousarray(values, dtype=np.uint8))
    n = values.shape[0]
    rows = np.zeros((n, KEY_BYTES + values.shape[1]), dtype=np.uint8)
    rows[:, KEY_BYTES:] = values
    if keys is not None:
        if len(keys) != n:
            raise ValueError(f"{len(keys)} keys for {n} values")
        for i, key in enumerate(keys):
            rows[i, :KEY_BYTES] = bytes_to_array(key, KEY_BYTES)
    return rows


def run_scheme_stream(
    scheme: WriteScheme | None,
    old_values: np.ndarray,
    new_values: np.ndarray,
    *,
    word_bytes: int = 4,
) -> StreamMetrics:
    """In-place replacement baseline: item ``i`` overwrites the oldest
    bucket (round-robin), through ``scheme``.

    ``scheme=None`` measures the device's native data-comparison write.
    Buckets hold the same ``[key | value]`` payloads PNW writes, so the
    bit-update comparison is apples to apples.
    """
    old_rows = build_bucket_rows(old_values)
    new_rows = build_bucket_rows(
        new_values, [key_for(i) for i in range(len(new_values))]
    )
    nvm = SimulatedNVM(old_rows.shape[0], old_rows.shape[1], word_bytes=word_bytes)
    nvm.load_many(0, old_rows)

    metrics = StreamMetrics(item_bits=old_rows.shape[1] * 8)
    for i, row in enumerate(new_rows):
        report = nvm.write(i % nvm.num_buckets, row, scheme)
        metrics.items += 1
        metrics.bit_updates += report.bit_updates
        metrics.aux_bit_updates += report.aux_bit_updates
        metrics.words_touched += report.words_touched
        metrics.lines_touched += report.lines_touched
        metrics.nvm_latency_ns += report.latency_ns
    return metrics


def make_pnw_store(
    num_buckets: int,
    value_bytes: int,
    n_clusters: int,
    *,
    seed: int | None = 0,
    featurizer: str = "auto",
    pca_components: int | None = None,
    track_bit_wear: bool = False,
    allow_retrain: bool = False,
    update_mode: str = "endurance",
    index_placement: str = "dram",
    probe_limit: int = 64,
    shards: int = 1,
    executor: str = "thread",
) -> PNWStore | ShardedPNWStore:
    """A store configured for the paper's measurement streams.

    By default retraining is disabled mid-stream (the Fig. 6 runs train
    once on the old data); pass ``allow_retrain=True`` for the lifecycle
    experiments (Fig. 10).  ``probe_limit=0`` selects Algorithm 2's plain
    free-list pop instead of §IV's minimum-Hamming probing.
    ``shards=N`` hash-partitions the zone into N concurrent per-shard
    batch pipelines (see :mod:`repro.shard`); ``num_buckets`` stays the
    *total* capacity.  ``executor="process"`` runs those pipelines in
    per-shard worker processes on shared-memory zones instead of threads
    (ignored at ``shards=1``, where there is nothing to parallelize).
    """
    config = PNWConfig(
        num_buckets=num_buckets,
        value_bytes=value_bytes,
        key_bytes=KEY_BYTES,
        n_clusters=n_clusters,
        seed=seed,
        featurizer=featurizer,
        pca_components=pca_components,
        track_bit_wear=track_bit_wear,
        update_mode=update_mode,
        index_placement=index_placement,
        probe_limit=probe_limit,
        shards=shards,
        executor=executor,
        load_factor=0.9 if allow_retrain else 1.0,
        retrain_check_interval=128 if allow_retrain else 2**62,
    )
    return make_store(config)


class PNWStreamSession:
    """A running PNW replacement stream (steered writes + FIFO deletes).

    Warms the zone with ``old_values``, trains once, then each
    :meth:`run` call PUTs new items and DELETEs the oldest live key once
    more than ``live_window`` keys are live (default: half the zone — the
    paper's insert:delete = 2:1 steady state).  Sessions are reusable
    across calls, which is how the Fig. 10 phases share one store.
    ``shards=N`` runs the same schedule against a hash-partitioned
    :class:`~repro.shard.ShardedPNWStore` of the same total capacity.
    """

    def __init__(
        self,
        old_values: np.ndarray,
        n_clusters: int,
        *,
        seed: int | None = 0,
        live_window: int | None = None,
        featurizer: str = "auto",
        pca_components: int | None = None,
        track_bit_wear: bool = False,
        allow_retrain: bool = False,
        probe_limit: int = 64,
        shards: int = 1,
        executor: str = "thread",
    ) -> None:
        old_values = np.atleast_2d(old_values)
        self.store = make_pnw_store(
            old_values.shape[0],
            old_values.shape[1],
            n_clusters,
            seed=seed,
            featurizer=featurizer,
            pca_components=pca_components,
            track_bit_wear=track_bit_wear,
            allow_retrain=allow_retrain,
            probe_limit=probe_limit,
            shards=shards,
            executor=executor,
        )
        self.store.warm_up(old_values)
        self.live_window = (
            live_window
            if live_window is not None
            else self.store.config.num_buckets // 2
        )
        self._live: deque[bytes] = deque()
        self._next_key = 0

    def run(
        self,
        new_values: np.ndarray,
        per_item: list[int] | None = None,
        *,
        batch_size: int = 1,
    ) -> StreamMetrics:
        """Stream ``new_values`` through the store; aggregate the costs.

        When ``per_item`` is given, each item's bit updates are appended
        to it (the Fig. 10 time series needs the trajectory, not just the
        mean).

        ``batch_size`` feeds the store through the batch pipeline: each
        group of up to ``batch_size`` items goes in as one
        :meth:`~repro.core.store.PNWStore.put_many` call, followed by the
        :meth:`~repro.core.store.PNWStore.delete_many` that restores the
        live window.  ``batch_size=1`` reproduces the classic
        one-PUT-one-eviction schedule of the paper's figures exactly;
        larger batches change the PUT/DELETE interleaving (a whole batch
        lands before its evictions), which is the schedule a batching
        front-end would produce.
        """
        store = self.store
        metrics = StreamMetrics(item_bits=store.config.bucket_bytes * 8)
        values = np.atleast_2d(new_values)
        batch_size = max(1, int(batch_size))
        for start in range(0, values.shape[0], batch_size):
            chunk = values[start : start + batch_size]
            keys = [key_for(self._next_key + j) for j in range(chunk.shape[0])]
            self._next_key += chunk.shape[0]
            reports = store.put_many(list(zip(keys, chunk)))
            self._live.extend(keys)
            for report in reports:
                metrics.items += 1
                metrics.bit_updates += report.bit_updates
                metrics.lines_touched += report.lines_touched
                metrics.words_touched += report.words_touched
                metrics.nvm_latency_ns += report.nvm_latency_ns
                metrics.predict_ns += report.predict_ns
                if per_item is not None:
                    per_item.append(report.bit_updates)
            overflow = len(self._live) - self.live_window
            if overflow > 0:
                store.delete_many(
                    [self._live.popleft() for _ in range(overflow)]
                )
        return metrics


def run_pnw_stream(
    old_values: np.ndarray,
    new_values: np.ndarray,
    n_clusters: int,
    *,
    seed: int | None = 0,
    live_window: int | None = None,
    featurizer: str = "auto",
    pca_components: int | None = None,
    track_bit_wear: bool = False,
    probe_limit: int = 64,
    batch_size: int = 1,
    shards: int = 1,
) -> tuple[StreamMetrics, PNWStore | ShardedPNWStore]:
    """One-shot PNW replacement stream (see :class:`PNWStreamSession`)."""
    session = PNWStreamSession(
        old_values,
        n_clusters,
        seed=seed,
        live_window=live_window,
        featurizer=featurizer,
        pca_components=pca_components,
        track_bit_wear=track_bit_wear,
        probe_limit=probe_limit,
        shards=shards,
    )
    metrics = session.run(new_values, batch_size=batch_size)
    return metrics, session.store


def run_kv_store_stream(
    store: BaselineKVStore,
    values: np.ndarray,
    *,
    delete_fraction: float = 0.5,
) -> float:
    """Fig. 9 protocol on a baseline store: insert n, delete n/2.

    Returns written cache lines per mutating request.
    """
    values = np.atleast_2d(values)
    n = values.shape[0]
    for i, value in enumerate(values):
        store.put(key_for(i), value.tobytes())
    for i in range(int(n * delete_fraction)):
        store.delete(key_for(i))
    return store.lines_per_request


def run_pnw_kv_stream(
    values: np.ndarray,
    n_clusters: int,
    *,
    seed: int | None = 0,
    delete_fraction: float = 0.5,
    capacity_slack: float = 1.5,
) -> float:
    """Fig. 9 protocol on PNW with the paper's Fig. 2a architecture:
    DRAM index, flags with the index, so the only NVM traffic is the
    data zone itself.
    """
    values = np.atleast_2d(values)
    n = values.shape[0]
    config = PNWConfig(
        num_buckets=int(n * capacity_slack),
        value_bytes=values.shape[1],
        key_bytes=KEY_BYTES,
        n_clusters=n_clusters,
        seed=seed,
        index_placement="dram",
        persist_flags=False,
        load_factor=0.9,
        retrain_check_interval=128,
    )
    store = PNWStore(config)
    for i, value in enumerate(values):
        store.put(key_for(i), value)
    for i in range(int(n * delete_fraction)):
        store.delete(key_for(i))
    requests = store.metrics.puts + store.metrics.deletes
    return store.nvm.stats.total_lines_touched / requests


def time_training(
    features: np.ndarray,
    n_clusters: int,
    n_jobs: int,
    *,
    seed: int | None = 0,
    max_iter: int = 20,
    n_init: int = 4,
) -> float:
    """Wall-clock seconds of one k-means training (Fig. 11).

    Four k-means++ restarts (the unit ``n_jobs`` parallelises, matching
    the paper's single-core vs all-cores comparison).
    """
    from ..ml.kmeans import KMeans

    model = KMeans(
        n_clusters, n_init=n_init, max_iter=max_iter, seed=seed, n_jobs=n_jobs
    )
    started = time.perf_counter()
    model.fit(features)
    return time.perf_counter() - started

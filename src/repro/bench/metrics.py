"""Result containers for reproduced tables and figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ExperimentResult", "StreamMetrics"]


@dataclass
class StreamMetrics:
    """Aggregates of one write stream (one curve point of Fig. 6/7/8).

    ``bit_updates`` includes auxiliary metadata bits (flip bits, shift
    fields, masks) so schemes pay for their own bookkeeping, as in the
    paper's comparisons.
    """

    items: int = 0
    item_bits: int = 0
    bit_updates: int = 0
    aux_bit_updates: int = 0
    words_touched: int = 0
    lines_touched: int = 0
    nvm_latency_ns: float = 0.0
    predict_ns: float = 0.0

    @property
    def bits_per_512(self) -> float:
        """Bit updates (data + aux) normalised per 512 bits written —
        the y-axis of Fig. 6."""
        total_bits = self.items * self.item_bits
        if total_bits == 0:
            return 0.0
        return (self.bit_updates + self.aux_bit_updates) * 512.0 / total_bits

    @property
    def lines_per_item(self) -> float:
        """Mean written cache lines per item (Figures 8 and 9)."""
        if self.items == 0:
            return 0.0
        return self.lines_touched / self.items

    @property
    def latency_ns_per_item(self) -> float:
        """Modeled NVM time plus measured prediction time per item — the
        honest end-to-end decomposition (§VI-E narrative)."""
        if self.items == 0:
            return 0.0
        return (self.nvm_latency_ns + self.predict_ns) / self.items

    @property
    def nvm_latency_per_item(self) -> float:
        """Modeled NVM write time per item — the paper's Fig. 7/8 metric
        ("write latency is calculated based on the number of cache lines
        that are written per item")."""
        if self.items == 0:
            return 0.0
        return self.nvm_latency_ns / self.items

    @property
    def predict_ns_per_item(self) -> float:
        """Measured model prediction time per item (Fig. 6's second
        series)."""
        if self.items == 0:
            return 0.0
        return self.predict_ns / self.items


@dataclass
class ExperimentResult:
    """One reproduced artifact: identifier, parameters, and a row table."""

    exp_id: str
    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one table row (must match ``columns``)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"{len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column (for assertions on curve shapes)."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

"""One function per table/figure of the paper's evaluation (§VI).

Each function runs the experiment at a laptop-sized scale that preserves
the *shape* of the paper's result (who wins, by what factor, where the
crossovers are) and returns an :class:`ExperimentResult`.  Set the
``PNW_BENCH_SCALE`` environment variable above 1.0 to grow workloads
toward paper scale.

The mapping from experiment ids to paper artifacts is DESIGN.md §4;
observed-vs-paper outcomes are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import numpy as np

from ..ml.elbow import choose_k
from ..ml.kmeans import KMeans
from ..ml.pca import PCA
from ..nvm.latency import TECHNOLOGIES
from ..stores.fptree import FPTreeStore
from ..stores.novelsm import NoveLSMStore
from ..stores.pathhash_store import PathHashKVStore
from ..workloads.images import FashionLikeWorkload, MNISTLikeWorkload
from ..workloads.mixture import MixtureWorkload
from ..workloads.registry import make_workload
from ..workloads.video import VideoProfile, VideoWorkload
from ..writeschemes import default_schemes
from .metrics import ExperimentResult
from .runner import (
    PNWStreamSession,
    run_kv_store_stream,
    run_pnw_kv_stream,
    run_pnw_stream,
    run_scheme_stream,
    time_training,
)

__all__ = [
    "table1_memory_technologies",
    "table2_clustering_example",
    "fig3_pca_variance",
    "fig4_elbow",
    "fig6_bit_updates",
    "fig7_write_latency",
    "fig8_latency_vs_k",
    "fig9_kv_stores",
    "fig10_workload_shift",
    "fig11_training_time",
    "fig12_address_wear",
    "fig13_bit_wear",
    "FIG6_DATASETS",
]


def _scale(n: int) -> int:
    """Apply the PNW_BENCH_SCALE multiplier (min 1)."""
    factor = float(os.environ.get("PNW_BENCH_SCALE", "1"))
    return max(1, int(round(n * factor)))


def _pca_for(item_bytes: int) -> int | None:
    """The paper applies PCA to large values (§V-C); 1 KB is our cutoff."""
    return 32 if item_bytes >= 1024 else None


# --------------------------------------------------------------------- #
# Tables                                                                 #
# --------------------------------------------------------------------- #


def table1_memory_technologies() -> ExperimentResult:
    """Table I: read/write latency and endurance per technology."""
    result = ExperimentResult(
        exp_id="table1",
        title="Comparison of memory technologies",
        columns=["category", "read_latency_ns", "write_latency_ns", "endurance_log10"],
    )
    for tech in TECHNOLOGIES.values():
        result.add_row(
            tech.name,
            f"{tech.read_latency_ns[0]:g}-{tech.read_latency_ns[1]:g}",
            f"{tech.write_latency_ns[0]:g}-{tech.write_latency_ns[1]:g}",
            f"{tech.endurance_log10[0]:g}-{tech.endurance_log10[1]:g}",
        )
    return result


#: The paper's Table II: a 6-entry PCM, 8 bits per entry.
_TABLE2_CONTENTS = np.array(
    [
        [0, 0, 0, 0, 0, 1, 1, 1],
        [0, 0, 0, 0, 1, 0, 1, 1],
        [0, 0, 1, 0, 1, 1, 0, 0],
        [0, 0, 1, 1, 1, 1, 0, 0],
        [1, 1, 0, 1, 0, 0, 0, 0],
        [0, 1, 1, 1, 0, 0, 0, 0],
    ],
    dtype=np.uint8,
)
_TABLE2_D1 = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.uint8)
_TABLE2_D2 = np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=np.uint8)


def table2_clustering_example(seed: int = 0) -> ExperimentResult:
    """Table II + §IV walkthrough: cluster the example PCM, steer d1/d2.

    The paper's claim: with 3 clusters, both new items land on a location
    needing exactly one bit flip (versus up to 6 in place).
    """
    model = KMeans(3, n_init=10, seed=seed).fit(_TABLE2_CONTENTS.astype(np.float64))
    result = ExperimentResult(
        exp_id="table2",
        title="Example PCM clustering (Table II) and steered writes",
        columns=["item", "predicted_cluster", "chosen_index", "bit_flips"],
        params={"n_clusters": 3},
    )
    for name, item in (("d1", _TABLE2_D1), ("d2", _TABLE2_D2)):
        cluster = model.predict_one(item.astype(np.float64))
        members = np.flatnonzero(model.labels_ == cluster)
        flips = [int(np.count_nonzero(_TABLE2_CONTENTS[m] != item)) for m in members]
        best = int(members[int(np.argmin(flips))])
        result.add_row(name, int(cluster), best, int(min(flips)))
    mean_in_place = float(
        np.mean([np.count_nonzero(row != _TABLE2_D1) for row in _TABLE2_CONTENTS])
    )
    result.notes.append(
        f"an unsteered in-place write of d1 flips {mean_in_place:.1f} bits "
        "on average across the six locations"
    )
    return result


# --------------------------------------------------------------------- #
# Model-selection figures                                                #
# --------------------------------------------------------------------- #


def fig3_pca_variance(n_samples: int = 2000, seed: int = 0) -> ExperimentResult:
    """Fig. 3: cumulative PCA variance ratio vs number of components
    (MNIST-like images, one feature per pixel as in the paper)."""
    workload = MNISTLikeWorkload(seed=seed)
    images = workload.generate(_scale(n_samples)).astype(np.float64)
    pca = PCA().fit(images)
    curve = pca.cumulative_variance_ratio()
    result = ExperimentResult(
        exp_id="fig3",
        title="PCA variance ratio vs principal components (MNIST-like)",
        columns=["n_components", "cumulative_variance_ratio"],
        params={"n_samples": images.shape[0], "n_features": images.shape[1]},
    )
    for k in (1, 2, 5, 10, 20, 50, 100, 200, 400, len(curve)):
        result.add_row(k, float(curve[min(k, len(curve)) - 1]))
    threshold = int(np.searchsorted(curve, 0.80) + 1)
    result.notes.append(
        f"{threshold} components explain 80% of the variance "
        f"(paper keeps the components covering >80%)"
    )
    result.params["components_for_80pct"] = threshold
    return result


def fig4_elbow(n_samples: int = 1500, seed: int = 0) -> ExperimentResult:
    """Fig. 4: SSE vs K with the knee marked (MNIST-like images)."""
    workload = MNISTLikeWorkload(seed=seed)
    images = workload.generate(_scale(n_samples)).astype(np.float64)
    elbow = choose_k(images, list(range(1, 11)), seed=seed)
    result = ExperimentResult(
        exp_id="fig4",
        title="Sum of Squared Error vs K (elbow method, MNIST-like)",
        columns=["k", "sse"],
        params={"n_samples": images.shape[0], "chosen_k": elbow.best_k},
    )
    for k, sse in zip(elbow.k_values, elbow.sse):
        result.add_row(int(k), float(sse))
    result.notes.append(f"elbow at k={elbow.best_k} (paper found k=5 on MNIST)")
    return result


# --------------------------------------------------------------------- #
# Fig. 6: bit updates per 512 bits, per dataset                          #
# --------------------------------------------------------------------- #

#: dataset name -> (n_old, n_new) at scale 1.  Panel letters follow §VI.
FIG6_DATASETS: dict[str, tuple[int, int]] = {
    "amazon": (1000, 4000),      # 6a
    "roadnet": (1000, 4000),     # 6b
    "sherbrooke": (400, 1000),   # 6c
    "seq2": (300, 800),          # 6d
    "normal": (2000, 6000),      # 6e
    "uniform": (2000, 6000),     # 6f
    "docwords": (1000, 4000),    # §VI-B PubMed stream
    "cifar": (400, 1000),        # §VI-C CIFAR stream
}

DEFAULT_K_SWEEP = (1, 2, 3, 5, 8, 10, 14, 20, 30)


def fig6_bit_updates(
    dataset: str,
    k_values: tuple[int, ...] = DEFAULT_K_SWEEP,
    *,
    seed: int = 7,
    n_old: int | None = None,
    n_new: int | None = None,
) -> ExperimentResult:
    """One Fig. 6 panel: bit updates / 512 bits for every method vs K.

    Baselines are K-independent and appear as constant columns.  PNW is
    reported twice, reflecting the paper's two descriptions of the pool:
    ``PNW`` probes the predicted cluster's free list for the
    minimum-Hamming location (§IV, the library default) and ``PNW-pop``
    pops the next free address (Algorithm 2's pseudocode — the variant
    whose k=1 point "is not different from DCW", §VI-D).  The prediction
    latency per item (the second series the paper plots) is the last
    column.
    """
    default_old, default_new = FIG6_DATASETS[dataset]
    n_old = _scale(default_old) if n_old is None else n_old
    n_new = _scale(default_new) if n_new is None else n_new
    workload = make_workload(dataset, seed=seed)
    old, new = workload.split_old_new(n_old, n_new)

    baselines: dict[str, float] = {}
    for scheme in default_schemes():
        metrics = run_scheme_stream(scheme, old, new)
        baselines[scheme.name] = metrics.bits_per_512

    result = ExperimentResult(
        exp_id=f"fig6-{dataset}",
        title=f"Bit updates per 512 bits vs K ({dataset})",
        columns=["k", "PNW", "PNW-pop", "Conventional", "DCW", "FNW", "MinShift",
                 "CAP16", "predict_us"],
        params={"n_old": n_old, "n_new": n_new, "item_bytes": workload.item_bytes},
    )
    crossover: int | None = None
    best_baseline = min(v for k, v in baselines.items() if k != "Conventional")
    pca = _pca_for(workload.item_bytes)
    for k in k_values:
        metrics, store = run_pnw_stream(old, new, k, seed=seed, pca_components=pca)
        pop_metrics, _ = run_pnw_stream(
            old, new, k, seed=seed, pca_components=pca, probe_limit=0
        )
        pnw = metrics.bits_per_512
        if crossover is None and pnw < best_baseline:
            crossover = k
        result.add_row(
            k,
            pnw,
            pop_metrics.bits_per_512,
            baselines["Conventional"],
            baselines["DCW"],
            baselines["FNW"],
            baselines["MinShift"],
            baselines["CAP16"],
            store.manager.mean_predict_ns / 1000.0,
        )
    if crossover is not None:
        result.notes.append(f"PNW beats every RBW baseline from k={crossover}")
    else:
        result.notes.append("PNW did not cross below the best baseline "
                            "(expected on the uniform dataset)")
    return result


# --------------------------------------------------------------------- #
# Fig. 7 / Fig. 8: write latency                                         #
# --------------------------------------------------------------------- #

FIG7_DATASETS = ("normal", "uniform", "amazon", "roadnet", "cifar", "seq2")


def fig7_write_latency(
    datasets: tuple[str, ...] = FIG7_DATASETS,
    *,
    k: int = 16,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 7: end-to-end write latency per item, normalised to the
    conventional method, for every dataset and method.

    Latency follows the paper's methodology exactly: "the write latency
    is calculated based on the number of cache lines that are written per
    item" (§VI-E) — i.e. cache lines x the 600 ns 3D-XPoint line cost.
    The measured (Python) model-prediction time is reported as its own
    column rather than folded in, since the paper reports it separately
    (the 5-6 us of Fig. 6) and our interpreter-level timing would swamp
    sub-microsecond line costs on small items.
    """
    result = ExperimentResult(
        exp_id="fig7",
        title="End-to-end write latency (normalised to Conventional)",
        columns=["dataset", "Conventional", "DCW", "FNW", "MinShift", "CAP16",
                 "PNW", "pnw_predict_us"],
        params={"k": k},
    )
    for dataset in datasets:
        default_old, default_new = FIG6_DATASETS[dataset]
        workload = make_workload(dataset, seed=seed)
        old, new = workload.split_old_new(
            _scale(min(default_old, 800)), _scale(min(default_new, 2000))
        )
        latencies: dict[str, float] = {}
        for scheme in default_schemes():
            metrics = run_scheme_stream(scheme, old, new)
            latencies[scheme.name] = metrics.nvm_latency_per_item
        pnw_metrics, _ = run_pnw_stream(
            old, new, k, seed=seed, pca_components=_pca_for(workload.item_bytes)
        )
        base = latencies["Conventional"]
        result.add_row(
            dataset,
            1.0,
            latencies["DCW"] / base,
            latencies["FNW"] / base,
            latencies["MinShift"] / base,
            latencies["CAP16"] / base,
            pnw_metrics.nvm_latency_per_item / base,
            pnw_metrics.predict_ns_per_item / 1000.0,
        )
    return result


def fig8_latency_vs_k(
    k_values: tuple[int, ...] = (1, 2, 4, 8, 16, 30),
    *,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 8: average write latency vs K on the PubMed-like stream,
    insert:delete = 1:1 (live window ~ zone/2 keeps every put paired with
    a delete at steady state)."""
    workload = make_workload("docwords", seed=seed)
    old, new = workload.split_old_new(_scale(1000), _scale(4000))
    result = ExperimentResult(
        exp_id="fig8",
        title="Average write latency vs K (PubMed-like)",
        columns=["k", "latency_us_per_item", "lines_per_item", "predict_us"],
        params={"n_old": old.shape[0], "n_new": new.shape[0]},
    )
    for k in k_values:
        metrics, _ = run_pnw_stream(old, new, k, seed=seed)
        result.add_row(
            k,
            metrics.nvm_latency_per_item / 1000.0,
            metrics.lines_per_item,
            metrics.predict_ns_per_item / 1000.0,
        )
    return result


# --------------------------------------------------------------------- #
# Fig. 9: K/V store comparison                                           #
# --------------------------------------------------------------------- #

FIG9_DATASETS = ("normal", "docwords", "mnist")


def fig9_kv_stores(
    datasets: tuple[str, ...] = FIG9_DATASETS,
    *,
    n_items: int = 1500,
    k: int = 8,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 9: written NVM cache lines per request — PNW (Fig. 2a
    architecture) vs FPTree, NoveLSM, and path hashing.

    Protocol per §VI-A: insert n items, delete n/2.
    """
    n = _scale(n_items)
    result = ExperimentResult(
        exp_id="fig9",
        title="Average written cache lines per request",
        columns=["dataset", "PNW", "PathHash", "FPTree", "NoveLSM"],
        params={"n_items": n, "k": k},
    )
    for dataset in datasets:
        workload = make_workload(dataset, seed=seed)
        values = workload.generate(n)
        value_bytes = workload.item_bytes
        pnw = run_pnw_kv_stream(values, k, seed=seed)
        rows: dict[str, float] = {}
        for cls in (PathHashKVStore, FPTreeStore, NoveLSMStore):
            store = cls(8, value_bytes, capacity=int(n * 1.5))
            rows[cls.name] = run_kv_store_stream(store, values)
        result.add_row(dataset, pnw, rows["PathHash"], rows["FPTree"], rows["NoveLSM"])
    return result


# --------------------------------------------------------------------- #
# Fig. 10: workload shift                                                #
# --------------------------------------------------------------------- #


def fig10_workload_shift(
    *,
    k: int = 20,
    seed: int = 7,
    chunk: int = 300,
) -> ExperimentResult:
    """Fig. 10: MNIST -> Fashion-MNIST drift across four phases.

    Phase 1 streams in-distribution items; phase 2 mixes 2:1 foreign
    items (performance degrades immediately); phase 3 is all-foreign
    under the stale model; phase 4 retrains on the (now foreign) zone and
    recovers.  Counts are the paper's at 1/10 scale by default.

    Runs with the Algorithm-2 pool (plain pop): what Fig. 10 plots is the
    cost of cluster *misprediction* under a stale model, which min-Hamming
    probing would partially mask.
    """
    mnist = MNISTLikeWorkload(seed=seed)
    fashion = FashionLikeWorkload(seed=seed + 1)
    mixed = MixtureWorkload([mnist, fashion], weights=[1.0, 2.0], seed=seed + 2)

    old = mnist.generate(_scale(2800))
    session = PNWStreamSession(
        old, k, seed=seed, pca_components=_pca_for(mnist.item_bytes),
        probe_limit=0,
    )
    phases = [
        ("phase1-mnist", mnist.generate(_scale(2700)), False),
        ("phase2-mixed", mixed.generate(_scale(4500)), False),
        ("phase3-fashion", fashion.generate(_scale(1200)), False),
        ("phase4-fashion+retrain", fashion.generate(_scale(2800)), True),
    ]
    result = ExperimentResult(
        exp_id="fig10",
        title="Bit updates over time while the workload shifts",
        columns=["phase", "chunk_start", "bits_per_512"],
        params={"k": k, "n_old": old.shape[0]},
    )
    item_bits = (mnist.item_bytes + 8) * 8
    index = 0
    phase_means: dict[str, float] = {}
    for name, items, retrain_first in phases:
        if retrain_first:
            session.store.retrain()
        per_item: list[int] = []
        session.run(items, per_item=per_item)
        per_item_arr = np.asarray(per_item, dtype=np.float64)
        phase_means[name] = float(per_item_arr.mean()) * 512.0 / item_bits
        for start in range(0, len(per_item), chunk):
            window = per_item_arr[start : start + chunk]
            result.add_row(name, index + start, float(window.mean()) * 512.0 / item_bits)
        index += len(per_item)
    result.notes.append(
        "phase means (bits/512): "
        + ", ".join(f"{k}={v:.1f}" for k, v in phase_means.items())
    )
    return result


# --------------------------------------------------------------------- #
# Fig. 11: training time, single vs multi core                           #
# --------------------------------------------------------------------- #


def fig11_training_time(
    k_values: tuple[int, ...] = (2, 4, 8, 16),
    sample_sizes: tuple[int, ...] = (250, 1000, 4000),
    *,
    seed: int = 7,
) -> ExperimentResult:
    """Fig. 11: k-means training time vs sample count, 1 core vs 4 cores,
    on both video feeds (frames downscaled to keep the sweep minutes-long;
    the scaling *shape* — time grows with k and samples, multicore wins at
    large sizes — is resolution independent)."""
    profiles = (
        VideoProfile(name="sherbrooke-small", width=32, height=32, channels=1),
        VideoProfile(name="seq2-small", width=32, height=24, channels=3,
                     n_objects=10, max_speed=2.5),
    )
    result = ExperimentResult(
        exp_id="fig11",
        title="Model training time: single core vs 4 workers",
        columns=["dataset", "k", "n_samples", "jobs", "seconds"],
    )
    max_size = max(sample_sizes)
    for profile in profiles:
        frames = VideoWorkload(profile, seed=seed).generate(_scale(max_size))
        features = frames.astype(np.float64)
        for k in k_values:
            for size in sample_sizes:
                subset = features[: _scale(size)]
                for jobs in (1, 4):
                    seconds = time_training(subset, k, jobs, seed=seed)
                    result.add_row(profile.name, k, subset.shape[0], jobs, seconds)
    return result


# --------------------------------------------------------------------- #
# Fig. 12 / Fig. 13: wear leveling CDFs                                  #
# --------------------------------------------------------------------- #


def _wear_run(k: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared driver: MNIST+Fashion mix, ~4 updates per word on average.

    Uses the Algorithm-2 pool (plain pop, ``probe_limit=0``) — the
    configuration whose wear behaviour the paper's Figures 12/13 plot,
    where the number of clusters alone controls within-cluster
    similarity.  Returns (per-address write counts, per-bit update
    counts).
    """
    mnist = MNISTLikeWorkload(seed=seed)
    fashion = FashionLikeWorkload(seed=seed + 1)
    mixed = MixtureWorkload([mnist, fashion], seed=seed + 2)
    n_old = _scale(1400)
    old = mixed.generate(n_old)
    new = mixed.generate(n_old * 4)  # 4 updates per address on average
    _, store = run_pnw_stream(
        old, new, k, seed=seed, track_bit_wear=True, probe_limit=0,
        pca_components=_pca_for(mixed.item_bytes),
    )
    stats = store.nvm.stats
    assert stats.bit_wear is not None
    return stats.writes_per_address.copy(), stats.bit_wear.ravel().copy()


def _cdf_at(counts: np.ndarray, thresholds: tuple[int, ...]) -> list[float]:
    counts = np.asarray(counts)
    return [float((counts <= t).mean()) for t in thresholds]


def fig12_address_wear(
    k_values: tuple[int, ...] = (5, 30), *, seed: int = 7
) -> ExperimentResult:
    """Fig. 12: CDF of per-address write counts for k=5 and k=30."""
    thresholds = (3, 5, 10, 15)
    result = ExperimentResult(
        exp_id="fig12",
        title="Max update addresses as CDFs",
        columns=["k", "max_writes"] + [f"P(X<={t})" for t in thresholds],
    )
    for k in k_values:
        writes, _ = _wear_run(k, seed)
        result.add_row(k, int(writes.max()), *_cdf_at(writes, thresholds))
    return result


def fig13_bit_wear(
    k_values: tuple[int, ...] = (5, 30), *, seed: int = 7
) -> ExperimentResult:
    """Fig. 13: CDF of per-bit update counts for k=5 and k=30.

    The paper's headline: higher K tightens the bit-level distribution
    (more even wear), visible as a larger P(X<=4) at k=30.
    """
    thresholds = (1, 2, 4, 8)
    result = ExperimentResult(
        exp_id="fig13",
        title="Bit-level wear leveling as CDFs",
        columns=["k", "max_bit_updates"] + [f"P(X<={t})" for t in thresholds],
    )
    for k in k_values:
        _, bit_wear = _wear_run(k, seed)
        result.add_row(k, int(bit_wear.max()), *_cdf_at(bit_wear, thresholds))
    return result

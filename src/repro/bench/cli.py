"""Command-line runner for the reproduction experiments.

Lets a user regenerate any single table/figure without pytest::

    python -m repro.bench list
    python -m repro.bench table2
    python -m repro.bench fig6-amazon fig6-uniform
    python -m repro.bench all            # everything (minutes)

Results are printed and saved under ``results/`` exactly as the
benchmark suite does.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import figures
from .metrics import ExperimentResult
from .reporting import report

__all__ = ["EXPERIMENTS", "main"]


def _fig6_runner(dataset: str) -> Callable[[], ExperimentResult]:
    return lambda: figures.fig6_bit_updates(dataset)


#: experiment id -> zero-argument callable producing its result.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": figures.table1_memory_technologies,
    "table2": figures.table2_clustering_example,
    "fig3": figures.fig3_pca_variance,
    "fig4": figures.fig4_elbow,
    **{
        f"fig6-{dataset}": _fig6_runner(dataset)
        for dataset in figures.FIG6_DATASETS
    },
    "fig7": figures.fig7_write_latency,
    "fig8": figures.fig8_latency_vs_k,
    "fig9": figures.fig9_kv_stores,
    "fig10": figures.fig10_workload_shift,
    "fig11": figures.fig11_training_time,
    "fig12": figures.fig12_address_wear,
    "fig13": figures.fig13_bit_wear,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate tables/figures of the PNW paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see 'list'), or 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    requested = list(args.experiments)
    if requested == ["list"]:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0
    if requested == ["all"]:
        requested = list(EXPERIMENTS)

    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for exp_id in requested:
        report(EXPERIMENTS[exp_id]())
    return 0

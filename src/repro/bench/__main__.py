"""``python -m repro.bench`` — regenerate paper tables/figures."""

import sys

from .cli import main

sys.exit(main())

"""Plain-text rendering and persistence of experiment results.

Benchmarks both print their tables (so ``pytest benchmarks/`` output is a
readable lab notebook) and save them under ``results/`` for
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path

from .metrics import ExperimentResult

__all__ = [
    "render",
    "save",
    "report",
    "results_dir",
    "results_path",
    "parse_int_list",
]


def parse_int_list(text: str, *, minimum: int | None = None) -> list[int]:
    """Argparse type for comma-separated integer sweeps.

    Shared by the plain benchmark scripts (batch sizes, shard counts,
    probe limits) so the parsing and its error messages live in one
    place.  ``minimum`` rejects values below a floor; the list itself
    must be non-empty.
    """
    try:
        values = [int(piece) for piece in text.split(",")]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError("expected at least one integer")
    if minimum is not None and any(value < minimum for value in values):
        raise argparse.ArgumentTypeError(f"values must be >= {minimum}")
    return values


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render(result: ExperimentResult) -> str:
    """Render a result as an aligned monospace table."""
    lines = [f"== {result.exp_id}: {result.title} =="]
    if result.params:
        params = ", ".join(f"{k}={v}" for k, v in result.params.items())
        lines.append(f"params: {params}")
    table = [result.columns] + [
        [_format_cell(v) for v in row] for row in result.rows
    ]
    widths = [max(len(row[i]) for row in table) for i in range(len(result.columns))]
    header, *body = table
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def results_dir() -> Path:
    """Directory for persisted tables (override with PNW_RESULTS_DIR)."""
    path = Path(os.environ.get("PNW_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


def results_path(name: str, suffix: str = ".txt") -> Path:
    """Canonical path for one persisted artifact under the results dir.

    Every script that writes an output file goes through this helper
    (instead of hand-rolling ``results/<something>.txt``), so the
    ``PNW_RESULTS_DIR`` override, directory creation, and naming scheme
    live in exactly one place.  ``name`` is the artifact's identifier
    (e.g. ``fig6-normal`` or ``bench-shard-scaling``); path separators
    are rejected so artifacts cannot escape the results directory.
    """
    if not name:
        raise ValueError("artifact name must be non-empty")
    if "/" in name or "\\" in name:
        raise ValueError(f"artifact name {name!r} must not contain path separators")
    return results_dir() / f"{name}{suffix}"


def save(result: ExperimentResult) -> Path:
    """Persist the rendered table; returns the file path."""
    path = results_path(result.exp_id)
    path.write_text(render(result) + "\n")
    return path


def report(result: ExperimentResult) -> ExperimentResult:
    """Print and save a result; returns it for chaining/assertions."""
    text = render(result)
    print("\n" + text)
    save(result)
    return result

"""Fig. 6 (all panels): bit updates per 512 bits vs K, per dataset.

One test per panel; each prints the full method-vs-K table and asserts
the paper's qualitative claims for that panel.  The timed kernel is the
PNW PUT hot path (predict + pool probe + data-comparison write).
"""

import pytest

from repro.bench import fig6_bit_updates, report, run_pnw_stream
from repro.workloads import make_workload

CLUSTERABLE = ("amazon", "roadnet", "sherbrooke", "seq2", "normal",
               "docwords", "cifar")


def _assert_clusterable_shape(result):
    """PNW ends below every RBW baseline; the Algorithm-2 variant's
    improvement grows with k (the probe variant starts strong at k=1
    already, so its curve is flat-to-down rather than monotone)."""
    last = result.row_dicts()[-1]
    for baseline in ("DCW", "FNW", "MinShift", "CAP16"):
        assert last["PNW"] < last[baseline]
    pop = result.column("PNW-pop")
    assert pop[-1] <= pop[0]
    first = result.row_dicts()[0]
    # The paper's k=1 anchor: the pop variant does what DCW does.
    assert first["PNW-pop"] == pytest.approx(first["DCW"], rel=0.15)


@pytest.mark.parametrize("dataset", CLUSTERABLE)
def test_fig6_panel(dataset, benchmark):
    result = report(fig6_bit_updates(dataset))
    _assert_clusterable_shape(result)
    _time_put_kernel(dataset, benchmark)


def test_fig6f_uniform(benchmark):
    """The paper's negative result: uniform data defeats clustering —
    the Algorithm-2 variant stays at DCW level, behind FNW and CAP16."""
    result = report(fig6_bit_updates("uniform"))
    last = result.row_dicts()[-1]
    assert last["PNW-pop"] > last["FNW"]
    assert last["PNW-pop"] > last["CAP16"]
    assert last["PNW-pop"] < last["Conventional"]
    _time_put_kernel("uniform", benchmark)


def _time_put_kernel(dataset, benchmark):
    workload = make_workload(dataset, seed=3)
    old, new = workload.split_old_new(256, 64)
    from repro.bench import PNWStreamSession

    session = PNWStreamSession(old, n_clusters=8, seed=3)
    items = iter(new)

    def put_one():
        try:
            session.run(next(items)[None, :])
        except StopIteration:  # pragma: no cover - benchmark overruns
            pass

    benchmark(put_one)

"""Table I: memory technology comparison (constants + latency model)."""

from repro.bench import report, table1_memory_technologies
from repro.nvm import LatencyModel


def test_table1(benchmark):
    result = report(table1_memory_technologies())
    assert len(result.rows) == 6
    model = LatencyModel()
    benchmark(lambda: model.write_ns(48))

"""Fig. 10: MNIST -> Fashion-MNIST workload shift and retraining."""

from repro.bench import fig10_workload_shift, report


def _phase_mean(result, phase):
    rows = [r for r in result.row_dicts() if r["phase"] == phase]
    return sum(r["bits_per_512"] for r in rows) / len(rows)


def test_fig10(benchmark):
    result = report(fig10_workload_shift())
    stable = _phase_mean(result, "phase1-mnist")
    shifted = _phase_mean(result, "phase2-mixed")
    stale = _phase_mean(result, "phase3-fashion")
    recovered = _phase_mean(result, "phase4-fashion+retrain")
    # The paper's claims: performance degrades immediately when foreign
    # data arrives (phase 2 jump), and retraining on the new distribution
    # improves on the stale model for the same incoming data (phase 4 vs
    # phase 3 — the paper's "results got better and fluctuated less").
    assert shifted > stable * 1.5
    assert recovered < stale
    benchmark(lambda: (stable, shifted, stale, recovered))

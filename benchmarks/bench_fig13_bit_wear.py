"""Fig. 13: CDF of per-bit update counts (bit-level wear leveling)."""

from repro.bench import fig13_bit_wear, report


def test_fig13(benchmark):
    result = report(fig13_bit_wear())
    rows = {r["k"]: r for r in result.row_dicts()}
    # The paper's headline: more clusters -> items within a cluster are
    # more similar -> each write flips fewer bits, so the k=30 CDF sits
    # above the k=5 CDF.  Our image families separate well even at low k,
    # so the contrast is clearest at the low thresholds (see
    # EXPERIMENTS.md for the magnitude discussion).
    assert rows[30]["P(X<=1)"] >= rows[5]["P(X<=1)"] - 0.02
    assert rows[30]["P(X<=2)"] >= rows[5]["P(X<=2)"] - 0.02
    for row in rows.values():
        assert row["P(X<=1)"] <= row["P(X<=8)"] <= 1.0
    benchmark(lambda: rows[30]["max_bit_updates"])

"""Fig. 4: the SSE elbow curve used to choose K."""

import numpy as np

from repro.bench import fig4_elbow, report
from repro.ml import KMeans
from repro.workloads import MNISTLikeWorkload


def test_fig4(benchmark):
    result = report(fig4_elbow())
    sse = result.column("sse")
    assert sse[0] > sse[-1]
    images = MNISTLikeWorkload(seed=0).generate(256).astype(np.float64)
    benchmark(lambda: KMeans(5, n_init=1, seed=0).fit(images))

"""Fig. 7: end-to-end write latency per dataset (normalised)."""

from repro.bench import fig7_write_latency, report


def test_fig7(benchmark):
    result = report(fig7_write_latency())
    rows = {r["dataset"]: r for r in result.row_dicts()}
    # PNW never writes more lines than in-place DCW on any dataset, and on
    # the large multi-line items (where whole lines can be skipped) it
    # beats Conventional outright — the paper's Fig. 7 shape.
    for row in rows.values():
        assert row["PNW"] <= row["DCW"] + 1e-9
    for dataset in ("cifar", "seq2"):
        assert rows[dataset]["PNW"] < 1.0
    benchmark(lambda: sum(r["PNW"] for r in result.row_dicts()))

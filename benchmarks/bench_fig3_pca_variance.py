"""Fig. 3: PCA variance ratio vs number of principal components."""

import numpy as np

from repro.bench import fig3_pca_variance, report
from repro.ml import PCA
from repro.workloads import MNISTLikeWorkload


def test_fig3(benchmark):
    result = report(fig3_pca_variance())
    curve = result.column("cumulative_variance_ratio")
    assert curve[-1] > 0.999
    images = MNISTLikeWorkload(seed=0).generate(256).astype(np.float64)
    benchmark(lambda: PCA(n_components=32, seed=0).fit(images))

"""Ablations of PNW's design choices (DESIGN.md §8 — beyond the paper).

Four knobs the paper fixes (or leaves ambiguous) are swept here:

1. pool policy — min-Hamming probe depth (0 = Algorithm 2's plain pop),
2. PCA on/off for large values (speed vs steering quality),
3. full Lloyd retrain vs mini-batch refresh,
4. update mode — endurance (delete + steered put) vs latency (in place).
"""

import time

import numpy as np

from repro.bench import (
    ExperimentResult,
    report,
    run_pnw_stream,
)
from repro.ml import KMeans, MiniBatchKMeans
from repro.workloads import MNISTLikeWorkload, make_workload


def test_ablation_probe_depth(benchmark):
    """Deeper probing monotonically (within noise) reduces bit updates,
    at higher DRAM-side scoring cost."""
    workload = make_workload("amazon", seed=5)
    old, new = workload.split_old_new(512, 1500)
    result = ExperimentResult(
        exp_id="ablation-probe",
        title="Pool policy: probe depth vs bit updates (amazon, k=8)",
        columns=["probe_limit", "bits_per_512"],
    )
    series = {}
    for probe in (0, 4, 16, 64, -1):
        metrics, _ = run_pnw_stream(old, new, 8, seed=5, probe_limit=probe)
        series[probe] = metrics.bits_per_512
        result.add_row("all" if probe < 0 else probe, metrics.bits_per_512)
    report(result)
    assert series[-1] <= series[0]
    assert series[64] <= series[0]
    benchmark(lambda: min(series.values()))


def test_ablation_pca(benchmark):
    """PCA slashes prediction cost on large values without giving up the
    steering win."""
    workload = make_workload("cifar", seed=5)
    old, new = workload.split_old_new(256, 512)
    result = ExperimentResult(
        exp_id="ablation-pca",
        title="PCA on/off for 3 KB values (cifar, k=8)",
        columns=["pca", "bits_per_512", "predict_us", "train_s"],
    )
    outcomes = {}
    for pca in (None, 32):
        started = time.perf_counter()
        metrics, store = run_pnw_stream(
            old, new, 8, seed=5, pca_components=pca, featurizer="byte"
        )
        elapsed = time.perf_counter() - started
        outcomes[pca] = metrics
        result.add_row(
            "off" if pca is None else f"{pca} comps",
            metrics.bits_per_512,
            metrics.predict_ns_per_item / 1000.0,
            elapsed,
        )
    report(result)
    # The steering win survives projection (within 25%).
    assert outcomes[32].bits_per_512 < outcomes[None].bits_per_512 * 1.25
    benchmark(lambda: outcomes[32].bits_per_512)


def test_ablation_minibatch_retrain(benchmark):
    """Mini-batch refresh approaches full-Lloyd quality at a fraction of
    the training time (the background-retraining story of §V-C)."""
    images = MNISTLikeWorkload(seed=5).generate(2000).astype(np.float64)
    started = time.perf_counter()
    full = KMeans(8, n_init=1, seed=5).fit(images)
    full_time = time.perf_counter() - started
    started = time.perf_counter()
    mini = MiniBatchKMeans(8, batch_size=128, max_iter=30, seed=5).fit(images)
    mini_time = time.perf_counter() - started

    from repro.ml._parallel import assign_dense

    _, _, _, full_sse = assign_dense(images, full.cluster_centers_)
    _, _, _, mini_sse = assign_dense(images, mini.cluster_centers_)

    result = ExperimentResult(
        exp_id="ablation-minibatch",
        title="Full Lloyd vs mini-batch refresh (MNIST-like, k=8)",
        columns=["trainer", "sse", "seconds"],
    )
    result.add_row("lloyd", full_sse, full_time)
    result.add_row("minibatch", mini_sse, mini_time)
    report(result)
    assert mini_sse < full_sse * 1.5  # quality within 50%
    benchmark(lambda: assign_dense(images[:200], mini.cluster_centers_))


def test_ablation_update_mode(benchmark):
    """Endurance updates (delete + steered put) flip fewer bits than
    in-place updates — the §V-B3 trade-off, quantified."""
    from repro.bench import make_pnw_store, key_for

    workload = make_workload("amazon", seed=5)
    old = workload.generate(512)
    updates = workload.generate(1000)
    outcomes = {}
    for mode in ("endurance", "latency"):
        store = make_pnw_store(512, 64, 8, seed=5, update_mode=mode)
        store.warm_up(old)
        # Install 64 keys, then hammer them with updates.
        for i in range(64):
            store.put(key_for(i), old[i])
        bits = 0
        for i, value in enumerate(updates):
            report_op = store.update(key_for(i % 64), value)
            bits += report_op.bit_updates
        outcomes[mode] = bits / len(updates)
    result = ExperimentResult(
        exp_id="ablation-update-mode",
        title="Update mode: endurance vs latency (amazon, k=8)",
        columns=["mode", "bit_updates_per_update"],
    )
    for mode, bits in outcomes.items():
        result.add_row(mode, bits)
    report(result)
    assert outcomes["endurance"] < outcomes["latency"]
    benchmark(lambda: outcomes["endurance"])

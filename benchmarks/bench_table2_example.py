"""Table II + §IV walkthrough: the 6-entry PCM steering example."""

from repro.bench import report, table2_clustering_example


def test_table2(benchmark):
    result = report(table2_clustering_example())
    assert result.column("bit_flips") == [1, 1]
    benchmark(table2_clustering_example)

#!/usr/bin/env python
"""Acknowledged-op survival under injected NVM wear-out.

Two grids, one claim: **every acknowledged write remains readable with
the exact acknowledged bytes**, no matter how many cells the fault
model depletes.

* **Store grid** — the full stack (steering, write-verify, relocation,
  retirement) per backend (single zone / sharded threads / sharded
  processes), driven with uniform-random payloads over a 1%
  depleted-budget fault injection, measured before and after a
  crash/recover cycle.  Records survival rate, rows retired, and the
  op count at the first retirement.
* **Scheme grid** — the raw device with each RBW write scheme
  (Conventional/DCW/FNW/MinShift/Captopril) plus bench-level
  read-back-verify + relocation, isolating how each scheme's
  programmed-cell pattern collides with weakened cells.  Schemes that
  program fewer cells trip fewer stuck bits and retire later.

Exit status is non-zero if any acknowledged op is unreadable (survival
below 100%) — this is the CI gate for the media fault-injection smoke.

Run:

    PYTHONPATH=src python benchmarks/bench_media_survival.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import PNWConfig, make_store
from repro.bench import ExperimentResult, report
from repro.errors import DegradedModeError, PoolExhaustedError
from repro.nvm import FaultModel, SimulatedNVM
from repro.writeschemes import default_schemes

BACKENDS = ("single", "threads", "processes")


# --------------------------------------------------------------------- #
# store grid                                                            #
# --------------------------------------------------------------------- #

def build_store(args, backend: str):
    config = PNWConfig(
        num_buckets=args.buckets,
        value_bytes=args.value_bytes,
        key_bytes=8,
        n_clusters=4,
        seed=args.seed,
        n_init=1,
        max_iter=25,
        media_fault_rate=args.fault_rate,
        media_fault_budget=args.fault_budget,
        media_retire_watermark=1.0,
        **({} if backend == "single" else
           {"shards": 3,
            "executor": "thread" if backend == "threads" else "process"}),
    )
    store = make_store(config)
    rng = np.random.default_rng(args.seed)
    store.warm_up(
        rng.integers(0, 256, (args.buckets, args.value_bytes), dtype=np.uint8)
    )
    return store


def media_stats_of(store):
    stats = store.media_stats
    return stats() if callable(stats) else stats


def drive_store(args, store) -> tuple[dict[bytes, bytes], int, int]:
    """Hostile put/update stream in batches; returns (acked oracle,
    acked op count, op index of the first retirement or -1)."""
    rng = np.random.default_rng(args.seed + 1)
    acked: dict[bytes, bytes] = {}
    ops_acked = 0
    first_retirement = -1
    keys: list[bytes] = []
    for round_no in range(args.rounds):
        fresh = rng.integers(0, 256, (args.batch, args.value_bytes),
                             dtype=np.uint8)
        if round_no % 3 == 2 and len(keys) >= args.batch:
            # every third round rewrites existing keys
            picks = rng.choice(len(keys), size=args.batch, replace=False)
            batch = [(keys[int(i)], fresh[j].tobytes())
                     for j, i in enumerate(picks)]
            submit = store.update_many
        else:
            batch = [(f"r{round_no}-{i}".encode(), fresh[i].tobytes())
                     for i in range(args.batch)]
            submit = store.put_many
        try:
            submit(batch)
        except (DegradedModeError, PoolExhaustedError) as exc:
            for rep in getattr(exc, "committed_reports", []) or []:
                lookup = {k.ljust(len(rep.key), b"\x00"): v for k, v in batch}
                acked[rep.key] = lookup[rep.key]
                ops_acked += 1
            break
        if submit is store.put_many:
            keys.extend(key for key, _ in batch)
        acked.update(batch)
        ops_acked += len(batch)
        if first_retirement < 0 and media_stats_of(store).rows_retired > 0:
            first_retirement = ops_acked
    return acked, ops_acked, first_retirement


def check_survival(store, acked: dict[bytes, bytes]) -> int:
    unreadable = 0
    for key, value in acked.items():
        try:
            if store.get(key) != value:
                unreadable += 1
        except Exception:
            unreadable += 1
    return unreadable


def store_grid(args, result: ExperimentResult) -> list[str]:
    failures: list[str] = []
    for backend in BACKENDS:
        store = build_store(args, backend)
        try:
            acked, ops_acked, first_retirement = drive_store(args, store)
            unreadable = check_survival(store, acked)
            store.crash()
            store.recover()
            unreadable_after = check_survival(store, acked)
            stats = media_stats_of(store)
            survival = 1.0 - (unreadable + unreadable_after) / max(1, 2 * len(acked))
            result.add_row(
                f"store/{backend}", ops_acked, f"{survival:.1%}",
                stats.verify_failures, stats.relocations, stats.rows_retired,
                first_retirement,
            )
            if unreadable or unreadable_after:
                failures.append(
                    f"store/{backend}: {unreadable} acked ops unreadable "
                    f"(+{unreadable_after} after crash/recover) of {len(acked)}"
                )
        finally:
            closer = getattr(store, "close", None)
            if closer is not None:
                closer()
    return failures


# --------------------------------------------------------------------- #
# scheme grid                                                           #
# --------------------------------------------------------------------- #

def scheme_grid(args, result: ExperimentResult) -> list[str]:
    """Raw device + per-scheme write traffic with bench-level verify:
    write, decode-back, relocate on mismatch, retire the bad row."""
    failures: list[str] = []
    rng_master = np.random.default_rng(args.seed + 2)
    payloads = rng_master.integers(
        0, 256, (args.scheme_writes, args.value_bytes), dtype=np.uint8
    )
    for scheme in default_schemes():
        faults = FaultModel(
            args.buckets, args.value_bytes,
            fault_rate=args.fault_rate, fault_budget=args.fault_budget,
            seed=args.seed,
        )
        nvm = SimulatedNVM(args.buckets, args.value_bytes, faults=faults)
        free = list(range(args.buckets))
        placed: list[tuple[int, np.ndarray]] = []
        retired = verify_failures = 0
        first_retirement = -1
        acked_ops = 0
        for op, payload in enumerate(payloads):
            landed = None
            while free:
                address = free.pop(0)
                nvm.write(address, payload, scheme=scheme)
                if np.array_equal(nvm.read_logical(address, scheme), payload):
                    landed = address
                    break
                verify_failures += 1
                retired += 1  # condemned: never returned to the free list
                if first_retirement < 0:
                    first_retirement = op + 1
            if landed is None:
                break
            placed.append((landed, payload))
            acked_ops += 1
        unreadable = sum(
            1 for address, payload in placed
            if not np.array_equal(nvm.read_logical(address, scheme), payload)
        )
        survival = 1.0 - unreadable / max(1, len(placed))
        result.add_row(
            f"scheme/{scheme.name}", acked_ops, f"{survival:.1%}",
            verify_failures, verify_failures, retired, first_retirement,
        )
        if unreadable:
            failures.append(
                f"scheme/{scheme.name}: {unreadable} verified rows "
                f"unreadable of {len(placed)}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI sizes, same 100%-survival gate")
    parser.add_argument("--buckets", type=int, default=None)
    parser.add_argument("--value-bytes", type=int, default=24)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--batch", type=int, default=10)
    parser.add_argument("--scheme-writes", type=int, default=None)
    parser.add_argument("--fault-rate", type=float, default=0.01,
                        help="fraction of data bits with depleted budgets")
    parser.add_argument("--fault-budget", type=int, default=0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    if args.buckets is None:
        args.buckets = 258 if args.smoke else 1026
    if args.rounds is None:
        args.rounds = 12 if args.smoke else 60
    if args.scheme_writes is None:
        args.scheme_writes = 120 if args.smoke else 600

    result = ExperimentResult(
        exp_id="bench-media-survival",
        title="Media wear-out: acknowledged-op survival and retirements",
        columns=["case", "acked_ops", "survival", "verify_failures",
                 "relocations", "rows_retired", "first_retirement_op"],
        params={
            "buckets": args.buckets, "value_bytes": args.value_bytes,
            "fault_rate": args.fault_rate, "fault_budget": args.fault_budget,
            "rounds": args.rounds, "batch": args.batch,
            "scheme_writes": args.scheme_writes, "seed": args.seed,
        },
    )
    failures = store_grid(args, result)
    failures += scheme_grid(args, result)
    result.notes.append(
        "store rows measure the full stack (verify + relocate + retire) "
        "with survival checked before AND after crash/recover; scheme "
        "rows isolate the raw device under each RBW write scheme with "
        "bench-level verify.  The gate is 100% survival everywhere."
    )
    report(result)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Coalesced single-op ingestion vs hand-batched PUT throughput.

The IngestQueue accepts one op at a time, coalesces pending ops into
per-shard batches under a size/latency-deadline policy, and drains them
through the store's batch pipelines.  This benchmark measures the tax of
that convenience: ops/sec of single ``queue.put`` submissions (resolved
futures included) against direct ``put_many`` calls of the same batch
size, plus a deadline sweep showing how the latency bound trades against
throughput.  At the end it verifies the coalesced store's NVM state is
byte-identical to the hand-batched store's.

Run:

    PYTHONPATH=src python benchmarks/bench_ingest_throughput.py [--quick]

Like the other plain scripts (``bench_batch_throughput``,
``bench_shard_scaling``), this is CI-smokeable with ``--quick`` and
gates on ``--min-ratio`` (coalesced / hand-batched, default 0.8).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import IngestQueue
from repro.bench import key_for, make_pnw_store, results_path
from repro.shard import ShardedPNWStore
from repro.workloads import make_workload


def build_store(old_values: np.ndarray, args) -> object:
    store = make_pnw_store(
        old_values.shape[0], old_values.shape[1], args.n_clusters,
        seed=args.seed, probe_limit=args.probe_limit, shards=args.shards,
    )
    store.warm_up(old_values)
    return store


def snapshots(store) -> list[np.ndarray]:
    if isinstance(store, ShardedPNWStore):
        return [shard.nvm.snapshot() for shard in store.stores]
    return [store.nvm.snapshot()]


def run_batched(store, keys, values, batch_size: int) -> float:
    started = time.perf_counter()
    for start in range(0, len(keys), batch_size):
        store.put_many(
            list(zip(keys[start : start + batch_size],
                     values[start : start + batch_size]))
        )
    return time.perf_counter() - started


def run_coalesced(store, keys, values, batch_size: int,
                  max_delay: float) -> float:
    started = time.perf_counter()
    with IngestQueue(store, max_batch=batch_size, max_delay=max_delay) as q:
        futures = [q.put(key, value) for key, value in zip(keys, values)]
        q.flush()
        for future in futures:
            future.result()
    return time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke sizes (a few thousand ops)",
    )
    parser.add_argument("--workload", default="normal")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="max_batch of the queue and the hand-batched "
                             "put_many size it is compared against")
    parser.add_argument("--n-clusters", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--probe-limit", type=int, default=64)
    parser.add_argument("--shards", type=int, default=1,
                        help="hash-partition the zone; the queue groups "
                             "ops per shard before dispatch")
    parser.add_argument(
        "--deadlines", default="0.001,0.01,0.1",
        help="comma-separated max_delay sweep (seconds) for the "
             "deadline table",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="exit non-zero unless coalesced throughput reaches this "
             "fraction of the hand-batched pipeline",
    )
    args = parser.parse_args(argv)

    num_buckets = 4096 if args.quick else 16384
    n_ops = 2048 if args.quick else 8192
    batch_size = args.batch_size
    deadlines = [float(piece) for piece in args.deadlines.split(",")]

    workload = make_workload(args.workload, seed=args.seed)
    old_values = workload.generate(num_buckets)
    new_values = np.vstack(list(workload.batches(n_ops, batch_size)))
    keys = [key_for(i) for i in range(n_ops)]

    lines = [f"workload={args.workload}  zone={num_buckets} buckets x "
             f"{old_values.shape[1]}B values  ops={n_ops}  "
             f"batch={batch_size}  K={args.n_clusters}  "
             f"probe_limit={args.probe_limit}  shards={args.shards}"]
    print(lines[0])

    batched_store = build_store(old_values, args)
    batched_seconds = run_batched(batched_store, keys, new_values, batch_size)
    batched_ops = n_ops / batched_seconds
    lines.append(f"{'hand-batched put_many':>24}: {batched_ops:10.0f} ops/s   "
                 f"(baseline)")
    print(lines[-1])
    reference = snapshots(batched_store)

    # Headline: a huge deadline so coalescing is purely size-triggered —
    # the deterministic regime the equivalence tests pin.
    coalesced_store = build_store(old_values, args)
    coalesced_seconds = run_coalesced(
        coalesced_store, keys, new_values, batch_size, max_delay=60.0
    )
    coalesced_ops = n_ops / coalesced_seconds
    ratio = batched_seconds / coalesced_seconds
    identical = all(
        np.array_equal(snap, ref)
        for snap, ref in zip(snapshots(coalesced_store), reference)
    )
    lines.append(f"{'coalesced singles':>24}: {coalesced_ops:10.0f} ops/s   "
                 f"{ratio:5.2f}x of batched   state-identical={identical}")
    print(lines[-1])
    if not identical:
        print("ERROR: coalesced NVM state diverged from hand-batched",
              file=sys.stderr)
        return 1

    lines.append("deadline sweep (max_delay -> coalesced throughput):")
    print(lines[-1])
    for max_delay in deadlines:
        store = build_store(old_values, args)
        seconds = run_coalesced(store, keys, new_values, batch_size, max_delay)
        lines.append(f"{'max_delay=' + format(max_delay, 'g') + 's':>24}: "
                     f"{n_ops / seconds:10.0f} ops/s")
        print(lines[-1])

    saved = results_path("bench-ingest-throughput")
    saved.write_text("\n".join(lines) + "\n")
    print(f"saved {saved}")

    if args.min_ratio is not None and ratio < args.min_ratio:
        print(f"ERROR: coalesced throughput is {ratio:.2f}x of "
              f"hand-batched, below the required {args.min_ratio:.2f}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fig. 8: average write latency vs K on the PubMed-like stream."""

from repro.bench import fig8_latency_vs_k, report


def test_fig8(benchmark):
    result = report(fig8_latency_vs_k())
    latency = result.column("latency_us_per_item")
    # The paper's claim: more clusters -> more similar replacements ->
    # fewer written lines -> lower latency.
    assert latency[-1] <= latency[0]
    benchmark(lambda: result.column("lines_per_item"))

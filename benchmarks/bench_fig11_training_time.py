"""Fig. 11: model training time — single core vs multi-core."""

import numpy as np

from repro.bench import fig11_training_time, report, time_training


def test_fig11(benchmark):
    result = report(fig11_training_time())
    rows = result.row_dicts()
    # Training time grows with the sample count at fixed k and jobs.
    for dataset in {r["dataset"] for r in rows}:
        for k in (2, 16):
            series = [r for r in rows
                      if r["dataset"] == dataset and r["k"] == k and r["jobs"] == 1]
            series.sort(key=lambda r: r["n_samples"])
            assert series[-1]["seconds"] > series[0]["seconds"]
    # Multi-core should win on the largest configuration.
    big = [r for r in rows if r["n_samples"] == max(r["n_samples"] for r in rows)
           and r["k"] == 16]
    single = next(r for r in big if r["jobs"] == 1)
    multi = next(r for r in big if r["jobs"] == 4)
    assert multi["seconds"] < single["seconds"] * 1.5  # at worst comparable

    features = np.random.default_rng(0).normal(0, 1, (512, 256))
    benchmark(lambda: time_training(features, 4, 1, max_iter=5))

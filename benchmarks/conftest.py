"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper (printing and
persisting the result table under ``results/``) and times a
representative kernel with pytest-benchmark.  Set ``PNW_BENCH_SCALE`` to
grow workloads toward paper scale.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _print_header():
    print("\n=== PNW reproduction benchmarks (tables under results/) ===")
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)

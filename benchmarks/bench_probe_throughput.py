#!/usr/bin/env python
"""Sequential vs probe-engine PUT throughput across probe limits and occupancy.

The pool's minimum-Hamming probe (paper §IV) is the PUT hot loop: at
``probe_limit=-1`` every free address of the predicted cluster is scored
per pop.  The probe engine keeps free lists in array-backed FIFOs and
each free address's bytes in a contiguous DRAM content cache, scoring
whole batches against cache windows with cluster-grouped popcount
kernels.  This benchmark sweeps ``probe_limit`` x zone occupancy (free-
list depth is what the probe pays for) and measures per-op ``put``
against engine-batched ``put_many``, verifying at the end that both
stores hold byte-identical NVM state.

Run:

    PYTHONPATH=src python benchmarks/bench_probe_throughput.py [--quick]

Like the other throughput scripts this is plain (not pytest-benchmark)
so CI can smoke it with ``--quick``.  The default ``--min-speedup 2``
gates the batched engine at ``probe_limit=-1`` — the configuration the
content cache exists for.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.bench import key_for, make_pnw_store, parse_int_list, results_path
from repro.workloads import make_workload


def float_list(text: str) -> list[float]:
    try:
        values = [float(piece) for piece in text.split(",")]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated floats, got {text!r}"
        ) from None
    if any(not 0.0 <= v < 0.8 for v in values):
        raise argparse.ArgumentTypeError(
            "occupancies must be in [0, 0.8) to stay clear of the load factor"
        )
    return values


def build_store(old_values, n_clusters, seed, probe_limit, prefill,
                shards=1, executor="thread"):
    """Warmed store with ``prefill`` live keys (installed via the batch
    path, which is state-identical to sequential puts)."""
    store = make_pnw_store(
        old_values.shape[0], old_values.shape[1], n_clusters,
        seed=seed, probe_limit=probe_limit, shards=shards, executor=executor,
    )
    store.warm_up(old_values)
    pairs, batch = prefill
    for start in range(0, len(pairs), batch):
        store.put_many(pairs[start : start + batch])
    return store


def total_free(store) -> int:
    """Pool headroom for either store flavor."""
    return store.total_free if hasattr(store, "total_free") else store.pool.total_free


def state_identical(store_a, store_b) -> bool:
    """Byte-identity of the data zone(s) across two same-shape stores."""
    if hasattr(store_a, "stores"):
        return all(
            bool(np.array_equal(sa.nvm.snapshot(), sb.nvm.snapshot()))
            for sa, sb in zip(store_a.stores, store_b.stores)
        )
    return bool(np.array_equal(store_a.nvm.snapshot(), store_b.nvm.snapshot()))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke sizes (a few thousand ops)",
    )
    parser.add_argument(
        "--workload", default="normal",
        help="registered workload name (default: the paper's synthetic "
             "normal-integer stream)",
    )
    parser.add_argument(
        "--probe-limits", default=[0, 64, -1], type=parse_int_list,
        help="comma-separated probe limits to sweep (0: FIFO ablation, "
             "-1: whole free list)",
    )
    parser.add_argument(
        "--occupancies", default=[0.0, 0.5], type=float_list,
        help="live fractions to pre-fill before measuring (deeper free "
             "lists at low occupancy = more probe work per pop)",
    )
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--n-clusters", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition the zone into N shards (1: plain store)",
    )
    parser.add_argument(
        "--executor", default="thread", choices=("thread", "process"),
        help="shard executor when --shards > 1 (see bench_shard_scaling)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="exit non-zero unless the batched engine beats the per-op "
             "loop by this factor at probe_limit=-1 (best row across the "
             "occupancy sweep; at extreme free-list depth both paths are "
             "bound by the same popcount kernel, so the deepest row is "
             "not a regression signal; 0 disables)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timed runs per configuration, best-of (default: 3 full, "
             "1 quick) — wall-clock throughput on shared hosts is noisy",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    num_buckets = 4096 if args.quick else 16384
    n_ops = 1024 if args.quick else 2048

    workload = make_workload(args.workload, seed=args.seed)
    old_values = workload.generate(num_buckets)
    value_bytes = old_values.shape[1]

    lines = [f"workload={args.workload}  zone={num_buckets} buckets x "
             f"{value_bytes}B values  ops={n_ops}  batch={args.batch_size}  "
             f"K={args.n_clusters}  shards={args.shards}  "
             f"executor={args.executor}"]
    print(lines[0])
    header = (f"{'probe':>6} {'occ':>5} {'free/cluster':>12} "
              f"{'put (seq)':>12} {'put_many':>12} {'speedup':>8}  state")
    lines.append(header)
    print(header)

    failures: list[str] = []
    gated_speedups: list[float] = []
    for occupancy in args.occupancies:
        n_prefill = int(occupancy * num_buckets)
        prefill_values = np.vstack(
            list(workload.batches(n_prefill, args.batch_size))
        ) if n_prefill else np.zeros((0, value_bytes), dtype=np.uint8)
        prefill = (
            [(key_for(i), prefill_values[i]) for i in range(n_prefill)],
            args.batch_size,
        )
        stream = np.vstack(list(workload.batches(n_ops, args.batch_size)))
        keys = [key_for(n_prefill + i) for i in range(n_ops)]
        for probe_limit in args.probe_limits:
            # Best-of-N per half: store state is deterministic (same seed
            # every repeat), only the wall clock varies with host load.
            seq_ops = batch_ops = 0.0
            for attempt in range(max(1, repeats)):
                last = attempt == max(1, repeats) - 1
                seq_store = build_store(
                    old_values, args.n_clusters, args.seed, probe_limit, prefill,
                    shards=args.shards, executor=args.executor,
                )
                free_depth = total_free(seq_store) // args.n_clusters
                started = time.perf_counter()
                for key, value in zip(keys, stream):
                    seq_store.put(key, value)
                seq_ops = max(seq_ops, n_ops / (time.perf_counter() - started))

                batch_store = build_store(
                    old_values, args.n_clusters, args.seed, probe_limit, prefill,
                    shards=args.shards, executor=args.executor,
                )
                started = time.perf_counter()
                for start in range(0, n_ops, args.batch_size):
                    batch_store.put_many(
                        list(zip(keys[start : start + args.batch_size],
                                 stream[start : start + args.batch_size]))
                    )
                batch_ops = max(batch_ops, n_ops / (time.perf_counter() - started))
                if not last:
                    for store in (seq_store, batch_store):
                        if hasattr(store, "close"):
                            store.close()

            speedup = batch_ops / seq_ops
            identical = state_identical(seq_store, batch_store)
            for store in (seq_store, batch_store):
                if hasattr(store, "close"):
                    store.close()
            line = (f"{probe_limit:>6} {occupancy:>5.2f} {free_depth:>12} "
                    f"{seq_ops:>10.0f}/s {batch_ops:>10.0f}/s "
                    f"{speedup:>7.2f}x  identical={identical}")
            lines.append(line)
            print(line)
            if not identical:
                failures.append(
                    f"probe_limit={probe_limit} occupancy={occupancy}: "
                    "batched NVM state diverged from sequential"
                )
            if probe_limit == -1:
                gated_speedups.append(speedup)

    if args.min_speedup and gated_speedups:
        best = max(gated_speedups)
        if best < args.min_speedup:
            failures.append(
                f"best probe_limit=-1 speedup {best:.2f}x below the "
                f"required {args.min_speedup:.2f}x"
            )

    saved = results_path("bench-probe-throughput")
    saved.write_text("\n".join(lines) + "\n")
    print(f"saved {saved}")

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

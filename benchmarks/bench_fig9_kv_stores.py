"""Fig. 9: written cache lines per request vs persistent K/V stores."""

from repro.bench import fig9_kv_stores, report
from repro.stores import PathHashKVStore


def test_fig9(benchmark):
    result = report(fig9_kv_stores())
    for row in result.row_dicts():
        # The paper's ordering: PNW fewest, then path hashing, then the
        # tree/LSM structures.
        assert row["PNW"] < row["PathHash"]
        assert row["PathHash"] < max(row["FPTree"], row["NoveLSM"])

    store = PathHashKVStore(8, 64, capacity=4096)
    counter = iter(range(10**9))
    benchmark(lambda: store.put(str(next(counter)).encode(), b"v"))

#!/usr/bin/env python
"""Batched vs sequential PUT throughput through the PNW store.

The paper's Algorithm 2 is executed one K/V pair at a time; the batch
write pipeline featurizes, predicts, and commits whole batches through
vectorized paths while staying state-identical to the sequential loop.
This benchmark measures what that buys: ops/sec of ``put_many`` at
several batch sizes against the plain ``put`` loop, on the paper's
synthetic workload (§VI-D normal-integer stream), and verifies at the
end that both stores hold byte-identical NVM state.

Run:

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py [--quick]

Unlike the ``bench_fig*.py`` figure reproductions (which run under
pytest-benchmark), this is a plain script so CI can smoke it with
``--quick`` and operators can sweep batch sizes directly.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time

import numpy as np

from repro.bench import key_for, make_pnw_store, parse_int_list, results_path
from repro.workloads import make_workload

batch_size_list = functools.partial(parse_int_list, minimum=1)


def build_store(
    old_values: np.ndarray, n_clusters: int, seed: int, probe_limit: int,
    shards: int = 1, executor: str = "thread",
):
    store = make_pnw_store(
        old_values.shape[0], old_values.shape[1], n_clusters, seed=seed,
        probe_limit=probe_limit, shards=shards, executor=executor,
    )
    store.warm_up(old_values)
    return store


def snapshots(store) -> list[np.ndarray]:
    """Data-zone snapshot(s) — one per shard for sharded stores."""
    if hasattr(store, "stores"):
        return [shard.nvm.snapshot() for shard in store.stores]
    return [store.nvm.snapshot()]


def close_store(store) -> None:
    if hasattr(store, "close"):
        store.close()


def run_sequential(store, keys, values) -> float:
    started = time.perf_counter()
    for key, value in zip(keys, values):
        store.put(key, value)
    return time.perf_counter() - started


def run_batched(store, keys, values, batch_size: int) -> float:
    started = time.perf_counter()
    for start in range(0, len(keys), batch_size):
        store.put_many(
            list(zip(keys[start : start + batch_size],
                     values[start : start + batch_size]))
        )
    return time.perf_counter() - started


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small CI-smoke sizes (a few thousand ops)",
    )
    parser.add_argument(
        "--workload", default="normal",
        help="registered workload name (default: the paper's synthetic "
             "normal-integer stream)",
    )
    parser.add_argument(
        "--batch-sizes", default=[16, 64, 256], type=batch_size_list,
        help="comma-separated put_many batch sizes to sweep",
    )
    parser.add_argument("--n-clusters", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition the zone into N shards (1: plain store)",
    )
    parser.add_argument(
        "--executor", default="thread", choices=("thread", "process"),
        help="shard executor when --shards > 1 (see bench_shard_scaling)",
    )
    parser.add_argument(
        "--probe-limit", type=int, default=64,
        help="free-list candidates scored per PUT (0: FIFO, -1: whole "
             "list via the probe engine's content cache)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the largest swept batch size reaches "
             "this speedup over the sequential loop",
    )
    args = parser.parse_args(argv)

    num_buckets = 4096 if args.quick else 16384
    n_ops = 2048 if args.quick else 8192
    batch_sizes = args.batch_sizes

    workload = make_workload(args.workload, seed=args.seed)
    old_values = workload.generate(num_buckets)
    # Pull the measurement stream in batch-shaped chunks (how a batching
    # front-end consumes a workload), materialised once so the sequential
    # and batched stores see the exact same items.
    new_values = np.vstack(list(workload.batches(n_ops, max(batch_sizes))))
    keys = [key_for(i) for i in range(n_ops)]

    lines = [f"workload={args.workload}  zone={num_buckets} buckets x "
             f"{old_values.shape[1]}B values  ops={n_ops}  "
             f"K={args.n_clusters}  probe_limit={args.probe_limit}  "
             f"shards={args.shards}  executor={args.executor}"]
    print(lines[0])

    seq_store = build_store(old_values, args.n_clusters, args.seed,
                            args.probe_limit, args.shards, args.executor)
    seq_seconds = run_sequential(seq_store, keys, new_values)
    seq_ops = n_ops / seq_seconds
    lines.append(f"{'sequential put':>18}: {seq_ops:10.0f} ops/s   (baseline)")
    print(lines[-1])

    reference = snapshots(seq_store)
    close_store(seq_store)
    speedups: dict[int, float] = {}
    for batch_size in batch_sizes:
        store = build_store(old_values, args.n_clusters, args.seed,
                            args.probe_limit, args.shards, args.executor)
        seconds = run_batched(store, keys, new_values, batch_size)
        ops = n_ops / seconds
        speedups[batch_size] = seq_seconds / seconds
        identical = all(
            bool(np.array_equal(snap, ref))
            for snap, ref in zip(snapshots(store), reference)
        )
        close_store(store)
        lines.append(f"{'put_many b=' + str(batch_size):>18}: {ops:10.0f} ops/s   "
                     f"{speedups[batch_size]:5.2f}x   state-identical={identical}")
        print(lines[-1])
        if not identical:
            print("ERROR: batched NVM state diverged from sequential",
                  file=sys.stderr)
            return 1

    saved = results_path("bench-batch-throughput")
    saved.write_text("\n".join(lines) + "\n")
    print(f"saved {saved}")

    gated = max(batch_sizes)
    if args.min_speedup is not None and speedups[gated] < args.min_speedup:
        print(f"ERROR: speedup at batch size {gated} is "
              f"{speedups[gated]:.2f}x, below the required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

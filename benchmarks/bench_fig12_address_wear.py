"""Fig. 12: CDF of per-address write counts (wear distribution)."""

from repro.bench import fig12_address_wear, report


def test_fig12(benchmark):
    result = report(fig12_address_wear())
    for row in result.row_dicts():
        # The paper: writes spread across the chip — the overwhelming
        # majority of addresses see few writes regardless of k.
        assert row["P(X<=15)"] > 0.9
        assert row["P(X<=5)"] <= row["P(X<=10)"] <= row["P(X<=15)"]
    benchmark(lambda: [r["max_writes"] for r in result.row_dicts()])

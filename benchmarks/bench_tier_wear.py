#!/usr/bin/env python
"""NVM wear with and without the DRAM tier, on hot-key traffic.

Four stores with identical configuration, warm-up, and op stream —
``tier_mode`` off / ``write_through`` / ``write_back`` / ``predictive``
— driven by a Zipfian hot-key rewrite stream (or the TTL key-churn
stream with ``--workload churn``).  The measurement is the data zone's
wear delta over the measured ops: bucket writes and NVM cells
programmed (``WearStats.total_bit_updates``).  The tier's claim, which
this benchmark gates:

* ``write_back`` and ``predictive`` cut cells programmed by at least
  ``--min-saving`` (default 30%) — rewrites of hot keys coalesce in
  DRAM, so the device never sees the intermediate versions;
* ``write_through`` leaves the durable state **byte-identical** to the
  bare store (checked against the NVM snapshot);
* every mode answers reads correctly during the run (read-your-write
  against a replay oracle) and after ``close()`` (which flushes);
* a crash loses exactly the counted unflushed entries — the
  ``crash``/``recover`` scenario asserts durable keys + counted loss
  add up to everything admitted.

Run:

    PYTHONPATH=src python benchmarks/bench_tier_wear.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import PNWConfig, make_store
from repro.bench import ExperimentResult, report
from repro.workloads import make_workload

MODES = ("off", "write_through", "write_back", "predictive")


def build_ops(args) -> tuple[np.ndarray, list[tuple[str, bytes, bytes | None]]]:
    """Materialise warm-up values and the op stream once, so every mode
    replays byte-identical traffic."""
    workload = make_workload(args.workload, seed=args.seed)
    warm_source = make_workload(args.workload, seed=args.seed + 1)
    warm = warm_source.generate(args.buckets)[:, workload.key_bytes :]
    if args.workload == "churn":
        ops = list(workload.ops(args.ops))
    else:
        items = workload.generate(args.ops)
        ops = [("put", key, value) for key, value in workload.pairs(items)]
    return warm, ops


def build_tiered(args, mode: str):
    config = PNWConfig(
        num_buckets=args.buckets,
        value_bytes=args.value_bytes,
        key_bytes=8,
        n_clusters=8,
        seed=args.seed,
        shards=args.shards,
        tier_mode=mode,
        tier_cache_entries=args.cache_entries,
        tier_writeback_entries=args.writeback_entries,
        tier_flush_ops=args.flush_ops,
    )
    return make_store(config)


def drive(store, ops, batch: int) -> dict[bytes, bytes]:
    """Replay the op stream through the batch API in order, returning
    the final key -> value oracle."""
    oracle: dict[bytes, bytes] = {}
    kind_pending: str | None = None
    pending: list = []

    def flush_pending() -> None:
        nonlocal pending
        if not pending:
            return
        if kind_pending == "put":
            store.put_many(pending)
        else:
            store.delete_many(pending)
        pending = []

    for kind, key, value in ops:
        if kind != kind_pending or len(pending) >= batch:
            flush_pending()
            kind_pending = kind
        if kind == "put":
            pending.append((key, value))
            oracle[key] = value
        else:
            pending.append(key)
            oracle.pop(key, None)
    flush_pending()
    return oracle


def check_reads(store, oracle, value_bytes: int, rng, samples: int) -> int:
    """Read-your-write: sampled oracle keys must round-trip."""
    keys = sorted(oracle)
    mismatches = 0
    for idx in rng.integers(0, len(keys), size=min(samples, len(keys))):
        key = keys[int(idx)]
        expected = oracle[key].ljust(value_bytes, b"\x00")
        if store.get(key) != expected:
            mismatches += 1
    return mismatches


def wear_cells(store) -> tuple[int, int]:
    stats = store.wear_stats() if hasattr(store, "wear_stats") else store.nvm.stats
    return stats.total_writes, stats.total_bit_updates


def nvm_snapshot(store):
    inner = getattr(store, "store", store)  # unwrap a TieredStore
    if hasattr(inner, "stores"):  # sharded
        return [shard.nvm.snapshot() for shard in inner.stores]
    return [inner.nvm.snapshot()]


def crash_scenario(args, ops) -> tuple[int, int, bool]:
    """Drive half the stream, crash, recover: durable keys + counted
    loss must account for every admitted key."""
    store = build_tiered(args, "write_back")
    warm, _ = build_ops(args)
    store.warm_up(warm)
    oracle = drive(store, ops[: max(1, len(ops) // 2)], args.batch)
    dirty = store.dirty_entries
    durable_creates = len(store.store)
    store.crash()
    lost = store.tier_stats.unflushed_lost
    store.recover()
    survived = len(store)
    # The tier promises: loss == what was dirty, survivors == what the
    # store had durably (staged creates are the only keys that can go
    # missing entirely; staged updates fall back to their last flushed
    # version).
    consistent = lost == dirty and survived == durable_creates
    store.close()
    return lost, len(oracle), consistent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI sizes, same gates")
    parser.add_argument("--workload", default="zipfian",
                        choices=["zipfian", "churn"])
    parser.add_argument("--ops", type=int, default=None)
    parser.add_argument("--buckets", type=int, default=None)
    parser.add_argument("--value-bytes", type=int, default=24)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cache-entries", type=int, default=512)
    parser.add_argument("--writeback-entries", type=int, default=256)
    parser.add_argument("--flush-ops", type=int, default=2048)
    parser.add_argument("--samples", type=int, default=128,
                        help="read-your-write spot checks per mode")
    parser.add_argument("--min-saving", type=float, default=0.30,
                        help="required fractional reduction in cells "
                             "programmed for write_back and predictive")
    args = parser.parse_args(argv)
    if args.ops is None:
        args.ops = 2500 if args.smoke else 10000
    if args.buckets is None:
        args.buckets = 2048 if args.smoke else 4096

    warm, ops = build_ops(args)
    rng = np.random.default_rng(args.seed)
    result = ExperimentResult(
        exp_id="bench-tier-wear",
        title="DRAM tier: NVM wear by placement policy",
        columns=["mode", "nvm_writes", "cells_programmed", "saving",
                 "flushes", "coalesced", "mismatches"],
        params={
            "workload": args.workload, "ops": args.ops,
            "buckets": args.buckets, "value_bytes": args.value_bytes,
            "shards": args.shards,
            "writeback_entries": args.writeback_entries,
            "flush_ops": args.flush_ops, "seed": args.seed,
        },
    )

    baseline_cells = None
    reference_snapshot = None
    failures: list[str] = []
    for mode in MODES:
        store = build_tiered(args, mode)
        store.warm_up(warm)
        writes0, cells0 = wear_cells(store)
        oracle = drive(store, ops, args.batch)
        mismatches = check_reads(
            store, oracle, args.value_bytes, rng, args.samples
        )
        if hasattr(store, "close"):  # flush: wear includes tier drains
            store.close()
        mismatches += check_reads(
            store, oracle, args.value_bytes, rng, args.samples
        )
        writes, cells = wear_cells(store)
        writes, cells = writes - writes0, cells - cells0
        if mode == "off":
            baseline_cells = cells
            reference_snapshot = nvm_snapshot(store)
            saving = 0.0
        else:
            saving = 1.0 - cells / baseline_cells
        tier = store.tier_stats if hasattr(store, "tier_stats") else None
        result.add_row(
            mode, writes, cells, f"{saving:.1%}",
            tier.flush_events if tier else 0,
            tier.coalesced if tier else 0, mismatches,
        )
        if mismatches:
            failures.append(f"{mode}: {mismatches} read-your-write "
                            f"mismatches")
        if mode == "write_through":
            identical = all(
                np.array_equal(snap, ref) for snap, ref in
                zip(nvm_snapshot(store), reference_snapshot)
            )
            result.notes.append(
                f"write_through durable state byte-identical to bare "
                f"store: {identical}"
            )
            if not identical:
                failures.append("write_through durable state diverged")
        if mode in ("write_back", "predictive") and saving < args.min_saving:
            failures.append(
                f"{mode}: saved {saving:.1%} of cells, below the "
                f"required {args.min_saving:.0%}"
            )

    lost, admitted, consistent = crash_scenario(args, ops)
    result.notes.append(
        f"crash scenario: lost exactly the {lost} counted unflushed "
        f"entries of {admitted} admitted keys; accounting consistent: "
        f"{consistent}"
    )
    if not consistent:
        failures.append("crash-loss accounting inconsistent")

    report(result)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Aggregate PUT throughput vs shard count for the sharded PNW store.

The sharded store hash-partitions the key space into N independent
zones and runs their batch write pipelines concurrently — on a thread
pool (``executor=thread``) or on one worker process per shard over
shared-memory zones (``executor=process``).  Sharding wins twice on the
PUT hot path: each shard's minimum-Hamming probe (§IV) scans a free
list 1/N the size, and the per-shard work overlaps — via GIL-releasing
NumPy stages in thread mode, via fully separate interpreters in process
mode, which is the mode that keeps scaling when the GIL (not the probe)
is the ceiling.  This benchmark measures what each executor buys over
the single-store batch pipeline of PR 1, on the paper's synthetic
workload, feeding every store the identical key/value stream in
identical `put_many` batches.

It also checks wear parity: the sharded store must perform exactly the
same number of data-zone writes as the single store, with the mean
programmed cells per write within a small tolerance (placement differs
across partitions, so bit-flips agree statistically, not bit for bit —
each shard steers with its own model over the same data distribution).

Results record the detected host core count and the executor of every
run, so ``results/*.txt`` trajectories are comparable across runners.
The ``--min-speedup`` gate is skipped (with a note) on hosts with
fewer than 4 cores — there is no parallel speedup to measure there.

Run:

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
        --executors thread,process --shards 1,2,4 --min-speedup 1.8

``--smoke`` runs CI-sized inputs and checks wear parity only (thread
speedups on shared runners are too noisy to gate); pass
``--min-speedup`` to enforce a throughput gate at the largest shard
count.  The default probe configuration scores the whole free list
(``probe_limit=-1``), the content-probing mode where the single store's
per-op cost is highest — the regime sharding exists for.  Process-mode
runs additionally assert that no worker process outlives its store.
"""

from __future__ import annotations

import argparse
import functools
import multiprocessing
import os
import sys
import time

import numpy as np

from repro.bench import key_for, make_pnw_store, parse_int_list, results_path
from repro.workloads import make_workload

shard_list = functools.partial(parse_int_list, minimum=1)


def executor_list(text: str) -> list[str]:
    executors = [part.strip() for part in text.split(",") if part.strip()]
    for executor in executors:
        if executor not in ("thread", "process"):
            raise argparse.ArgumentTypeError(
                f"unknown executor {executor!r} (thread|process)"
            )
    if not executors:
        raise argparse.ArgumentTypeError("need at least one executor")
    return executors


def host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_store(old_values, n_clusters, seed, probe_limit, shards, executor):
    store = make_pnw_store(
        old_values.shape[0],
        old_values.shape[1],
        n_clusters,
        seed=seed,
        probe_limit=probe_limit,
        shards=shards,
        executor=executor,
    )
    store.warm_up(old_values)
    return store


def run_batched(store, keys, values, batch_size: int) -> float:
    started = time.perf_counter()
    for start in range(0, len(keys), batch_size):
        store.put_many(
            list(zip(keys[start : start + batch_size],
                     values[start : start + batch_size]))
        )
    return time.perf_counter() - started


def wear_of(store) -> dict[str, float]:
    """Data-zone wear summary for either store flavor."""
    if hasattr(store, "wear_summary"):
        return store.wear_summary()
    return store.nvm.stats.summary()


def assert_no_worker_leak(failures: list[str], context: str) -> None:
    """Process-mode hygiene: a closed store must leave no live children."""
    leaked = [child.name for child in multiprocessing.active_children()
              if child.name.startswith("pnw-shard")]
    if leaked:
        failures.append(f"{context}: leaked worker processes {leaked}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small CI-smoke sizes; wear parity checked, no speed gate",
    )
    parser.add_argument(
        "--workload", default="normal",
        help="registered workload name (default: the paper's synthetic "
             "normal-integer stream)",
    )
    parser.add_argument(
        "--shards", default=[1, 2, 4], type=shard_list,
        help="comma-separated shard counts to sweep (1 = baseline)",
    )
    parser.add_argument(
        "--executors", default=["thread"], type=executor_list,
        help="comma-separated executors to sweep: thread,process "
             "(the shards=1 baseline is executor-free)",
    )
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--n-clusters", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--probe-limit", type=int, default=-1,
        help="free-list candidates scored per PUT (-1: whole list)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero unless the largest shard count reaches this "
             "aggregate-throughput speedup over the single store (per "
             "executor; skipped with a note below 4 host cores)",
    )
    parser.add_argument(
        "--flip-tolerance", type=float, default=0.10,
        help="allowed relative difference in mean programmed cells per "
             "write between sharded and single-store runs",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timed runs per configuration, best-of (default: 3 full, "
             "1 smoke) — wall-clock throughput on shared hosts is noisy",
    )
    args = parser.parse_args(argv)

    # Full size puts the single store in its probe-bound regime (free
    # lists tens of thousands deep), which is the load sharding targets;
    # smoke size just proves the machinery end to end.
    num_buckets = 2048 if args.smoke else 32768
    n_ops = num_buckets // 2 if args.smoke else num_buckets // 4
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    shard_counts = sorted(set(args.shards) | {1})
    cores = host_cores()

    workload = make_workload(args.workload, seed=args.seed)
    old_values = workload.generate(num_buckets)
    new_values = np.vstack(list(workload.batches(n_ops, args.batch_size)))
    keys = [key_for(i) for i in range(n_ops)]

    lines = [
        f"workload={args.workload}  zone={num_buckets} buckets x "
        f"{old_values.shape[1]}B values  ops={n_ops}  "
        f"batch={args.batch_size}  K={args.n_clusters}  "
        f"probe_limit={args.probe_limit}  cores={cores}  "
        f"executors={','.join(args.executors)}"
    ]
    print(lines[0])

    failures: list[str] = []

    def timed_run(shards: int, executor: str) -> tuple[float, dict[str, float]]:
        """Best-of-N wall clock + (deterministic) wear for one config."""
        seconds = None
        wear = None
        for attempt in range(max(1, repeats)):
            store = build_store(
                old_values, args.n_clusters, args.seed, args.probe_limit,
                shards, executor,
            )
            elapsed = run_batched(store, keys, new_values, args.batch_size)
            if seconds is None or elapsed < seconds:
                seconds = elapsed
            wear = wear_of(store)
            if hasattr(store, "close"):
                store.close()
        if executor == "process" and shards > 1:
            assert_no_worker_leak(failures, f"{executor} shards={shards}")
        return seconds, wear

    # shards=1 is a plain single store — no executor, one shared baseline.
    baseline_seconds, baseline_wear = timed_run(1, "thread")
    line = (f"  single store: {n_ops / baseline_seconds:10.0f} ops/s   "
            f" 1.00x   writes={baseline_wear['writes']:.0f}  "
            f"cells/write={baseline_wear['mean_bit_updates_per_write']:.1f}  "
            f"cores={cores}  executor=none")
    lines.append(line)
    print(line)

    speedups: dict[tuple[str, int], float] = {}
    for executor in args.executors:
        for shards in shard_counts:
            if shards == 1:
                continue
            seconds, wear = timed_run(shards, executor)
            speedups[(executor, shards)] = baseline_seconds / seconds
            label = f"{executor} x{shards}"
            line = (f"{label:>14}: {n_ops / seconds:10.0f} ops/s   "
                    f"{speedups[(executor, shards)]:5.2f}x   "
                    f"writes={wear['writes']:.0f}  "
                    f"cells/write={wear['mean_bit_updates_per_write']:.1f}  "
                    f"cores={cores}  executor={executor}  shards={shards}")
            if wear["writes"] != baseline_wear["writes"]:
                failures.append(
                    f"{executor} shards={shards}: {wear['writes']:.0f} "
                    f"data-zone writes vs single-store "
                    f"{baseline_wear['writes']:.0f}"
                )
            flip_rel = abs(
                wear["mean_bit_updates_per_write"]
                - baseline_wear["mean_bit_updates_per_write"]
            ) / baseline_wear["mean_bit_updates_per_write"]
            line += f"   flip-delta={flip_rel * 100:.1f}%"
            if flip_rel > args.flip_tolerance:
                failures.append(
                    f"{executor} shards={shards}: mean cells/write off by "
                    f"{flip_rel * 100:.1f}% (> {args.flip_tolerance * 100:.0f}%)"
                )
            lines.append(line)
            print(line)

    saved = results_path("bench-shard-scaling")
    saved.write_text("\n".join(lines) + "\n")
    print(f"saved {saved}")

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.min_speedup is not None:
        if cores < 4:
            print(f"speedup gate skipped: host has {cores} core(s) < 4 — "
                  f"no parallel speedup to measure")
        else:
            gated = max(shard_counts)
            for executor in args.executors:
                speedup = speedups.get((executor, gated))
                if speedup is None:
                    continue
                if speedup < args.min_speedup:
                    print(
                        f"ERROR: {executor} speedup at {gated} shards is "
                        f"{speedup:.2f}x, below the required "
                        f"{args.min_speedup:.2f}x", file=sys.stderr)
                    return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Open-loop ingestion latency: p50/p99 under Poisson and bursty arrivals.

The throughput bench (``bench_ingest_throughput``) is closed-loop — the
driver waits for its own batches, so queueing delay is invisible.  A
front door does not get that luxury: clients arrive when they arrive.
This bench replays *scheduled* arrival processes against
:class:`repro.IngestQueue` and measures each op's latency from its
scheduled arrival time to its future resolving, which makes the
coalescing tradeoff measurable: a larger ``max_delay`` buys bigger
batches (throughput) at the price of ops waiting out the flush deadline
(tail latency).

Arrival processes:

* ``poisson`` — exponential inter-arrival gaps at the target rate, the
  classic open-loop model.
* ``bursty``  — back-to-back bursts every ``burst / rate`` seconds, the
  flash-crowd shape; same mean rate, much uglier instantaneous rate.

Latencies are measured from the scheduled arrival (not the actual
submit), so submitter lateness — including admission blocking — counts
against the system, never hidden (no coordinated omission).  A watcher
thread samples the queue's pending-op count throughout and the run
fails if the admission window bound is ever exceeded.

Run:

    PYTHONPATH=src python benchmarks/bench_ingest_latency.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro import IngestQueue
from repro.bench import key_for, make_pnw_store, results_path
from repro.workloads import make_workload


def arrival_offsets(
    kind: str, n: int, rate: float, burst: int, rng: np.random.Generator
) -> np.ndarray:
    """Scheduled arrival times (seconds from stream start) for n ops."""
    if kind == "poisson":
        return np.cumsum(rng.exponential(1.0 / rate, size=n))
    if kind == "bursty":
        # Bursts of `burst` simultaneous ops, spaced to the same mean rate.
        return np.repeat(
            np.arange(int(np.ceil(n / burst))) * (burst / rate), burst
        )[:n].astype(np.float64)
    raise ValueError(f"unknown arrival process {kind!r}")


class WindowWatcher:
    """Samples ``queue.pending_ops`` and keeps the running maximum."""

    def __init__(self, queue: IngestQueue) -> None:
        self.queue = queue
        self.max_seen = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.max_seen = max(self.max_seen, self.queue.pending_ops)
            time.sleep(0.0005)

    def __enter__(self) -> "WindowWatcher":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def run_once(
    store,
    keys: list[bytes],
    values: np.ndarray,
    offsets: np.ndarray,
    *,
    max_batch: int,
    max_delay: float,
    max_pending: int,
) -> dict:
    """One open-loop replay; returns latency percentiles and counters."""
    n = len(keys)
    done_at = np.zeros(n, dtype=np.float64)
    queue = IngestQueue(
        store, max_batch=max_batch, max_delay=max_delay,
        max_pending=max_pending, overload="block",
    )
    with WindowWatcher(queue) as watcher, queue:
        start = time.monotonic()
        for i in range(n):
            delay = start + offsets[i] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            queue.put(keys[i], values[i]).add_done_callback(
                lambda future, i=i: done_at.__setitem__(i, time.monotonic())
            )
        queue.flush()
    unresolved = int(np.count_nonzero(done_at == 0.0))
    latencies = (done_at - (start + offsets)) * 1e3  # ms from scheduled arrival
    return {
        "p50": float(np.percentile(latencies, 50)),
        "p99": float(np.percentile(latencies, 99)),
        "max_pending_seen": watcher.max_seen,
        "unresolved": unresolved,
        "batches": queue.batches_dispatched,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI-smoke sizes (a few hundred ops)")
    parser.add_argument("--workload", default="normal")
    parser.add_argument("--rate", type=float, default=None,
                        help="mean arrival rate, ops/s (default 2000; "
                             "1000 with --quick)")
    parser.add_argument("--burst", type=int, default=64,
                        help="ops per burst for the bursty process")
    parser.add_argument("--batch-size", type=int, default=128)
    parser.add_argument("--n-clusters", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--probe-limit", type=int, default=64)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--max-delays", default=None,
        help="comma-separated max_delay sweep in seconds "
             "(default 0.001,0.005,0.02; first two with --quick)",
    )
    parser.add_argument(
        "--windows", default=None,
        help="comma-separated max_pending sweep "
             "(default 2x,8x batch; 4x with --quick)",
    )
    args = parser.parse_args(argv)

    num_buckets = 2048 if args.quick else 8192
    n_ops = 500 if args.quick else 4000
    rate = args.rate or (1000.0 if args.quick else 2000.0)
    if args.max_delays is not None:
        max_delays = [float(piece) for piece in args.max_delays.split(",")]
    else:
        max_delays = [0.001, 0.005] if args.quick else [0.001, 0.005, 0.02]
    if args.windows is not None:
        windows = [int(piece) for piece in args.windows.split(",")]
    else:
        windows = (
            [4 * args.batch_size]
            if args.quick
            else [2 * args.batch_size, 8 * args.batch_size]
        )

    workload = make_workload(args.workload, seed=args.seed)
    old_values = workload.generate(num_buckets)
    new_values = workload.generate(n_ops)
    keys = [key_for(i) for i in range(n_ops)]
    rng = np.random.default_rng(args.seed)

    lines = [
        f"workload={args.workload}  zone={num_buckets} buckets x "
        f"{old_values.shape[1]}B values  ops={n_ops}  rate={rate:g}/s  "
        f"burst={args.burst}  batch={args.batch_size}  "
        f"K={args.n_clusters}  probe_limit={args.probe_limit}  "
        f"shards={args.shards}  overload=block",
        f"{'arrivals':>8} {'max_delay':>10} {'window':>7} "
        f"{'p50 ms':>8} {'p99 ms':>8} {'peak pend':>9} {'batches':>8}",
    ]
    print("\n".join(lines))

    failures = 0
    for arrivals in ("poisson", "bursty"):
        offsets = arrival_offsets(arrivals, n_ops, rate, args.burst, rng)
        for window in windows:
            for max_delay in max_delays:
                store = make_pnw_store(
                    num_buckets, old_values.shape[1], args.n_clusters,
                    seed=args.seed, probe_limit=args.probe_limit,
                    shards=args.shards,
                )
                store.warm_up(old_values)
                stats = run_once(
                    store, keys, new_values, offsets,
                    max_batch=args.batch_size, max_delay=max_delay,
                    max_pending=window,
                )
                bound_ok = stats["max_pending_seen"] <= window
                resolved_ok = stats["unresolved"] == 0
                flag = "" if bound_ok and resolved_ok else "  VIOLATION"
                lines.append(
                    f"{arrivals:>8} {format(max_delay, 'g') + 's':>10} "
                    f"{window:>7} {stats['p50']:8.2f} {stats['p99']:8.2f} "
                    f"{stats['max_pending_seen']:>9} "
                    f"{stats['batches']:>8}{flag}"
                )
                print(lines[-1])
                if not bound_ok:
                    print(
                        f"ERROR: pending window {stats['max_pending_seen']} "
                        f"exceeded max_pending={window}", file=sys.stderr,
                    )
                    failures += 1
                if not resolved_ok:
                    print(
                        f"ERROR: {stats['unresolved']} futures never "
                        "resolved", file=sys.stderr,
                    )
                    failures += 1
                if hasattr(store, "close"):
                    store.close()

    saved = results_path("bench-ingest-latency")
    saved.write_text("\n".join(lines) + "\n")
    print(f"saved {saved}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Sustained PUT goodput under skew: static FNV routing vs. live
rebalancing.

Two sharded stores with identical configuration, warm-up, and op
stream — ``rebalance_mode`` off / ``watermark`` — driven by a skewed
churn stream: ``--hot-fraction`` of inserts (default 75%, roughly the
mass a Zipfian(θ≈0.99) popularity curve concentrates at 4 shards) mint
keys that the *default* FNV layout routes to shard 0, spread across
all of that shard's virtual buckets; deletes sample uniformly over the
acked live set.  The producer is closed-loop: a put refused with
``PoolExhaustedError`` joins a bounded retry backlog and is re-offered
ahead of fresh inserts until it lands or the backlog sheds it — on the
static layout the hot shard's refusals burn round after round of
retries, on the rebalanced layout they land first try.  An unmeasured
fill phase saturates the static arm's hot shard first, then a measured
churn window counts **acked** PUTs against wall-clock time.

The claim this benchmark gates (full mode, thread executor): the
rebalanced store sustains at least ``--min-speedup`` (default 1.5x)
the static store's PUT goodput, because migrating hot virtual buckets
off the starved shard converts refused puts back into acked ones —
while a replayed oracle stays byte-correct in both arms.  ``--smoke``
runs small CI sizes and reports the ratio without gating it (timing at
smoke size is noise-dominated); correctness is gated in every mode.
The process-executor comparison runs only on hosts with at least 4
cores (on fewer it is skipped with a note — worker processes would
timeshare one core and measure the scheduler, not the router).

Run:

    PYTHONPATH=src python benchmarks/bench_shard_rebalance.py [--smoke]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro import PNWConfig, ShardedPNWStore
from repro.bench import ExperimentResult, report
from repro.errors import DegradedModeError, PoolExhaustedError
from repro.shard import shard_of

MODES = ("off", "watermark")


def build_store(args, mode: str, executor: str) -> ShardedPNWStore:
    config = PNWConfig(
        num_buckets=args.buckets,
        value_bytes=args.value_bytes,
        key_bytes=8,
        n_clusters=8,
        seed=args.seed,
        shards=args.shards,
        rebalance_mode=mode,
        rebalance_check_interval=args.check_interval,
    )
    return ShardedPNWStore(config, executor=executor)


def build_stream(args) -> tuple[list[list[bytes]], list[list[int]]]:
    """Materialise the whole stream once — per-round insert keys and
    per-round delete picks (indices into the live set at delete time) —
    so both arms replay byte-identical traffic.

    The fill prefix (no deletes) drives the static arm straight to its
    churn equilibrium: the hot shard is overfilled past capacity and
    the cold shards are pre-loaded to the occupancy the window's
    put/delete mix would converge them to anyway, so the measured
    window starts at steady state instead of spending rounds drifting
    there."""
    rng = np.random.default_rng(args.seed)
    hot_keys: list[bytes] = []
    cold_keys: list[bytes] = []
    serial = 0
    needed = args.fill_hot + args.fill_cold + args.rounds * args.puts_per_round
    while len(hot_keys) < needed or len(cold_keys) < needed:
        key = b"k%07d" % serial
        serial += 1
        if shard_of(key, args.shards, 8) == 0:
            hot_keys.append(key)
        else:
            cold_keys.append(key)
    hot_iter = iter(hot_keys)
    cold_iter = iter(cold_keys)
    fill = [next(hot_iter) for _ in range(args.fill_hot)] + [
        next(cold_iter) for _ in range(args.fill_cold)
    ]
    rng.shuffle(fill)
    rounds = [
        fill[start : start + args.puts_per_round]
        for start in range(0, len(fill), args.puts_per_round)
    ]
    picks: list[list[int]] = [[] for _ in rounds]  # no deletes in fill
    for _ in range(args.rounds):
        rounds.append([
            next(hot_iter) if rng.random() < args.hot_fraction
            else next(cold_iter)
            for _ in range(args.puts_per_round)
        ])
        picks.append(
            rng.integers(0, 2**31, size=args.deletes_per_round).tolist()
        )
    return rounds, picks


def value_of(key: bytes, value_bytes: int) -> bytes:
    return (b"v:" + key).ljust(value_bytes, b"\x00")


def submit_puts(store, pairs) -> set[bytes]:
    """Acked keys of one put batch: prefix-committed reports survive a
    pool-exhausted/degraded refusal."""
    try:
        reports = store.put_many(pairs)
    except (PoolExhaustedError, DegradedModeError) as exc:
        reports = list(getattr(exc, "committed_reports", []))
    return {r.key for r in reports}


def drive(store, args, rounds, picks):
    """Replay the stream closed-loop: every put must land, so a refused
    put joins a bounded FIFO backlog and is re-offered (oldest first)
    ahead of the next round's fresh inserts; backlog overflow beyond
    ``backlog_cap`` sheds the oldest entries.  An unmeasured fill
    prefix runs first, then the measured churn window.  Returns
    (acked_puts, dropped_puts, elapsed_s, live_oracle)."""
    live: list[bytes] = []
    oracle: dict[bytes, bytes] = {}
    backlog: list[tuple[bytes, bytes]] = []

    def one_round(keys, pick_row) -> tuple[int, int]:
        offers = backlog + [
            (key, value_of(key, args.value_bytes)) for key in keys
        ]
        backlog.clear()
        acked = 0
        for start in range(0, len(offers), args.puts_per_round):
            chunk = offers[start : start + args.puts_per_round]
            landed = submit_puts(store, chunk)
            for key, value in chunk:
                if key in landed:
                    acked += 1
                    live.append(key)
                    oracle[key] = value
                else:
                    backlog.append((key, value))
        dropped = max(0, len(backlog) - args.backlog_cap)
        if dropped:
            del backlog[:dropped]
        victims = []
        for pick in pick_row:
            if not live:
                break
            idx = pick % len(live)
            victims.append(live.pop(idx))
        if victims:
            store.delete_many(victims)
            for key in victims:
                del oracle[key]
        return acked, dropped

    fill_rounds = len(rounds) - args.rounds
    for round_id in range(fill_rounds):
        one_round(rounds[round_id], picks[round_id])
    acked_total = dropped_total = 0
    start = time.perf_counter()
    for round_id in range(fill_rounds, len(rounds)):
        acked, dropped = one_round(rounds[round_id], picks[round_id])
        acked_total += acked
        dropped_total += dropped
    elapsed = time.perf_counter() - start
    return acked_total, dropped_total, elapsed, oracle


def check_oracle(store, oracle, rng, samples: int) -> int:
    """Sampled read-your-write over the surviving live set."""
    if len(store) != len(oracle):
        return abs(len(store) - len(oracle))
    keys = sorted(oracle)
    mismatches = 0
    for idx in rng.integers(0, len(keys), size=min(samples, len(keys))):
        key = keys[int(idx)]
        if store.get(key) != oracle[key]:
            mismatches += 1
    return mismatches


def run_pair(args, executor: str, result, failures, gate: bool) -> None:
    rng = np.random.default_rng(args.seed + 1)
    warm = rng.integers(
        0, 256, size=(args.buckets, args.value_bytes), dtype=np.uint8
    )
    rounds, picks = build_stream(args)
    goodput = {}
    for mode in MODES:
        store = build_store(args, mode, executor)
        try:
            store.warm_up(warm)
            acked, dropped, elapsed, oracle = drive(
                store, args, rounds, picks
            )
            mismatches = check_oracle(
                store, oracle, np.random.default_rng(args.seed + 2),
                args.samples,
            )
            stats = store.router_stats()
            goodput[mode] = acked / elapsed
            measured_puts = args.rounds * args.puts_per_round
            result.add_row(
                executor, mode, acked, measured_puts, dropped,
                f"{goodput[mode]:,.0f}",
                stats.rebalances, stats.bucket_moves, stats.keys_migrated,
                mismatches,
            )
            if mismatches:
                failures.append(
                    f"{executor}/{mode}: {mismatches} oracle mismatches"
                )
            if mode == "watermark" and stats.bucket_moves == 0:
                failures.append(
                    f"{executor}/watermark: the skewed stream never "
                    f"triggered a rebalance"
                )
        finally:
            store.close()
    speedup = goodput["watermark"] / goodput["off"]
    result.notes.append(
        f"{executor}: rebalanced PUT goodput {speedup:.2f}x static "
        f"routing (gate {'>=' + format(args.min_speedup, '.1f') + 'x' if gate else 'reported only'})"
    )
    if gate and speedup < args.min_speedup:
        failures.append(
            f"{executor}: speedup {speedup:.2f}x below the required "
            f"{args.min_speedup:.1f}x"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small CI sizes; ratio reported, not gated")
    parser.add_argument("--buckets", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=None,
                        help="measured churn rounds")
    parser.add_argument("--fill-hot", type=int, default=None,
                        help="unmeasured hot fill inserts (default: "
                             "1.2x one shard's capacity)")
    parser.add_argument("--fill-cold", type=int, default=None,
                        help="unmeasured cold fill inserts (default: "
                             "one shard's capacity — the cold-side "
                             "churn equilibrium)")
    parser.add_argument("--puts-per-round", type=int, default=16)
    parser.add_argument("--deletes-per-round", type=int, default=8)
    parser.add_argument("--hot-fraction", type=float, default=0.75)
    parser.add_argument("--backlog-cap", type=int, default=256,
                        help="refused puts waiting to retry before the "
                             "producer sheds the oldest")
    parser.add_argument("--value-bytes", type=int, default=24)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--check-interval", type=int, default=32)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--samples", type=int, default=128)
    parser.add_argument("--min-speedup", type=float, default=1.5)
    args = parser.parse_args(argv)
    if args.buckets is None:
        args.buckets = 256 if args.smoke else 768
    if args.rounds is None:
        args.rounds = 8 if args.smoke else 25
    shard_capacity = args.buckets // args.shards
    if args.fill_hot is None:
        args.fill_hot = int(shard_capacity * 1.2)
    if args.fill_cold is None:
        args.fill_cold = shard_capacity

    result = ExperimentResult(
        exp_id="bench-shard-rebalance",
        title="Load-aware routing: PUT goodput under a skewed stream",
        columns=["executor", "mode", "acked_puts", "offered_puts",
                 "shed_puts", "goodput_puts_s", "rebalances",
                 "bucket_moves", "keys_migrated", "mismatches"],
        params={
            "buckets": args.buckets, "shards": args.shards,
            "fill_hot": args.fill_hot, "fill_cold": args.fill_cold,
            "rounds": args.rounds,
            "puts_per_round": args.puts_per_round,
            "deletes_per_round": args.deletes_per_round,
            "hot_fraction": args.hot_fraction, "seed": args.seed,
        },
    )
    failures: list[str] = []
    run_pair(args, "thread", result, failures, gate=not args.smoke)
    cores = len(os.sched_getaffinity(0))
    if cores >= 4:
        run_pair(args, "process", result, failures, gate=not args.smoke)
    else:
        result.notes.append(
            f"process-executor comparison skipped: {cores} usable "
            f"core(s) < 4 (workers would timeshare one core and the "
            f"measurement would reflect the scheduler, not routing)"
        )

    report(result)
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

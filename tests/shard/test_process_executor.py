"""Process-executor shards: byte-identity, worker crashes, quiescing.

``executor="process"`` runs each shard's engine in a long-lived worker
process over a shared-memory zone (:mod:`repro.shard.procpool`).  These
tests pin the three contracts that make the executor a drop-in:

* **Byte identity** — the same op stream leaves a process-mode store
  byte-identical (data zones, flag bitmaps, indexes, wear counters,
  reports) to a thread-mode store.
* **Worker-crash survival** — ``kill -9`` on a worker loses only its
  unflagged in-flight sub-batch; the client respawns the worker over the
  surviving shared zone and the ordinary recovery path rebuilds it.
* **Deterministic lifecycle** — ``crash()`` / ``recover()`` / ``close()``
  quiesce in-flight batch traffic (all shard locks, ascending) before
  acting, in either executor mode.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, ShardedPNWStore
from repro.errors import ConfigError, ReproError, WorkerCrashedError
from repro.shard import ShardProcessClient, make_store
from tests.conftest import clustered_values


def make_config(num_buckets: int = 130, shards: int = 3, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=num_buckets,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig, executor: str) -> ShardedPNWStore:
    store = ShardedPNWStore(config, executor=executor)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def batch_of(rng: np.random.Generator, n: int,
             prefix: str = "k") -> list[tuple[bytes, bytes]]:
    values = clustered_values(rng, n, 24, flip_rate=0.05)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


def strip_timing(report):
    """Reports are deterministic except the measured model wall clock."""
    return dataclasses.replace(report, predict_ns=0.0)


def assert_stores_identical(a: ShardedPNWStore, b: ShardedPNWStore) -> None:
    """Byte-identity across executors, shard by shard."""
    for sa, sb in zip(a.stores, b.stores):
        assert np.array_equal(sa.nvm.snapshot(), sb.nvm.snapshot())
        assert np.array_equal(sa.flags_nvm.snapshot(), sb.flags_nvm.snapshot())
        assert dict(sa.index.items()) == dict(sb.index.items())
        assert sa.nvm.stats.summary() == sb.nvm.stats.summary()
        assert sa.pool.total_free == sb.pool.total_free
    assert len(a) == len(b)


def drive_stream(store: ShardedPNWStore) -> list:
    """A deterministic mixed op stream; returns every report produced."""
    pairs = batch_of(np.random.default_rng(11), 60)
    reports = list(store.put_many(pairs))
    fresh = clustered_values(np.random.default_rng(12), 25, 24, flip_rate=0.4)
    reports += store.update_many(
        [(pairs[i][0], fresh[i].tobytes()) for i in range(25)]
    )
    reports += store.delete_many([key for key, _ in pairs[40:55]])
    singles = batch_of(np.random.default_rng(13), 8, prefix="s")
    for key, value in singles:
        reports.append(store.put(key, value))
    reports.append(store.update(singles[0][0], singles[1][1]))
    reports.append(store.delete(singles[-1][0]))
    return reports


def no_worker_children() -> bool:
    return not [child for child in multiprocessing.active_children()
                if child.name.startswith("pnw-shard")]


def wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.01)


class TestConfigRouting:
    def test_config_knob_selects_process_clients(self):
        store = make_store(make_config(executor="process"))
        try:
            assert store.executor_kind == "process"
            assert all(isinstance(s, ShardProcessClient) for s in store.stores)
        finally:
            store.close()

    def test_thread_is_the_default(self):
        store = make_store(make_config())
        assert store.executor_kind == "thread"
        assert not any(isinstance(s, ShardProcessClient) for s in store.stores)
        store.close()

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigError, match="executor"):
            PNWConfig(num_buckets=64, value_bytes=8, executor="fiber")
        with pytest.raises(ConfigError, match="thread"):
            ShardedPNWStore(make_config(), executor="fiber")

    def test_process_with_nvm_index_rejected(self):
        with pytest.raises(ConfigError, match="index_placement"):
            ShardedPNWStore(
                make_config(index_placement="nvm", executor="process")
            )


class TestByteIdentity:
    def test_mixed_stream_matches_thread_mode(self):
        config = make_config()
        thread_store = warmed(config, "thread")
        process_store = warmed(config, "process")
        try:
            thread_reports = drive_stream(thread_store)
            process_reports = drive_stream(process_store)
            assert ([strip_timing(r) for r in process_reports]
                    == [strip_timing(r) for r in thread_reports])
            assert_stores_identical(thread_store, process_store)
            assert (thread_store.wear_summary()
                    == process_store.wear_summary())
            tm, pm = thread_store.metrics, process_store.metrics
            assert (tm.puts, tm.updates, tm.deletes, tm.fallbacks) == \
                   (pm.puts, pm.updates, pm.deletes, pm.fallbacks)
        finally:
            thread_store.close()
            process_store.close()

    def test_run_shard_batches_matches_thread_mode(self):
        config = make_config()
        thread_store = warmed(config, "thread")
        process_store = warmed(config, "process")
        try:
            pairs = batch_of(np.random.default_rng(21), 40)
            for store in (thread_store, process_store):
                store.put_many(pairs[:20])
            batches = {}
            for store in (thread_store, process_store):
                routed: dict[int, list] = {}
                for key, value in pairs[20:]:
                    sid = store.shard_of_key(key)
                    routed.setdefault(sid, [("put", [])])[0][1].append(
                        (key, value)
                    )
                for sid in list(routed):
                    routed[sid].append(
                        ("delete", [key for key, _ in pairs[:5]
                                    if store.shard_of_key(key) == sid])
                    )
                batches[id(store)] = {
                    sid: [run for run in runs if run[1]]
                    for sid, runs in routed.items()
                }
            t_out = thread_store.run_shard_batches(batches[id(thread_store)])
            p_out = process_store.run_shard_batches(batches[id(process_store)])
            assert t_out.keys() == p_out.keys()
            for sid in t_out:
                for (tr, te), (pr, pe) in zip(t_out[sid], p_out[sid]):
                    assert te is None and pe is None
                    assert ([strip_timing(r) for r in pr]
                            == [strip_timing(r) for r in tr])
            assert_stores_identical(thread_store, process_store)
        finally:
            thread_store.close()
            process_store.close()

    def test_crash_recover_matches_thread_mode(self):
        config = make_config()
        thread_store = warmed(config, "thread")
        process_store = warmed(config, "process")
        try:
            pairs = batch_of(np.random.default_rng(31), 50)
            for store in (thread_store, process_store):
                store.put_many(pairs)
                store.delete_many([key for key, _ in pairs[35:]])
                store.crash()
                assert len(store) == 0
                store.recover()
                assert len(store) == 35
            assert_stores_identical(thread_store, process_store)
            for key, value in pairs[:35]:
                assert process_store.get(key) == value
        finally:
            thread_store.close()
            process_store.close()

    def test_ingest_queue_drains_through_process_store(self):
        config = make_config()
        thread_store = warmed(config, "thread")
        process_store = warmed(config, "process")
        try:
            pairs = batch_of(np.random.default_rng(41), 48)
            for store in (thread_store, process_store):
                queue = IngestQueue(store, max_batch=16, max_delay=0.002)
                futures = [queue.put(k, v) for k, v in pairs]
                futures += [queue.delete(k) for k, _ in pairs[:10]]
                queue.close()
                for future in futures:
                    assert future.result(timeout=5) is not None
            assert_stores_identical(thread_store, process_store)
        finally:
            thread_store.close()
            process_store.close()


class TestWorkerCrash:
    def test_idle_worker_kill_heals_transparently(self):
        store = warmed(make_config(), "process")
        try:
            pairs = batch_of(np.random.default_rng(51), 40)
            store.put_many(pairs)
            victim = store.stores[1]
            os.kill(victim.pid, signal.SIGKILL)
            wait_for(lambda: not victim.is_alive())
            # Nothing was in flight: the next request revives the worker
            # from the shared zone and every flagged op is still there.
            for key, value in pairs:
                assert store.get(key) == value
            assert len(store) == 40
            store.put_many(batch_of(np.random.default_rng(52), 10, "post"))
            assert len(store) == 50
        finally:
            store.close()

    def test_midbatch_kill_loses_only_unflagged_subbatch(self):
        store = warmed(make_config(), "process")
        try:
            prior = batch_of(np.random.default_rng(61), 30, "prior")
            store.put_many(prior)
            pairs = batch_of(np.random.default_rng(62), 36)
            by_shard: dict[int, list] = {}
            for key, value in pairs:
                by_shard.setdefault(store.shard_of_key(key), []).append(
                    (key, value)
                )
            torn_sid = max(by_shard, key=lambda sid: len(by_shard[sid]))
            assert len(by_shard[torn_sid]) >= 2
            old_pid = store.stores[torn_sid].pid
            store.stores[torn_sid].sabotage_next_flush(
                len(by_shard[torn_sid]) // 2
            )
            with pytest.raises(WorkerCrashedError):
                store.put_many(pairs)
            # The worker was respawned over the surviving zone...
            assert store.stores[torn_sid].is_alive()
            assert store.stores[torn_sid].pid != old_pid
            # ...prior (flagged) data survived everywhere...
            for key, value in prior:
                assert store.get(key) == value
            # ...sibling shards committed their whole sub-batches, and the
            # torn shard lost exactly its unflagged sub-batch (flags are
            # set after write_many, so the partial flush died unflagged).
            for sid, sub in by_shard.items():
                for key, value in sub:
                    if sid == torn_sid:
                        assert key not in store
                    else:
                        assert store.get(key) == value
            # The error is retry-safe: replaying the lost sub-batch lands.
            store.put_many(by_shard[torn_sid])
            for key, value in pairs:
                assert store.get(key) == value
        finally:
            store.close()

    def test_kill_without_persistent_flags_restarts_empty(self):
        # Fig. 2a architecture: no persistent bitmap, so a dead worker has
        # nothing to recover from — same trade-off as the single store.
        store = warmed(make_config(persist_flags=False), "process")
        try:
            pairs = batch_of(np.random.default_rng(71), 20)
            store.put_many(pairs)
            victim_sid = store.shard_of_key(pairs[0][0])
            victim = store.stores[victim_sid]
            os.kill(victim.pid, signal.SIGKILL)
            wait_for(lambda: not victim.is_alive())
            assert pairs[0][0] not in store
        finally:
            store.close()


class TestProcessLifecycle:
    def test_close_is_idempotent_and_leak_free(self):
        store = warmed(make_config(), "process")
        store.put_many(batch_of(np.random.default_rng(81), 20))
        store.close()
        store.close()
        assert no_worker_children()
        with pytest.raises(ReproError, match="shut down"):
            store.put(b"late", b"\x00" * 24)

    def test_aggregation_readable_after_close(self):
        # shutdown() detaches the parent facades to private copies, so
        # post-close wear/state reads (how benches report) still work.
        store = warmed(make_config(), "process")
        store.put_many(batch_of(np.random.default_rng(82), 20))
        wear = store.wear_summary()
        snaps = [shard.nvm.snapshot() for shard in store.stores]
        store.close()
        assert store.wear_summary() == wear
        for shard, snap in zip(store.stores, snaps):
            assert np.array_equal(shard.nvm.snapshot(), snap)

    def test_set_keep_reports_round_trips(self):
        store = warmed(make_config(), "process")
        try:
            store.set_keep_reports(True)
            pairs = batch_of(np.random.default_rng(83), 12)
            reports = store.put_many(pairs)
            kept = store.metrics.reports
            # Kept reports concatenate shard by shard, not in input order.
            assert (sorted((strip_timing(r) for r in kept),
                           key=lambda r: r.key)
                    == sorted((strip_timing(r) for r in reports),
                              key=lambda r: r.key))
            store.set_keep_reports(False)
        finally:
            store.close()


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestMergeAfterRecover:
    def test_no_double_count_across_crash_recover(self, executor):
        # Merged wear and op counters must count each op exactly once,
        # even after every shard is torn down and rebuilt from NVM state:
        # recovery re-reads the zones but never re-records their writes.
        store = warmed(make_config(), executor)
        try:
            pairs = batch_of(np.random.default_rng(91), 40)
            store.put_many(pairs)
            store.delete_many([key for key, _ in pairs[30:]])
            wear_before = store.wear_summary()
            metrics_before = store.metrics
            store.crash()
            store.recover()
            wear_after = store.wear_summary()
            assert wear_after["writes"] == wear_before["writes"]
            assert wear_after["bit_updates"] == wear_before["bit_updates"]
            metrics_after = store.metrics
            assert metrics_after.puts == metrics_before.puts
            assert metrics_after.deletes == metrics_before.deletes
        finally:
            store.close()


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestLifecycleQuiesce:
    """Satellite: lifecycle calls wait out in-flight batch traffic."""

    def test_crash_waits_for_inflight_batch(self, executor):
        config = make_config()
        store = warmed(config, executor)
        try:
            pairs = batch_of(np.random.default_rng(101), 24)
            busy_sid = store.shard_of_key(pairs[0][0])
            started = threading.Event()
            release = threading.Event()

            # Stall the shard by holding its lock, exactly as an in-flight
            # K/V sub-batch does (works identically for both executors).
            def inflight():
                with store._shard_locks[busy_sid]:
                    started.set()
                    assert release.wait(timeout=10)

            worker = threading.Thread(target=inflight)
            worker.start()
            assert started.wait(timeout=5)
            crash_done = threading.Event()

            def crasher():
                store.crash()
                crash_done.set()

            crash_thread = threading.Thread(target=crasher)
            crash_thread.start()
            time.sleep(0.05)
            # crash() is quiesced: it cannot land while shard traffic is
            # in flight.
            assert not crash_done.is_set()
            release.set()
            worker.join(timeout=5)
            crash_thread.join(timeout=5)
            assert crash_done.is_set()
            store.recover()
            store.put_many(pairs)
            assert len(store) == len(pairs)
        finally:
            store.close()

    def test_close_drains_queued_batches_first(self, executor):
        store = warmed(make_config(), executor)
        pairs = batch_of(np.random.default_rng(102), 30)
        results: list = []

        def producer():
            results.append(store.put_many(pairs))

        producer_thread = threading.Thread(target=producer)
        producer_thread.start()
        producer_thread.join(timeout=10)
        store.close()
        assert len(results) == 1 and len(results[0]) == len(pairs)
        if executor == "process":
            assert no_worker_children()

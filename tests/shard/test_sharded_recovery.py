"""Crash/recovery of the sharded store.

Each shard recovers independently from its own NVM state (data zone +
persistent validity bitmap); a shard torn mid-flush loses only its own
unflagged operations, and whole-store recovery reaches exactly the state
N manually recovered single stores would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.errors import ReproError
from repro.shard import ShardedPNWStore, shard_configs
from tests.conftest import clustered_values


def make_config(num_buckets: int = 130, shards: int = 3, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=num_buckets,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def warm_pair(config: PNWConfig) -> tuple[ShardedPNWStore, list[PNWStore]]:
    """A sharded store and its manually driven standalone twins."""
    store = ShardedPNWStore(config)
    manuals = [PNWStore(c) for c in shard_configs(config)]
    rng = np.random.default_rng(42)
    old = clustered_values(rng, config.num_buckets, config.value_bytes)
    store.warm_up(old)
    for i, manual in enumerate(manuals):
        manual.warm_up(old[store.shard_bases[i] : store.shard_bases[i + 1]])
    return store, manuals


def batch_of(rng: np.random.Generator, n: int,
             prefix: str = "k") -> list[tuple[bytes, bytes]]:
    values = clustered_values(rng, n, 24, flip_rate=0.05)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


def routed(store: ShardedPNWStore, items, key_of=lambda item: item[0]):
    groups = [[] for _ in range(store.n_shards)]
    for item in items:
        groups[store.shard_of_key(key_of(item))].append(item)
    return groups


class TestShardedRecovery:
    def test_recover_rebuilds_every_shard(self):
        store, _ = warm_pair(make_config())
        pairs = batch_of(np.random.default_rng(1), 80)
        store.put_many(pairs)
        store.delete_many([key for key, _ in pairs[60:]])
        expected = {key: store.get(key) for key, _ in pairs[:60]}
        store.crash()
        assert len(store) == 0
        store.recover()
        assert len(store) == 60
        for key, value in expected.items():
            assert store.get(key) == value
        for key, _ in pairs[60:]:
            assert key not in store
        assert all(shard.manager.is_trained for shard in store.stores)
        store.put_many(batch_of(np.random.default_rng(2), 20, prefix="post"))
        assert len(store) == 80
        store.close()

    def test_randomized_crash_recovery_equivalence(self):
        """After an identical randomized op stream and a crash, the
        sharded store and N manually driven/recovered single stores
        reach byte-identical per-shard state."""
        config = make_config()
        store, manuals = warm_pair(config)
        op_rng = np.random.default_rng(999)
        live: list[bytes] = []
        next_id = 0
        for _ in range(5):
            n_put = int(op_rng.integers(8, 20))
            values = clustered_values(op_rng, n_put, 24, flip_rate=0.05)
            pairs = []
            for j in range(n_put):
                pairs.append((f"r{next_id}".encode(), values[j].tobytes()))
                next_id += 1
            store.put_many(pairs)
            for sid, sub in enumerate(routed(store, pairs)):
                if sub:
                    manuals[sid].put_many(sub)
            live.extend(key for key, _ in pairs)
            n_del = int(op_rng.integers(0, len(live) // 2))
            doomed = [live.pop(0) for _ in range(n_del)]
            if doomed:
                store.delete_many(doomed)
                for sid, sub in enumerate(
                    routed(store, doomed, key_of=lambda k: k)
                ):
                    if sub:
                        manuals[sid].delete_many(sub)

        store.crash()
        store.recover()
        for manual in manuals:
            manual.crash()
            manual.recover()

        for shard, manual in zip(store.stores, manuals):
            assert np.array_equal(shard.nvm.snapshot(), manual.nvm.snapshot())
            assert dict(shard.index.items()) == dict(manual.index.items())
            assert shard.pool._free_lists == manual.pool._free_lists
            assert len(shard) == len(manual)
        assert len(store) == len(live)
        for key in live:
            assert store.get(key) == manuals[store.shard_of_key(key)].get(key)
        store.close()

    def test_torn_shard_loses_only_its_unflagged_ops(self):
        """A power failure during one shard's multi-row flush: sibling
        shards keep every op of the batch; the torn shard loses exactly
        its unflagged sub-batch and recovers servable."""
        store, _ = warm_pair(make_config())
        committed = batch_of(np.random.default_rng(3), 30, prefix="ok")
        store.put_many(committed)

        torn_batch = batch_of(np.random.default_rng(4), 24, prefix="torn")
        groups = routed(store, torn_batch)
        torn_sid = max(range(store.n_shards), key=lambda s: len(groups[s]))
        assert len(groups[torn_sid]) >= 2

        device = store.stores[torn_sid].nvm
        original = type(device).write_many

        def torn_write_many(addresses, rows, scheme=None):
            half = len(addresses) // 2
            original(device, addresses[:half], rows[:half], scheme)
            raise RuntimeError("simulated power failure mid-flush")

        device.write_many = torn_write_many
        with pytest.raises(RuntimeError, match="power failure"):
            store.put_many(torn_batch)
        del device.write_many

        store.crash()
        store.recover()

        # Sibling shards committed their whole sub-batches.
        survivors = [
            pair for sid, group in enumerate(groups) if sid != torn_sid
            for pair in group
        ]
        assert len(store) == 30 + len(survivors)
        for key, value in committed:
            assert store.get(key) == value
        for key, value in survivors:
            assert store.get(key) == value
        # The torn shard's sub-batch never got its flags: all lost.
        for key, _ in groups[torn_sid]:
            assert key not in store
        # Nothing leaked: the torn shard's addresses are free again and
        # the lost ops can simply be retried.
        store.put_many(groups[torn_sid])
        for key, value in groups[torn_sid]:
            assert store.get(key) == value
        store.close()

    def test_recover_requires_persistent_flags(self):
        config = make_config(num_buckets=32, shards=2, persist_flags=False)
        store = ShardedPNWStore(config)
        store.put_many([(b"a", b"v"), (b"b", b"w")])
        store.crash()
        with pytest.raises(ReproError, match="persist_flags"):
            store.recover()
        store.close()

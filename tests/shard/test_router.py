"""Virtual-bucket routing: vectorized hash equivalence, the indirection
table's default-layout identity, shared-memory persistence, and the
mergeable RouterStats counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig
from repro.index.base import KeyIndex, stable_hash64
from repro.nvm.shm import SharedZone, ZoneLayout
from repro.shard import ShardedPNWStore, assign_shards, hash_keys, shard_of
from repro.shard.router import ROUTER_SEED, RouterStats, RoutingTable


def normalized_keys(rng: np.random.Generator, n: int, key_bytes: int) -> list[bytes]:
    raw = rng.integers(0, 256, size=(n, key_bytes), dtype=np.uint8)
    return [row.tobytes() for row in raw]


# ---------------------------------------------------------------------- #
# vectorized hash                                                         #
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("key_bytes", [4, 8, 16])
def test_hash_keys_matches_scalar_fnv(key_bytes):
    rng = np.random.default_rng(11)
    keys = normalized_keys(rng, 500, key_bytes)
    vectorized = hash_keys(keys)
    scalar = [stable_hash64(key, seed=ROUTER_SEED) for key in keys]
    assert vectorized.dtype == np.uint64
    assert vectorized.tolist() == scalar


def test_hash_keys_empty_batch():
    assert hash_keys([]).shape == (0,)


@pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
def test_assign_shards_matches_scalar_shard_of(n_shards):
    rng = np.random.default_rng(12)
    keys = normalized_keys(rng, 300, 8)
    assert assign_shards(keys, n_shards) == [
        shard_of(key, n_shards, 8) for key in keys
    ]


# ---------------------------------------------------------------------- #
# routing table                                                           #
# ---------------------------------------------------------------------- #

def test_default_table_composes_to_direct_hash():
    # (h % (V * n)) % n == h % n for any vbuckets-per-shard multiple.
    rng = np.random.default_rng(13)
    keys = normalized_keys(rng, 400, 8)
    hashes = hash_keys(keys)
    for n_shards in (2, 3, 5):
        for per_shard in (1, 16, 64):
            table = RoutingTable(n_shards, per_shard)
            assert table.version == 0
            assert table.is_default
            assert (
                table.assign_hashes(hashes).tolist()
                == assign_shards(keys, n_shards)
            )


def test_move_bumps_version_and_reroutes():
    table = RoutingTable(4, 4)
    bucket = 5  # default owner: 5 % 4 == 1
    assert table.shard_of_bucket(bucket) == 1
    table.move(bucket, 3)
    assert table.shard_of_bucket(bucket) == 3
    assert table.version == 1
    assert not table.is_default
    with pytest.raises(ValueError):
        table.move(bucket, 4)
    with pytest.raises(ValueError):
        table.move(table.n_vbuckets, 0)


def test_buckets_of_shard_and_snapshot_isolation():
    table = RoutingTable(2, 4)
    snapshot = table.snapshot()
    table.move(0, 1)
    assert snapshot[0] == 0  # the snapshot is a private copy
    assert 0 in table.buckets_of_shard(1).tolist()


def test_shared_memory_table_round_trip():
    layout = ZoneLayout(num_buckets=1, bucket_bytes=1, routing_slots=8)
    zone = SharedZone.create(layout)
    try:
        table = RoutingTable(
            2, 4, table=zone.view("routing"), meta=zone.view("routing_meta")
        )
        assert table.is_default  # fresh zero-filled segment initialized
        table.move(3, 0)
        # A second attachment (same segment) sees the edited layout.
        peer = SharedZone.attach(layout, zone.name)
        try:
            mirrored = RoutingTable(
                2,
                4,
                table=peer.view("routing"),
                meta=peer.view("routing_meta"),
            )
            assert mirrored.version == 1
            assert mirrored.shard_of_bucket(3) == 0
            # Geometry mismatch against persisted state must refuse.
            with pytest.raises(ValueError):
                RoutingTable(
                    4,
                    2,
                    table=peer.view("routing"),
                    meta=peer.view("routing_meta"),
                )
            mirrored.detach()
        finally:
            peer.close()
        table.detach()
    finally:
        zone.close()
        zone.unlink()


# ---------------------------------------------------------------------- #
# stats                                                                   #
# ---------------------------------------------------------------------- #

def test_router_stats_merge_and_snapshot():
    a = RouterStats(routed_ops=[1, 2], bucket_moves=1, keys_migrated=10)
    b = RouterStats(routed_ops=[3, 4], migration_batches=2, rebalances=1)
    merged = RouterStats.merge([a, b])
    assert merged.routed_ops == [4, 6]
    assert merged.bucket_moves == 1
    assert merged.keys_migrated == 10
    assert merged.migration_batches == 2
    assert merged.rebalances == 1
    snap = a.snapshot()
    a.routed_ops[0] += 99
    assert snap.routed_ops == [1, 2]
    assert snap.as_dict()["routed_ops"] == [1, 2]
    with pytest.raises(ValueError):
        RouterStats.merge([])


# ---------------------------------------------------------------------- #
# store integration (rebalance off => byte-identical routing)             #
# ---------------------------------------------------------------------- #

def test_store_routing_defaults_to_fnv_layout():
    config = PNWConfig(
        num_buckets=96,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=10,
        shards=3,
    )
    store = ShardedPNWStore(config)
    assert store.routing_epoch == 0
    assert not store.rebalance_enabled
    assert store.rebalance_check(10_000) is False
    rng = np.random.default_rng(14)
    keys = normalized_keys(rng, 200, config.key_bytes)
    assert store._assign(keys) == assign_shards(keys, store.n_shards)
    assert [store.shard_of_key(key) for key in keys] == [
        shard_of(key, store.n_shards, config.key_bytes) for key in keys
    ]
    stats = store.router_stats()
    assert stats.routed_ops == [0, 0, 0]


def test_routed_ops_counting():
    config = PNWConfig(
        num_buckets=96,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=10,
        shards=3,
    )
    store = ShardedPNWStore(config)
    rng = np.random.default_rng(15)
    store.warm_up(
        rng.integers(
            0, 256, size=(config.num_buckets, config.bucket_bytes),
            dtype=np.uint8,
        )
    )
    pairs = [
        (KeyIndex.normalize_key(b"k%d" % i, 8), b"v%d" % i) for i in range(30)
    ]
    store.put_many(pairs)
    stats = store.router_stats()
    assert sum(stats.routed_ops) == 30
    store.get(pairs[0][0])
    assert sum(store.router_stats().routed_ops) == 31

"""ShardedPNWStore: routing, batch API, aggregation, and the
shard-by-shard equivalence to manually driven single stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.errors import (
    ConfigError,
    DuplicateKeyError,
    KeyNotFoundError,
    PoolExhaustedError,
)
from repro.shard import ShardedPNWStore, make_store, shard_configs, shard_of
from tests.conftest import clustered_values


def make_config(num_buckets: int = 192, shards: int = 3, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=num_buckets,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig) -> ShardedPNWStore:
    store = ShardedPNWStore(config)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def batch_of(rng: np.random.Generator, n: int, width: int = 24,
             prefix: str = "k") -> list[tuple[bytes, bytes]]:
    values = clustered_values(rng, n, width, flip_rate=0.05)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


def routed(store: ShardedPNWStore, items, key_of=lambda item: item[0]):
    """Per-shard sub-sequences in original order (what each shard runs)."""
    groups = [[] for _ in range(store.n_shards)]
    for item in items:
        groups[store.shard_of_key(key_of(item))].append(item)
    return groups


class TestShardConfigs:
    def test_sizes_split_with_remainder_up_front(self):
        configs = shard_configs(make_config(num_buckets=130, shards=3))
        assert [c.num_buckets for c in configs] == [44, 43, 43]
        assert all(c.shards == 1 for c in configs)

    def test_seeds_are_offset_per_shard(self):
        configs = shard_configs(make_config(shards=3))
        assert [c.seed for c in configs] == [7, 8, 9]
        configs = shard_configs(make_config(shards=2, seed=None))
        assert [c.seed for c in configs] == [None, None]

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ConfigError, match=">= 1"):
            shard_configs(make_config(), shards=0)
        with pytest.raises(ConfigError, match="exceeds num_buckets"):
            shard_configs(make_config(num_buckets=4, shards=1), shards=5)
        with pytest.raises(ConfigError, match="exceeds num_buckets"):
            make_config(num_buckets=4, shards=8)

    def test_factory_dispatches_on_config(self):
        assert isinstance(make_store(make_config(shards=1)), PNWStore)
        sharded = make_store(make_config(shards=3))
        assert isinstance(sharded, ShardedPNWStore)
        assert sharded.n_shards == 3
        sharded.close()


class TestWarmUp:
    def test_partial_warm_up_trains_every_shard(self):
        """Rows are dealt as contiguous zone slices, so a partial
        warm-up leaves tail shards with empty slices — they must still
        train (on their zeroed zones), like a single store warmed with
        fewer rows than buckets."""
        config = make_config(num_buckets=64, shards=4)
        store = ShardedPNWStore(config)
        rng = np.random.default_rng(8)
        store.warm_up(clustered_values(rng, 20, config.value_bytes))
        assert all(shard.manager.is_trained for shard in store.stores)
        report = store.put(b"steered", b"v" * 24)
        assert report.predict_ns >= 0.0
        assert store.get(b"steered") == b"v" * 24
        store.close()

    def test_oversized_warm_up_rejected(self):
        store = ShardedPNWStore(make_config(num_buckets=32, shards=2))
        rng = np.random.default_rng(9)
        with pytest.raises(ValueError, match="exceed"):
            store.warm_up(clustered_values(rng, 33, 24))
        store.close()


class TestRouting:
    def test_routing_is_stable_and_normalized(self):
        store = ShardedPNWStore(make_config())
        for key in (b"alpha", b"beta", b"x"):
            sid = store.shard_of_key(key)
            assert sid == store.shard_of_key(key)
            # Routing sees the index's normalized (zero-padded) key.
            assert sid == store.shard_of_key(key.ljust(8, b"\x00"))
            assert sid == shard_of(key, store.n_shards, 8)
        store.close()

    def test_all_shards_receive_keys(self):
        store = ShardedPNWStore(make_config(shards=4, num_buckets=200))
        shards_hit = {store.shard_of_key(f"key-{i}".encode()) for i in range(200)}
        assert shards_hit == set(range(4))
        store.close()


class TestShardedOps:
    def test_single_op_roundtrip(self):
        store = warmed(make_config())
        report = store.put(b"alpha", b"v" * 24)
        sid = store.shard_of_key(b"alpha")
        base = int(store.shard_bases[sid])
        assert base <= report.address < base + store.stores[sid].config.num_buckets
        assert b"alpha" in store
        assert store.get(b"alpha") == b"v" * 24
        store.update(b"alpha", b"w" * 24)
        assert store.get(b"alpha") == b"w" * 24
        report = store.delete(b"alpha")
        assert b"alpha" not in store
        assert len(store) == 0
        store.close()

    def test_batch_reports_in_input_order_with_global_addresses(self):
        store = warmed(make_config())
        pairs = batch_of(np.random.default_rng(1), 60)
        reports = store.put_many(pairs)
        assert [r.key.rstrip(b"\x00") for r in reports] == [k for k, _ in pairs]
        for report in reports:
            sid = store.shard_of_key(report.key)
            base = int(store.shard_bases[sid])
            size = store.stores[sid].config.num_buckets
            assert base <= report.address < base + size
        assert len(store) == 60
        store.close()

    def test_put_many_routes_existing_keys_through_update(self):
        store = warmed(make_config())
        pairs = batch_of(np.random.default_rng(2), 30)
        store.put_many(pairs)
        replacement = [(key, bytes(24)) for key, _ in pairs[:10]]
        store.put_many(replacement)
        assert len(store) == 30
        for key, value in replacement:
            assert store.get(key) == value
        assert store.metrics.updates == 10
        store.close()

    def test_put_many_unique_rejects_without_mutating_any_shard(self):
        store = warmed(make_config())
        pairs = batch_of(np.random.default_rng(3), 20)
        store.put_many(pairs[:10])
        writes_before = store.wear_summary()["writes"]
        with pytest.raises(DuplicateKeyError):
            store.put_many(pairs[5:], unique=True)
        with pytest.raises(DuplicateKeyError):
            store.put_many([(b"fresh", b"x"), (b"fresh", b"y")], unique=True)
        assert store.wear_summary()["writes"] == writes_before
        assert len(store) == 10
        store.put_many(pairs[10:], unique=True)
        assert len(store) == 20
        store.close()

    def test_put_unique_routes(self):
        store = warmed(make_config())
        store.put_unique(b"only", b"v" * 24)
        with pytest.raises(DuplicateKeyError):
            store.put_unique(b"only", b"w" * 24)
        store.close()

    def test_delete_many_missing_key_raises(self):
        store = warmed(make_config())
        store.put_many(batch_of(np.random.default_rng(4), 10))
        with pytest.raises(KeyNotFoundError):
            store.delete_many([b"k0", b"missing", b"k1"])
        # The present keys of the batch may or may not have been removed
        # (their shards ran concurrently); the store must stay servable.
        store.put(b"after", b"v" * 24)
        assert store.get(b"after") == b"v" * 24
        store.close()

    def test_update_missing_key_raises(self):
        store = warmed(make_config())
        with pytest.raises(KeyNotFoundError):
            store.update(b"ghost", b"v" * 24)
        with pytest.raises(KeyNotFoundError):
            store.update_many([(b"ghost", b"v" * 24)])
        store.close()

    def test_pool_exhaustion_carries_cross_shard_committed_reports(self):
        config = make_config(num_buckets=24, shards=2, n_clusters=1)
        store = ShardedPNWStore(config)  # cold: every bucket starts free
        pairs = [(f"f{i}".encode(), bytes([i]) * 24) for i in range(40)]
        with pytest.raises(PoolExhaustedError) as excinfo:
            store.put_many(pairs)
        committed = excinfo.value.committed_reports
        assert len(committed) == len(store) == 24
        committed_keys = {r.key.rstrip(b"\x00") for r in committed}
        for key, value in pairs:
            if key in committed_keys:
                assert store.get(key) == value
        store.close()


class TestPerShardProbeEngines:
    """Each shard owns an independent probe engine whose DRAM content
    cache must mirror that shard's own zone (and only it)."""

    def test_shard_caches_mirror_their_zones(self):
        store = warmed(make_config(probe_limit=-1))
        rng = np.random.default_rng(11)
        store.put_many(batch_of(rng, 40))
        store.delete_many([key for key, _ in batch_of(rng, 10)])
        for shard in store.stores:
            contents = np.asarray(shard.nvm.contents)
            assert shard.pool.has_content_cache
            free: list[int] = []
            for cluster in range(shard.pool.n_clusters):
                addresses, rows = shard.pool.cache_rows(cluster)
                assert np.array_equal(rows, contents[addresses])
                free.extend(addresses.tolist())
            assert sorted(free) == shard.pool.free_addresses().tolist()
        store.close()


class TestAggregation:
    def test_wear_and_metrics_merge_across_shards(self):
        store = warmed(make_config())
        pairs = batch_of(np.random.default_rng(5), 50)
        store.put_many(pairs)
        store.update_many(pairs[:10])
        store.delete_many([key for key, _ in pairs[40:]])
        summary = store.wear_summary()
        assert summary["writes"] == sum(
            s.nvm.stats.total_writes for s in store.stores
        )
        assert summary["writes"] == 60  # 50 puts + 10 update re-puts
        metrics = store.metrics
        assert metrics.puts == 60
        assert metrics.updates == 10
        assert metrics.deletes == 20  # 10 batch deletes + 10 update deletes
        values, cum = store.address_write_cdf()
        assert cum[-1] == pytest.approx(1.0)
        assert store.wear_stats().writes_per_address.size == 192
        store.close()

    def test_live_fraction_and_total_free(self):
        store = warmed(make_config(num_buckets=100, shards=2))
        store.put_many(batch_of(np.random.default_rng(6), 25))
        assert len(store) == 25
        assert store.live_fraction == pytest.approx(0.25)
        assert store.total_free == 75
        store.close()

    def test_set_keep_reports_with_global_addresses(self):
        store = warmed(make_config())
        store.set_keep_reports(True)
        returned = store.put_many(batch_of(np.random.default_rng(7), 12))
        kept = store.metrics.reports
        assert len(kept) == 12
        # Kept reports use the same global address space as the
        # returned reports (merged shard by shard, not batch order).
        assert {r.address for r in kept} == {r.address for r in returned}
        store.close()


class TestEquivalenceToManualStores:
    """A sharded store is *exactly* N single stores plus routing: after
    identical routed op streams, every shard's NVM zone, flag bitmap,
    index, and pool must be byte-identical to a manually driven
    standalone PNWStore built from the same derived config."""

    @staticmethod
    def manual_stores(config: PNWConfig) -> list[PNWStore]:
        return [PNWStore(c) for c in shard_configs(config)]

    @staticmethod
    def assert_state_identical(store: ShardedPNWStore, manuals: list[PNWStore]):
        for shard, manual in zip(store.stores, manuals):
            assert np.array_equal(shard.nvm.snapshot(), manual.nvm.snapshot())
            assert np.array_equal(
                shard.flags_nvm.snapshot(), manual.flags_nvm.snapshot()
            )
            assert dict(shard.index.items()) == dict(manual.index.items())
            assert shard.pool._free_lists == manual.pool._free_lists
            assert len(shard) == len(manual)
            assert shard.nvm.stats.summary() == manual.nvm.stats.summary()

    def test_randomized_op_stream_matches(self):
        config = make_config(num_buckets=130, shards=3)
        store = ShardedPNWStore(config)
        manuals = self.manual_stores(config)

        rng = np.random.default_rng(42)
        old = clustered_values(rng, config.num_buckets, config.value_bytes)
        store.warm_up(old)
        for i, manual in enumerate(manuals):
            manual.warm_up(old[store.shard_bases[i] : store.shard_bases[i + 1]])

        op_rng = np.random.default_rng(1234)
        live: list[bytes] = []
        next_id = 0
        for _ in range(6):
            n_put = int(op_rng.integers(5, 25))
            values = clustered_values(op_rng, n_put, config.value_bytes,
                                      flip_rate=0.05)
            pairs = []
            for j in range(n_put):
                pairs.append((f"k{next_id}".encode(), values[j].tobytes()))
                next_id += 1
            store.put_many(pairs)
            for sid, sub in enumerate(routed(store, pairs)):
                if sub:
                    manuals[sid].put_many(sub)
            live.extend(key for key, _ in pairs)

            if len(live) > 8:
                n_upd = int(op_rng.integers(1, 8))
                picks = op_rng.choice(len(live), size=n_upd, replace=False)
                new_vals = clustered_values(op_rng, n_upd, config.value_bytes,
                                            flip_rate=0.1)
                updates = [
                    (live[p], new_vals[j].tobytes())
                    for j, p in enumerate(picks)
                ]
                store.update_many(updates)
                for sid, sub in enumerate(routed(store, updates)):
                    if sub:
                        manuals[sid].update_many(sub)

                n_del = int(op_rng.integers(1, min(6, len(live) - 2)))
                doomed = [live.pop(0) for _ in range(n_del)]
                store.delete_many(doomed)
                for sid, sub in enumerate(
                    routed(store, doomed, key_of=lambda k: k)
                ):
                    if sub:
                        manuals[sid].delete_many(sub)

        self.assert_state_identical(store, manuals)
        for key in live:
            sid = store.shard_of_key(key)
            assert store.get(key) == manuals[sid].get(key)
        store.close()

    def test_sharded_wear_totals_match_manual_sum(self):
        config = make_config(num_buckets=130, shards=3)
        store = ShardedPNWStore(config)
        manuals = self.manual_stores(config)
        rng = np.random.default_rng(42)
        old = clustered_values(rng, config.num_buckets, config.value_bytes)
        store.warm_up(old)
        for i, manual in enumerate(manuals):
            manual.warm_up(old[store.shard_bases[i] : store.shard_bases[i + 1]])
        pairs = batch_of(np.random.default_rng(9), 60)
        store.put_many(pairs)
        for sid, sub in enumerate(routed(store, pairs)):
            if sub:
                manuals[sid].put_many(sub)
        summary = store.wear_summary()
        assert summary["writes"] == sum(
            m.nvm.stats.total_writes for m in manuals
        )
        assert summary["bit_updates"] == sum(
            m.nvm.stats.total_bit_updates for m in manuals
        )
        store.close()

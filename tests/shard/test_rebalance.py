"""Live shard rebalancing: policies, watermark-triggered migration,
mid-migration crash semantics, routing-epoch re-lane in the ingest
layer, and process-executor survival (worker kill + kill -9 respawn
agreement via the shared-memory routing table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, ShardedPNWStore
from repro.index.base import KeyIndex, stable_hash64
from repro.shard import ROUTER_SEED, shard_of
from repro.shard.rebalance import (
    RoutingLatch,
    SimulatedRebalanceCrash,
    greedy_moves,
    hot_bucket_moves,
)
from tests.conftest import clustered_values


def make_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=10,
        shards=4,
        rebalance_mode="watermark",
        rebalance_low_watermark=0.2,
        rebalance_check_interval=16,
        rebalance_max_keys=64,
        router_vbuckets=16,
    )
    base.update(overrides)
    return PNWConfig(**base)


def warmed(config: PNWConfig, **kwargs) -> ShardedPNWStore:
    store = ShardedPNWStore(config, **kwargs)
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def hot_pairs(config: PNWConfig, n: int, shard: int = 0):
    """``n`` distinct keys whose *default* routing lands on ``shard``."""
    pairs = []
    i = 0
    while len(pairs) < n:
        key = b"h%07d" % i
        i += 1
        if shard_of(key, config.shards, config.key_bytes) == shard:
            pairs.append((key, b"value-of:" + key))
    return pairs


def padded(value: bytes, config: PNWConfig) -> bytes:
    return value.ljust(config.value_bytes, b"\x00")


def assert_oracle(store: ShardedPNWStore, pairs) -> None:
    """Every acked key readable with its latest value, resident exactly
    once, and resident on the shard the table routes it to."""
    config = store.config
    assert len(store) == len(pairs)
    assert sum(len(shard) for shard in store.stores) == len(pairs)
    for key, value in pairs:
        assert store.get(key) == padded(value, config)
    for shard_id, shard in enumerate(store.stores):
        for key, _ in list(shard.index.items()):
            assert store.shard_of_key(key) == shard_id


def fill_hot(store: ShardedPNWStore, n: int = 56):
    """Load ``n`` keys that all route to shard 0 under the default
    table, batched so the fill itself stays under the watermark's
    trigger points (the explicit check afterwards is the trigger)."""
    pairs = hot_pairs(store.config, n)
    for start in range(0, len(pairs), 8):
        store.put_many(pairs[start : start + 8])
    return pairs


# ---------------------------------------------------------------------- #
# the latch                                                               #
# ---------------------------------------------------------------------- #

def test_routing_latch_reentrant_reads_and_writer_guard():
    latch = RoutingLatch()
    with latch.read_locked():
        assert latch.read_depth() == 1
        with latch.read_locked():
            assert latch.read_depth() == 2
        assert latch.read_depth() == 1
        with pytest.raises(RuntimeError):
            with latch.write_locked():
                pass  # pragma: no cover - must not be reached
    assert latch.read_depth() == 0
    with latch.write_locked():
        pass
    with latch.read_locked():
        pass


# ---------------------------------------------------------------------- #
# policies                                                                #
# ---------------------------------------------------------------------- #

def test_greedy_moves_flatten_a_hot_shard():
    n_shards, per_shard = 4, 4
    table = np.arange(n_shards * per_shard, dtype=np.int32) % n_shards
    counts = np.zeros(n_shards * per_shard, dtype=np.int64)
    counts[table == 0] = 40  # shard 0 holds everything
    capacities = np.full(n_shards, 64, dtype=np.int64)
    moves = greedy_moves(counts, table, capacities)
    assert moves
    applied = table.copy()
    for bucket, recipient in moves:
        assert applied[bucket] == 0  # only the hot shard donates
        applied[bucket] = recipient
    loads = [int(counts[applied == s].sum()) for s in range(n_shards)]
    assert max(loads) < int(counts.sum())  # strictly better than before


def test_greedy_no_moves_when_balanced():
    table = np.arange(8, dtype=np.int32) % 2
    counts = np.full(8, 10, dtype=np.int64)
    assert greedy_moves(counts, table, np.array([64, 64])) == []


def test_hot_bucket_moves_single_heaviest():
    table = np.arange(8, dtype=np.int32) % 2
    counts = np.zeros(8, dtype=np.int64)
    counts[0] = 30
    counts[2] = 5
    moves = hot_bucket_moves(counts, table, np.array([64, 64]))
    assert moves == [(0, 1)]
    assert hot_bucket_moves(
        np.zeros(8, dtype=np.int64), table, np.array([64, 64])
    ) == []


# ---------------------------------------------------------------------- #
# end-to-end rebalancing (thread executor)                                #
# ---------------------------------------------------------------------- #

def test_watermark_rebalance_spreads_a_skewed_load():
    store = warmed(make_config())
    pairs = fill_hot(store)
    assert len(store.stores[0]) == len(pairs)  # all hot before the pass
    assert store.rebalance_check(1_000) is True
    stats = store.router_stats()
    assert stats.rebalances >= 1
    assert stats.bucket_moves > 0
    assert stats.keys_migrated > 0
    assert store.routing_epoch == stats.bucket_moves
    # The donor shed real load and nobody lost a key.
    assert len(store.stores[0]) < len(pairs)
    assert_oracle(store, pairs)
    # Updates and deletes keep routing to the migrated homes.
    key, _ = pairs[0]
    store.update(key, b"fresh")
    assert store.get(key) == padded(b"fresh", store.config)
    store.delete(key)
    assert key not in store
    assert len(store) == len(pairs) - 1


def test_hot_bucket_policy_moves_one_bucket_per_pass():
    store = warmed(make_config(rebalance_policy="hot_bucket"))
    pairs = fill_hot(store)
    assert store.rebalance_check(1_000) is True
    assert store.router_stats().bucket_moves == 1
    assert_oracle(store, pairs)


def test_rebalance_off_never_moves():
    store = warmed(make_config(rebalance_mode="off"))
    pairs = fill_hot(store)
    assert store.rebalance_check(1_000_000) is False
    assert store.routing_epoch == 0
    assert len(store.stores[0]) == len(pairs)
    assert_oracle(store, pairs)


def test_rebalanced_store_survives_crash_recover():
    store = warmed(make_config())
    pairs = fill_hot(store)
    assert store.rebalance_check(1_000) is True
    store.crash()
    store.recover()
    # Nothing was mid-migration, so nothing needed sweeping.
    assert store.router_stats().orphans_swept == 0
    assert_oracle(store, pairs)


# ---------------------------------------------------------------------- #
# mid-migration crash semantics                                           #
# ---------------------------------------------------------------------- #

@pytest.mark.parametrize("crash_point", ["copy", "flip"])
def test_crash_mid_migration_loses_no_keys(crash_point):
    store = warmed(make_config())
    pairs = fill_hot(store)
    store._rebalancer._crash_point = crash_point
    with pytest.raises(SimulatedRebalanceCrash):
        store.rebalance_check(1_000)
    store._rebalancer._crash_point = None
    if crash_point == "copy":
        # Crash before the first flip: the donor stays authoritative.
        assert store.routing_epoch == 0
    else:
        assert store.routing_epoch == 1
    store.crash()
    store.recover()
    # The losing copies (recipient's for "copy", donor's for "flip")
    # are orphans the recovery sweep reconciles; the committed K/V
    # data itself survives byte-for-byte.
    assert store.router_stats().orphans_swept > 0
    assert_oracle(store, pairs)
    # The store stays fully operational: a later pass completes.  (The
    # recovered layout can sit just under the watermark, so drive the
    # pass directly rather than through the trigger.)
    with store._epoch.write_locked(), store._quiesced():
        assert store._rebalancer._rebalance_quiesced() > 0
    assert_oracle(store, pairs)


def test_randomized_stream_with_rebalances_matches_oracle():
    store = warmed(make_config(rebalance_check_interval=8))
    rng = np.random.default_rng(77)
    oracle: dict[bytes, bytes] = {}
    hot = [key for key, _ in hot_pairs(store.config, 80)]
    serial = 0
    for round_id in range(30):
        batch = []
        for _ in range(8):
            if oracle and rng.random() < 0.25:
                victim = sorted(oracle)[int(rng.integers(len(oracle)))]
                store.delete(victim)
                del oracle[victim]
                continue
            if rng.random() < 0.75:
                key = hot[serial % len(hot)]
            else:
                key = b"c%06d" % serial
            serial += 1
            value = b"r%03d:%s" % (round_id, key)
            batch.append((key, value))
        seen = set()
        deduped = []
        for key, value in batch:
            if key in seen:
                continue  # keep the test's oracle trivially last-write
            seen.add(key)
            deduped.append((key, value))
        if deduped:
            store.put_many(deduped)
            oracle.update(deduped)
    store.crash()
    store.recover()
    assert len(store) == len(oracle)
    for key, value in oracle.items():
        assert store.get(key) == padded(value, store.config)
    assert store.routing_epoch > 0  # the stream really did rebalance


# ---------------------------------------------------------------------- #
# ingest integration: stale lanes re-route at dispatch                    #
# ---------------------------------------------------------------------- #

def test_ingest_relanes_after_epoch_change():
    config = make_config(rebalance_mode="off")
    store = warmed(config)
    queue = IngestQueue(store, max_batch=64, autostart=False)
    pairs = hot_pairs(config, 12)
    futures = [queue.put(key, value) for key, value in pairs]
    # A "migration" slides in while the ops sit in their shard-0 lane:
    # move every bucket the pending keys hash to over to shard 3.  (No
    # committed keys live in those buckets, so the bare table edit is a
    # complete migration.)
    with store._epoch.write_locked():
        for key, _ in pairs:
            normalized = KeyIndex.normalize_key(key, config.key_bytes)
            bucket = store._router.bucket_of_hash(
                stable_hash64(normalized, seed=ROUTER_SEED)
            )
            store._router.move(bucket, 3)
    assert store.routing_epoch > 0
    queue.flush()
    for future, (key, value) in zip(futures, pairs):
        report = future.result(timeout=5)
        assert report.op == "put"
        assert store.shard_of_key(key) == 3
        assert key in store.stores[3]
        assert store.get(key) == padded(value, config)
    queue.close()


# ---------------------------------------------------------------------- #
# process executor                                                        #
# ---------------------------------------------------------------------- #

def test_process_rebalance_worker_kill_and_respawn_agreement():
    store = warmed(make_config(), executor="process")
    try:
        pairs = fill_hot(store)
        # Kill a recipient worker at its next flush: the migration's
        # copy batch dies mid-commit (one row written, none flagged),
        # the client respawns the worker over the surviving shared
        # zone, and the migration retries to completion.  Shard 1 is
        # the least-loaded shard, so it receives the first bucket.
        store.stores[1].sabotage_next_flush(1)
        assert store.rebalance_check(1_000) is True
        stats = store.router_stats()
        assert stats.bucket_moves > 0
        assert stats.migration_batches_retried >= 1
        assert_oracle(store, pairs)
        # crash()/recover() and respawned workers agree on ownership:
        # the routing table lives in shared memory, so a full
        # power-fail cycle recovers against the *migrated* layout.
        store.crash()
        store.recover()
        assert store.router_stats().orphans_swept == 0
        assert_oracle(store, pairs)
    finally:
        store.close()

"""Tests for the restart-level training parallelism (Fig. 11 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml._parallel import LloydRun, assign_dense, run_restarts, single_run


@pytest.fixture
def X(rng) -> np.ndarray:
    centers = np.array([[0.0, 0.0], [8.0, 8.0]])
    return np.concatenate([c + rng.normal(0, 0.3, (40, 2)) for c in centers])


class TestSingleRun:
    def test_returns_converged_run(self, X):
        run = single_run(X, 2, max_iter=50, scaled_tol=1e-8, seed=3)
        assert isinstance(run, LloydRun)
        assert run.centers.shape == (2, 2)
        assert run.n_iter <= 50
        assert run.history[-1] == pytest.approx(run.sse)

    def test_deterministic_per_seed(self, X):
        a = single_run(X, 2, 50, 1e-8, seed=3)
        b = single_run(X, 2, 50, 1e-8, seed=3)
        assert np.array_equal(a.centers, b.centers)
        assert a.sse == b.sse

    def test_history_is_monotone(self, X):
        run = single_run(X, 2, 50, 0.0, seed=3)
        history = np.asarray(run.history)
        assert np.all(np.diff(history) <= 1e-9 * max(1.0, history[0]))


class TestRunRestarts:
    def test_serial_returns_one_run_per_seed(self, X):
        runs = run_restarts(X, 2, 20, 1e-8, [1, 2, 3], n_jobs=1)
        assert len(runs) == 3

    def test_parallel_equals_serial(self, X):
        seeds = [10, 11, 12, 13]
        serial = run_restarts(X, 2, 20, 1e-8, seeds, n_jobs=1)
        parallel = run_restarts(X, 2, 20, 1e-8, seeds, n_jobs=2)
        for a, b in zip(serial, parallel):
            assert a.sse == pytest.approx(b.sse)
            assert np.allclose(a.centers, b.centers)

    def test_single_seed_skips_pool(self, X):
        runs = run_restarts(X, 2, 20, 1e-8, [5], n_jobs=4)
        assert len(runs) == 1


class TestAssignDense:
    def test_sse_matches_manual(self, X):
        centers = np.array([[0.0, 0.0], [8.0, 8.0]])
        labels, sums, counts, sse = assign_dense(X, centers)
        d2 = ((X[:, None, :] - centers[None]) ** 2).sum(axis=2)
        assert sse == pytest.approx(d2.min(axis=1).sum())
        assert counts.sum() == X.shape[0]
        # Per-cluster sums reconstruct the member means.
        for c in range(2):
            members = X[labels == c]
            if len(members):
                assert np.allclose(sums[c] / counts[c], members.mean(axis=0))

"""Unit + property tests for the from-scratch k-means."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.ml import KMeans, MiniBatchKMeans, kmeans_plus_plus


def blobs(rng: np.random.Generator, n_per: int = 50, spread: float = 0.05):
    """Three well-separated 2-D blobs."""
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [-5.0, 5.0]])
    points = np.concatenate(
        [c + rng.normal(0, spread, (n_per, 2)) for c in centers]
    )
    return points, centers


class TestKMeansFit:
    def test_recovers_separated_blobs(self, rng):
        X, true_centers = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        found = model.cluster_centers_[np.argsort(model.cluster_centers_[:, 0])]
        expected = true_centers[np.argsort(true_centers[:, 0])]
        assert np.allclose(found, expected, atol=0.2)

    def test_labels_in_range(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        assert model.labels_.min() >= 0
        assert model.labels_.max() < 3
        assert model.labels_.shape == (X.shape[0],)

    def test_inertia_decreases_monotonically(self, rng):
        X = rng.normal(0, 1, (300, 8))
        model = KMeans(5, n_init=1, seed=0).fit(X)
        history = np.asarray(model.inertia_history_)
        assert np.all(np.diff(history) <= 1e-9 * max(1.0, history[0]))

    def test_more_clusters_never_increase_best_inertia(self, rng):
        X = rng.normal(0, 1, (200, 4))
        inertias = [
            KMeans(k, n_init=3, seed=0).fit(X).inertia_ for k in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_k1_centroid_is_mean(self, rng):
        X = rng.normal(3, 1, (100, 5))
        model = KMeans(1, seed=0).fit(X)
        assert np.allclose(model.cluster_centers_[0], X.mean(axis=0))

    def test_centroids_are_member_means(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        for c in range(3):
            members = X[model.labels_ == c]
            assert np.allclose(model.cluster_centers_[c], members.mean(axis=0),
                               atol=1e-8)

    def test_duplicate_points_handled(self):
        X = np.ones((20, 3))
        model = KMeans(3, seed=0).fit(X)
        assert model.inertia_ == pytest.approx(0.0)

    def test_rejects_more_clusters_than_points(self, rng):
        with pytest.raises(ValueError, match="n_samples"):
            KMeans(10).fit(rng.normal(0, 1, (5, 2)))

    def test_rejects_1d_input(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            KMeans(2).fit(rng.normal(0, 1, 10))

    def test_deterministic_under_seed(self, rng):
        X = rng.normal(0, 1, (100, 6))
        a = KMeans(4, seed=42).fit(X)
        b = KMeans(4, seed=42).fit(X)
        assert np.array_equal(a.labels_, b.labels_)
        assert a.inertia_ == b.inertia_

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(2, n_init=0)
        with pytest.raises(ValueError):
            KMeans(2, max_iter=0)


class TestKMeansPredict:
    def test_predict_matches_training_labels(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        assert np.array_equal(model.predict(X), model.labels_)

    def test_predict_one_matches_predict(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        for row in X[:10]:
            assert model.predict_one(row) == model.predict(row[None, :])[0]

    def test_unfitted_raises(self):
        model = KMeans(2)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 2)))
        with pytest.raises(NotFittedError):
            model.predict_one(np.zeros(2))

    def test_centroid_order_by_distance(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        order = model.centroid_order_by_distance(X[0])
        d = np.linalg.norm(model.cluster_centers_ - X[0], axis=1)
        assert np.array_equal(order, np.argsort(d, kind="stable"))

    def test_centroid_order_many_matches_per_row(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        orders = model.centroid_order_by_distance_many(X[:20])
        for i in range(20):
            assert np.array_equal(
                orders[i], model.centroid_order_by_distance(X[i])
            )

    def test_centroid_distances_match_predict(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        distances = model.centroid_distances(X[:20])
        assert distances.shape == (20, 3)
        assert np.array_equal(
            np.argmin(distances, axis=1), model.predict(X[:20])
        )

    def test_score_is_negative_sse(self, rng):
        X, _ = blobs(rng)
        model = KMeans(3, seed=0).fit(X)
        assert model.score(X) == pytest.approx(-model.inertia_)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_property_assignment_optimality(self, k):
        """Every point's assigned centroid is its nearest centroid."""
        rng = np.random.default_rng(k)
        X = rng.normal(0, 1, (60, 3))
        model = KMeans(k, n_init=1, seed=0).fit(X)
        d = ((X[:, None, :] - model.cluster_centers_[None]) ** 2).sum(axis=2)
        assert np.array_equal(model.labels_, np.argmin(d, axis=1))


class TestKMeansPlusPlus:
    def test_returns_requested_count(self, rng):
        X = rng.normal(0, 1, (50, 4))
        centers = kmeans_plus_plus(X, 7, rng)
        assert centers.shape == (7, 4)

    def test_centers_are_data_points(self, rng):
        X = rng.normal(0, 1, (50, 4))
        centers = kmeans_plus_plus(X, 5, rng)
        for center in centers:
            assert np.any(np.all(np.isclose(X, center), axis=1))

    def test_degenerate_identical_points(self, rng):
        X = np.zeros((10, 3))
        centers = kmeans_plus_plus(X, 3, rng)
        assert centers.shape == (3, 3)


class TestParallelRestarts:
    def test_parallel_matches_serial(self, rng):
        X = rng.normal(0, 1, (200, 6))
        serial = KMeans(4, n_init=3, seed=1, n_jobs=1).fit(X)
        parallel = KMeans(4, n_init=3, seed=1, n_jobs=2).fit(X)
        assert np.array_equal(serial.labels_, parallel.labels_)
        assert serial.inertia_ == pytest.approx(parallel.inertia_)

    def test_rejects_bad_n_jobs(self, rng):
        from repro.ml._parallel import run_restarts

        with pytest.raises(ValueError):
            run_restarts(np.zeros((4, 2)), 2, 5, 0.0, [1], n_jobs=0)


class TestMiniBatch:
    def test_converges_on_blobs(self, rng):
        X, true_centers = blobs(rng, n_per=100)
        model = MiniBatchKMeans(3, batch_size=64, max_iter=80, seed=0).fit(X)
        found = model.cluster_centers_[np.argsort(model.cluster_centers_[:, 0])]
        expected = true_centers[np.argsort(true_centers[:, 0])]
        assert np.allclose(found, expected, atol=0.5)

    def test_partial_fit_updates(self, rng):
        X, _ = blobs(rng)
        model = MiniBatchKMeans(3, seed=0)
        model.partial_fit(X[:30])
        before = model.cluster_centers_.copy()
        model.partial_fit(X[30:60])
        assert not np.allclose(before, model.cluster_centers_)

    def test_first_batch_too_small(self):
        model = MiniBatchKMeans(5, seed=0)
        with pytest.raises(ValueError, match="first batch"):
            model.partial_fit(np.zeros((3, 2)))

    def test_predict_unfitted(self):
        with pytest.raises(NotFittedError):
            MiniBatchKMeans(2).predict(np.zeros((1, 2)))

"""Unit + property tests for PCA (exact and randomized)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.ml import PCA


def low_rank_data(rng, n=200, m=30, rank=3, noise=0.01):
    """Data with ``rank`` dominant directions plus tiny isotropic noise."""
    basis = rng.normal(0, 1, (rank, m))
    coeffs = rng.normal(0, 1, (n, rank)) * np.array([10.0, 5.0, 2.0])[:rank]
    return coeffs @ basis + rng.normal(0, noise, (n, m))


class TestExactPCA:
    def test_components_are_orthonormal(self, rng):
        X = low_rank_data(rng)
        pca = PCA(n_components=5).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(5), atol=1e-8)

    def test_variance_ratios_sorted_and_bounded(self, rng):
        X = low_rank_data(rng)
        pca = PCA().fit(X)
        ratio = pca.explained_variance_ratio_
        assert np.all(np.diff(ratio) <= 1e-12)
        assert 0.99 <= ratio.sum() <= 1.0 + 1e-9

    def test_low_rank_data_explained_by_rank_components(self, rng):
        X = low_rank_data(rng, rank=3)
        pca = PCA(n_components=3).fit(X)
        assert pca.explained_variance_ratio_.sum() > 0.99

    def test_full_roundtrip(self, rng):
        X = rng.normal(0, 1, (50, 10))
        pca = PCA().fit(X)
        Z = pca.transform(X)
        assert np.allclose(pca.inverse_transform(Z), X, atol=1e-8)

    def test_truncated_reconstruction_error_bounded(self, rng):
        X = low_rank_data(rng, rank=3, noise=0.001)
        pca = PCA(n_components=3).fit(X)
        reconstructed = pca.inverse_transform(pca.transform(X))
        rel_err = np.linalg.norm(X - reconstructed) / np.linalg.norm(X)
        assert rel_err < 0.01

    def test_fractional_components_select_by_variance(self, rng):
        X = low_rank_data(rng, rank=3)
        pca = PCA(n_components=0.95).fit(X)
        assert 1 <= pca.n_components_ <= 4
        assert pca.cumulative_variance_ratio()[-1] >= 0.95

    def test_transform_single_row(self, rng):
        X = rng.normal(0, 1, (30, 6))
        pca = PCA(n_components=2).fit(X)
        row = pca.transform(X[0])
        assert row.shape == (1, 2)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            PCA().transform(np.zeros((2, 2)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA(n_components=1.5)
        with pytest.raises(ValueError):
            PCA(solver="magic")
        with pytest.raises(ValueError):
            PCA().fit(np.zeros((1, 4)))

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_property_projection_preserves_variance_order(self, k):
        rng = np.random.default_rng(k)
        X = rng.normal(0, 1, (40, 8)) * np.linspace(5, 0.5, 8)
        pca = PCA(n_components=k).fit(X)
        variances = pca.transform(X).var(axis=0, ddof=1)
        assert np.all(np.diff(variances) <= 1e-8)


class TestRandomizedPCA:
    def test_matches_exact_on_low_rank(self, rng):
        X = low_rank_data(rng, n=300, m=100, rank=3, noise=1e-4)
        exact = PCA(n_components=3, solver="exact").fit(X)
        randomized = PCA(n_components=3, solver="randomized", seed=0).fit(X)
        assert np.allclose(
            randomized.explained_variance_, exact.explained_variance_, rtol=1e-3
        )
        # Components match up to sign.
        for i in range(3):
            dot = abs(np.dot(randomized.components_[i], exact.components_[i]))
            assert dot == pytest.approx(1.0, abs=1e-3)

    def test_fractional_components_rejected(self, rng):
        X = rng.normal(0, 1, (40, 20))
        with pytest.raises(ValueError, match="full spectrum"):
            PCA(n_components=0.9, solver="randomized").fit(X)

    def test_auto_uses_randomized_for_wide_small_rank(self, rng):
        X = rng.normal(0, 1, (100, 600))
        pca = PCA(n_components=4, solver="auto", seed=0)
        assert pca._resolve_solver(100, 600, 4) == "randomized"

    def test_auto_uses_exact_for_full_rank(self, rng):
        pca = PCA(solver="auto")
        assert pca._resolve_solver(100, 600, 100) == "exact"

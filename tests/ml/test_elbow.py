"""Tests for the elbow method (SSE curve + knee detection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import choose_k, find_knee, sse_curve


class TestFindKnee:
    def test_sharp_elbow(self):
        x = np.arange(1, 9, dtype=float)
        y = np.array([100.0, 40.0, 12.0, 10.0, 9.0, 8.5, 8.2, 8.0])
        assert find_knee(x, y) in (1, 2)  # k=2 or 3

    def test_linear_curve_has_no_strong_knee(self):
        x = np.arange(5, dtype=float)
        y = 10.0 - 2.0 * x
        # On a straight line every point is on the chord; index 0 wins ties.
        assert find_knee(x, y) == 0

    def test_flat_curve(self):
        assert find_knee(np.arange(4.0), np.ones(4)) == 0

    def test_short_input(self):
        assert find_knee(np.array([1.0, 2.0]), np.array([5.0, 1.0])) == 0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            find_knee(np.arange(3.0), np.arange(4.0))


class TestSSECurve:
    def test_monotone_decreasing_on_blobs(self, rng):
        centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=float)
        X = np.concatenate([c + rng.normal(0, 0.3, (40, 2)) for c in centers])
        curve = sse_curve(X, [1, 2, 4, 8], seed=0)
        assert np.all(np.diff(curve) <= 1e-6)

    def test_empty_k_values_rejected(self, rng):
        with pytest.raises(ValueError):
            choose_k(rng.normal(0, 1, (20, 2)), [])


class TestChooseK:
    def test_finds_true_cluster_count(self, rng):
        centers = np.array([[0, 0], [20, 0], [0, 20], [20, 20], [10, 10]],
                           dtype=float)
        X = np.concatenate([c + rng.normal(0, 0.2, (50, 2)) for c in centers])
        result = choose_k(X, range(1, 10), seed=0, n_init=3)
        assert result.best_k in (4, 5, 6)

    def test_result_fields(self, rng):
        X = rng.normal(0, 1, (50, 3))
        result = choose_k(X, [1, 2, 3], seed=0)
        assert result.k_values.tolist() == [1, 2, 3]
        assert result.sse.shape == (3,)
        assert result.best_k in (1, 2, 3)

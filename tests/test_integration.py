"""Cross-module integration scenarios.

These tests exercise whole paths through the system — store + device +
index + model together — and pin down end-to-end properties the unit
tests cannot see: determinism of full runs, conservation of accounting
across layers, and behaviour through crash/retrain cycles mid-stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.bench import run_pnw_stream, run_scheme_stream
from repro.workloads import AmazonAccessWorkload, make_workload
from tests.conftest import clustered_values


class TestEndToEndDeterminism:
    def test_same_seed_same_metrics(self):
        w1 = AmazonAccessWorkload(item_bytes=56, seed=4)
        w2 = AmazonAccessWorkload(item_bytes=56, seed=4)
        old1, new1 = w1.split_old_new(128, 200)
        old2, new2 = w2.split_old_new(128, 200)
        m1, s1 = run_pnw_stream(old1, new1, 4, seed=9)
        m2, s2 = run_pnw_stream(old2, new2, 4, seed=9)
        assert m1.bit_updates == m2.bit_updates
        assert m1.lines_touched == m2.lines_touched
        assert np.array_equal(s1.nvm.snapshot(), s2.nvm.snapshot())

    def test_different_seed_differs(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=4)
        old, new = w.split_old_new(128, 200)
        m1, _ = run_pnw_stream(old, new, 4, seed=1)
        m2, _ = run_pnw_stream(old, new, 4, seed=2)
        # Different k-means seeds -> different clusters -> different wear.
        assert m1.bit_updates != m2.bit_updates


class TestAccountingConservation:
    def test_store_reports_sum_to_device_stats(self, rng):
        config = PNWConfig(num_buckets=64, value_bytes=24, n_clusters=2,
                           seed=0, n_init=1)
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 64, 24))
        store.metrics.keep_reports = True
        for i in range(30):
            store.put(f"k{i}".encode(), clustered_values(rng, 1, 24)[0])
        reported = sum(r.bit_updates for r in store.metrics.reports)
        assert reported == store.nvm.stats.total_bit_updates
        reported_lines = sum(r.lines_touched for r in store.metrics.reports)
        assert reported_lines == store.nvm.stats.total_lines_touched

    def test_live_count_matches_index_and_bitmap(self, warm_store, rng):
        for i in range(20):
            warm_store.put(f"k{i}".encode(), b"v")
        for i in range(0, 20, 2):
            warm_store.delete(f"k{i}".encode())
        assert len(warm_store) == 10
        assert len(warm_store.index) == 10
        bitmap_live = sum(
            warm_store._is_valid(a)
            for a in range(warm_store.config.num_buckets)
        )
        assert bitmap_live == 10

    def test_pool_plus_live_covers_zone(self, warm_store):
        for i in range(15):
            warm_store.put(f"k{i}".encode(), b"v")
        assert (
            warm_store.pool.total_free + len(warm_store)
            == warm_store.config.num_buckets
        )


class TestCrashMidStream:
    def test_crash_recover_then_continue(self, rng):
        config = PNWConfig(num_buckets=128, value_bytes=24, n_clusters=4,
                           seed=0, n_init=1)
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 128, 24))
        for i in range(40):
            store.put(f"k{i}".encode(), bytes([i % 256]) * 24)
        store.crash()
        store.recover()
        # The store remains fully usable: old keys read back, new keys land.
        assert store.get(b"k7") == bytes([7]) * 24
        for i in range(40, 60):
            store.put(f"k{i}".encode(), bytes([i % 256]) * 24)
        assert store.get(b"k55") == bytes([55]) * 24
        assert len(store) == 60

    def test_recovered_store_wear_continues_accumulating(self, rng):
        config = PNWConfig(num_buckets=64, value_bytes=24, n_clusters=2,
                           seed=0, n_init=1)
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 64, 24))
        store.put(b"a", b"1")
        writes_before = store.nvm.stats.total_writes
        store.crash()
        store.recover()
        store.put(b"b", b"2")
        assert store.nvm.stats.total_writes == writes_before + 1


class TestRetrainMidStream:
    def test_stream_with_periodic_retraining_stays_consistent(self, rng):
        config = PNWConfig(
            num_buckets=96, value_bytes=24, n_clusters=3, seed=0, n_init=1,
            load_factor=0.4, retrain_check_interval=8,
        )
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 96, 24))
        live = {}
        for i in range(200):
            key = f"k{i % 50}".encode()
            value = clustered_values(rng, 1, 24)[0].tobytes()
            store.put(key, value)
            live[key] = value
        assert store.metrics.retrains >= 2
        for key, value in live.items():
            assert store.get(key) == value


class TestSchemeStoreAgreement:
    def test_pnw_on_identical_data_is_zero_cost(self):
        """If every new item equals some old item bit-for-bit, probing
        finds a perfect match and the whole stream programs ~no cells."""
        w = AmazonAccessWorkload(item_bytes=56, seed=1, flip_rate=0.0,
                                 n_roles=4)
        old = w.generate(256)
        new = old[np.random.default_rng(0).integers(0, 256, 100)]
        metrics, _ = run_pnw_stream(old, new, 4, seed=0, live_window=1)
        dcw = run_scheme_stream(None, old, new)
        assert metrics.bit_updates < dcw.bit_updates * 0.2

    @pytest.mark.parametrize("dataset", ["amazon", "docwords", "normal"])
    def test_pnw_never_loses_to_inplace_dcw(self, dataset):
        workload = make_workload(dataset, seed=6)
        old, new = workload.split_old_new(256, 400)
        pnw, _ = run_pnw_stream(old, new, 8, seed=6)
        dcw = run_scheme_stream(None, old, new)
        assert pnw.bits_per_512 <= dcw.bits_per_512 * 1.02

"""Tests for the ``python -m repro.bench`` experiment runner."""

from __future__ import annotations

import pytest

from repro.bench.cli import EXPERIMENTS, main


class TestRegistry:
    def test_every_paper_artifact_has_an_entry(self):
        expected = {"table1", "table2", "fig3", "fig4", "fig7", "fig8",
                    "fig9", "fig10", "fig11", "fig12", "fig13"}
        assert expected <= set(EXPERIMENTS)
        assert any(e.startswith("fig6-") for e in EXPERIMENTS)

    def test_fig6_panels_cover_all_datasets(self):
        from repro.bench import FIG6_DATASETS

        for dataset in FIG6_DATASETS:
            assert f"fig6-{dataset}" in EXPERIMENTS


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig13" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_a_cheap_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PNW_RESULTS_DIR", str(tmp_path))
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Example PCM clustering" in out
        assert (tmp_path / "table2.txt").exists()

    def test_runs_multiple(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PNW_RESULTS_DIR", str(tmp_path))
        assert main(["table1", "table2"]) == 0
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table2.txt").exists()

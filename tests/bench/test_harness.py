"""Tests for the experiment harness: metrics, reporting, stream drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    StreamMetrics,
    build_bucket_rows,
    key_for,
    render,
    run_kv_store_stream,
    run_pnw_kv_stream,
    run_pnw_stream,
    run_scheme_stream,
    save,
)
from repro.stores import PathHashKVStore
from repro.workloads import AmazonAccessWorkload
from repro.writeschemes import ConventionalWrite, DataComparisonWrite


class TestStreamMetrics:
    def test_bits_per_512_normalisation(self):
        metrics = StreamMetrics(items=10, item_bits=512, bit_updates=1000,
                                aux_bit_updates=24)
        assert metrics.bits_per_512 == pytest.approx(1024 / 10)

    def test_zero_items_safe(self):
        metrics = StreamMetrics()
        assert metrics.bits_per_512 == 0.0
        assert metrics.lines_per_item == 0.0
        assert metrics.latency_ns_per_item == 0.0

    def test_latency_combines_nvm_and_predict(self):
        metrics = StreamMetrics(items=2, item_bits=64, nvm_latency_ns=1200.0,
                                predict_ns=800.0)
        assert metrics.latency_ns_per_item == pytest.approx(1000.0)


class TestExperimentResult:
    def test_add_row_validates_width(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", columns=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]
        assert result.row_dicts() == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]

    def test_render_contains_everything(self):
        result = ExperimentResult("fig0", "demo", columns=["k", "v"],
                                  params={"n": 5}, notes=["hello"])
        result.add_row(1, 0.5)
        text = render(result)
        assert "fig0" in text and "demo" in text
        assert "n=5" in text and "hello" in text
        assert "0.500" in text

    def test_save_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PNW_RESULTS_DIR", str(tmp_path))
        result = ExperimentResult("fig0", "demo", columns=["k"])
        result.add_row(1)
        path = save(result)
        assert path.read_text().startswith("== fig0")


class TestKeys:
    def test_key_for_is_fixed_width(self):
        assert len(key_for(0)) == 8
        assert len(key_for(2**32)) == 8
        assert key_for(1) != key_for(2)

    def test_build_bucket_rows_zero_key_default(self, rng):
        values = rng.integers(0, 256, (3, 8), dtype=np.uint8)
        rows = build_bucket_rows(values)
        assert rows.shape == (3, 16)
        assert rows[:, :8].sum() == 0
        assert np.array_equal(rows[:, 8:], values)

    def test_build_bucket_rows_with_keys(self, rng):
        values = rng.integers(0, 256, (2, 8), dtype=np.uint8)
        rows = build_bucket_rows(values, [key_for(7), key_for(9)])
        assert rows[0, :8].tobytes() == key_for(7)

    def test_build_bucket_rows_key_count_mismatch(self, rng):
        values = rng.integers(0, 256, (2, 8), dtype=np.uint8)
        with pytest.raises(ValueError):
            build_bucket_rows(values, [key_for(1)])


class TestSchemeStream:
    def test_conventional_writes_every_bit(self, rng):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(32, 64)
        metrics = run_scheme_stream(ConventionalWrite(), old, new)
        assert metrics.bits_per_512 == pytest.approx(512.0)
        assert metrics.items == 64

    def test_dcw_less_than_conventional(self, rng):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(32, 64)
        dcw = run_scheme_stream(DataComparisonWrite(), old, new)
        assert dcw.bits_per_512 < 512.0

    def test_none_scheme_is_native_dcw(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(32, 64)
        native = run_scheme_stream(None, old, new)
        explicit = run_scheme_stream(DataComparisonWrite(), old, new)
        assert native.bit_updates == explicit.bit_updates


class TestPNWStream:
    def test_stream_runs_and_improves_on_random_placement(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(128, 256)
        pnw, store = run_pnw_stream(old, new, n_clusters=4, seed=1)
        baseline = run_scheme_stream(None, old, new)
        assert pnw.items == 256
        assert pnw.bits_per_512 < baseline.bits_per_512
        assert store.metrics.puts == 256

    def test_live_window_controls_occupancy(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(64, 100)
        _, store = run_pnw_stream(old, new, 2, seed=0, live_window=10)
        assert len(store) == 10

    def test_batched_stream_covers_every_item(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(64, 100)
        metrics, store = run_pnw_stream(
            old, new, 2, seed=0, live_window=10, batch_size=16
        )
        assert metrics.items == 100
        assert store.metrics.puts == 100
        assert len(store) == 10  # eviction still enforces the window

    def test_batch_size_one_matches_classic_schedule(self):
        """batch_size=1 must reproduce the original one-PUT-one-eviction
        stream bit for bit (the figure benchmarks rely on it)."""
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(64, 100)
        classic, store_a = run_pnw_stream(old, new, 2, seed=0, live_window=10)
        explicit, store_b = run_pnw_stream(
            old, new, 2, seed=0, live_window=10, batch_size=1
        )
        assert classic.bit_updates == explicit.bit_updates
        assert classic.lines_touched == explicit.lines_touched
        assert np.array_equal(store_a.nvm.snapshot(), store_b.nvm.snapshot())

    def test_probe_zero_weaker_than_probing(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        old, new = w.split_old_new(128, 256)
        probing, _ = run_pnw_stream(old, new, 4, seed=1)
        popping, _ = run_pnw_stream(old, new, 4, seed=1, probe_limit=0)
        assert probing.bit_updates <= popping.bit_updates


class TestKVStreams:
    def test_baseline_kv_stream(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        store = PathHashKVStore(8, 56, capacity=300)
        lines = run_kv_store_stream(store, w.generate(200))
        assert lines > 0
        assert store.mutations == 300  # 200 puts + 100 deletes

    def test_pnw_kv_stream_counts_flags_region(self):
        w = AmazonAccessWorkload(item_bytes=56, seed=0)
        lines = run_pnw_kv_stream(w.generate(200), n_clusters=4, seed=0)
        assert 0 < lines < 5

"""Smoke + shape tests for the per-figure experiment functions.

Tiny parameters keep these fast; the full-size runs live in benchmarks/.
Shape assertions encode the paper's qualitative claims so regressions in
the reproduction are caught by ``pytest tests/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    fig3_pca_variance,
    fig4_elbow,
    fig6_bit_updates,
    fig8_latency_vs_k,
    fig9_kv_stores,
    fig12_address_wear,
    table1_memory_technologies,
    table2_clustering_example,
)


class TestTables:
    def test_table1_rows(self):
        result = table1_memory_technologies()
        assert len(result.rows) == 6
        assert result.column("category")[2] == "PCM"

    def test_table2_steered_writes_cost_one_flip(self):
        """The paper's §IV walkthrough: d1 and d2 each cost exactly 1 bit."""
        result = table2_clustering_example()
        assert result.column("bit_flips") == [1, 1]

    def test_table2_items_in_different_clusters(self):
        result = table2_clustering_example()
        clusters = result.column("predicted_cluster")
        assert clusters[0] != clusters[1]


class TestModelFigures:
    def test_fig3_variance_curve_monotone(self):
        result = fig3_pca_variance(n_samples=300)
        curve = result.column("cumulative_variance_ratio")
        assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
        assert curve[-1] == pytest.approx(1.0, abs=1e-6)

    def test_fig3_structured_images_compress_well(self):
        result = fig3_pca_variance(n_samples=300)
        # Template-based images: a small fraction of components covers 80%.
        assert result.params["components_for_80pct"] < 100

    def test_fig4_sse_decreases(self):
        result = fig4_elbow(n_samples=300)
        sse = result.column("sse")
        assert all(a >= b - 1e-6 for a, b in zip(sse, sse[1:]))
        assert 1 <= result.params["chosen_k"] <= 10


class TestFig6Shape:
    @pytest.fixture(scope="class")
    def amazon(self):
        return fig6_bit_updates("amazon", k_values=(1, 4, 12),
                                n_old=256, n_new=512)

    def test_conventional_is_512(self, amazon):
        assert amazon.column("Conventional")[0] == pytest.approx(512.0)

    def test_pnw_pop_k1_equals_dcw(self, amazon):
        """Paper §VI-D: at k=1 the pop variant does what DCW does."""
        row = amazon.row_dicts()[0]
        assert row["PNW-pop"] == pytest.approx(row["DCW"], rel=0.15)

    def test_pnw_improves_with_k(self, amazon):
        pop = amazon.column("PNW-pop")
        assert pop[-1] < pop[0]

    def test_pnw_beats_baselines_at_high_k(self, amazon):
        row = amazon.row_dicts()[-1]
        for baseline in ("DCW", "FNW", "MinShift", "CAP16"):
            assert row["PNW"] < row[baseline]
            assert row["PNW-pop"] < row[baseline]

    def test_uniform_pop_variant_does_not_beat_fnw(self):
        """Paper Fig. 6f: on uniform data PNW lags FNW and CAP16."""
        result = fig6_bit_updates("uniform", k_values=(8,),
                                  n_old=512, n_new=1024)
        row = result.row_dicts()[0]
        assert row["PNW-pop"] > row["FNW"]
        assert row["PNW-pop"] > row["CAP16"]


class TestFig8Fig9:
    def test_fig8_latency_not_increasing(self, monkeypatch):
        monkeypatch.setenv("PNW_BENCH_SCALE", "0.25")
        result = fig8_latency_vs_k(k_values=(1, 16))
        latency = result.column("latency_us_per_item")
        # At reduced scale the trend flattens; it must never reverse by
        # more than noise.  The strict decrease is asserted at full scale
        # in benchmarks/bench_fig8_latency_vs_k.py.
        assert latency[-1] <= latency[0] * 1.05

    def test_fig9_pnw_writes_fewest_lines(self, monkeypatch):
        monkeypatch.setenv("PNW_BENCH_SCALE", "0.2")
        result = fig9_kv_stores(datasets=("docwords",))
        row = result.row_dicts()[0]
        assert row["PNW"] < row["PathHash"] < row["NoveLSM"]
        assert row["PNW"] < row["FPTree"]


class TestFig12:
    def test_wear_cdfs_valid(self, monkeypatch):
        monkeypatch.setenv("PNW_BENCH_SCALE", "0.1")
        result = fig12_address_wear(k_values=(3,))
        row = result.row_dicts()[0]
        assert 0.0 <= row["P(X<=3)"] <= row["P(X<=15)"] <= 1.0

"""Unit and property tests for the packed-bit primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._bitops import (
    POPCOUNT_TABLE,
    array_to_bytes,
    buffer_to_int,
    bytes_to_array,
    hamming_cross,
    hamming_distance,
    hamming_rows,
    hamming_to_rows,
    int_to_buffer,
    pack_bits,
    popcount,
    popcount_rows,
    rotate_bits,
    unpack_bits,
)

byte_arrays = st.binary(min_size=1, max_size=64).map(
    lambda b: np.frombuffer(b, dtype=np.uint8).copy()
)


class TestPopcount:
    def test_table_matches_int_bit_count(self):
        for value in range(256):
            assert POPCOUNT_TABLE[value] == value.bit_count()

    def test_zeros(self):
        assert popcount(np.zeros(16, dtype=np.uint8)) == 0

    def test_all_ones(self):
        assert popcount(np.full(16, 0xFF, dtype=np.uint8)) == 128

    def test_2d_input(self):
        buf = np.array([[0x0F, 0xF0], [0x01, 0x80]], dtype=np.uint8)
        assert popcount(buf) == 4 + 4 + 1 + 1

    @given(byte_arrays)
    def test_matches_python_int(self, buf):
        expected = int.from_bytes(buf.tobytes(), "big").bit_count()
        assert popcount(buf) == expected

    def test_popcount_rows(self):
        buf = np.array([[0xFF, 0x00], [0x01, 0x01]], dtype=np.uint8)
        assert popcount_rows(buf).tolist() == [8, 2]

    def test_popcount_rows_rejects_1d(self):
        with pytest.raises(ValueError):
            popcount_rows(np.zeros(4, dtype=np.uint8))


class TestHamming:
    def test_identical_is_zero(self, rng):
        buf = rng.integers(0, 256, 32, dtype=np.uint8)
        assert hamming_distance(buf, buf) == 0

    def test_complement_is_all_bits(self, rng):
        buf = rng.integers(0, 256, 32, dtype=np.uint8)
        assert hamming_distance(buf, np.bitwise_not(buf)) == 256

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            hamming_distance(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))

    @given(byte_arrays, byte_arrays)
    def test_symmetry(self, a, b):
        n = min(a.size, b.size)
        a, b = a[:n], b[:n]
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(byte_arrays)
    def test_triangle_inequality(self, a):
        b = np.roll(a, 1)
        c = np.bitwise_not(a)
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )

    def test_hamming_rows_matches_scalar(self, rng):
        a = rng.integers(0, 256, (6, 16), dtype=np.uint8)
        b = rng.integers(0, 256, (6, 16), dtype=np.uint8)
        rows = hamming_rows(a, b)
        assert rows.tolist() == [
            hamming_distance(a[i], b[i]) for i in range(6)
        ]

    def test_hamming_rows_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            hamming_rows(
                np.zeros((2, 4), dtype=np.uint8), np.zeros((3, 4), dtype=np.uint8)
            )
        with pytest.raises(ValueError, match="2-D"):
            hamming_rows(np.zeros(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8))


class TestProbeKernels:
    """The probe engine's scoring kernels must reproduce the table-based
    popcounts exactly — both the 64-bit-word fast path (widths divisible
    by 8) and the byte fallback, including on row-offset matrix views."""

    @pytest.mark.parametrize("width", [8, 16, 12, 5, 64])
    def test_hamming_to_rows_matches_table(self, rng, width):
        rows = rng.integers(0, 256, (17, width), dtype=np.uint8)
        payload = rng.integers(0, 256, width, dtype=np.uint8)
        expected = popcount_rows(np.bitwise_xor(rows, payload))
        assert hamming_to_rows(rows, payload).tolist() == expected.tolist()

    def test_hamming_to_rows_on_window_view(self, rng):
        backing = rng.integers(0, 256, (40, 16), dtype=np.uint8)
        payload = rng.integers(0, 256, 16, dtype=np.uint8)
        window = backing[7:29]  # odd row offset of a C-contiguous base
        expected = popcount_rows(np.bitwise_xor(window, payload))
        assert hamming_to_rows(window, payload).tolist() == expected.tolist()

    def test_hamming_to_rows_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            hamming_to_rows(np.zeros(8, dtype=np.uint8), np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError, match="row width"):
            hamming_to_rows(
                np.zeros((2, 8), dtype=np.uint8), np.zeros(4, dtype=np.uint8)
            )

    @pytest.mark.parametrize("width", [8, 16, 11])
    def test_hamming_cross_matches_pairwise(self, rng, width):
        rows = rng.integers(0, 256, (9, width), dtype=np.uint8)
        payloads = rng.integers(0, 256, (5, width), dtype=np.uint8)
        got = hamming_cross(rows, payloads)
        assert got.shape == (5, 9)
        for j in range(5):
            for i in range(9):
                assert got[j, i] == hamming_distance(payloads[j], rows[i])

    def test_hamming_cross_rejects_mismatch(self):
        with pytest.raises(ValueError, match="width mismatch"):
            hamming_cross(
                np.zeros((2, 8), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )


class TestPackUnpack:
    @given(byte_arrays)
    def test_roundtrip(self, buf):
        assert np.array_equal(pack_bits(unpack_bits(buf)), buf)

    def test_pack_rejects_non_multiple_of_8(self):
        with pytest.raises(ValueError, match="multiple of 8"):
            pack_bits(np.ones(7, dtype=np.uint8))

    def test_unpack_bit_order(self):
        # numpy packbits: first bit is the MSB of byte 0.
        bits = unpack_bits(np.array([0x80], dtype=np.uint8))
        assert bits.tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_pack_2d(self):
        bits = np.zeros((2, 8), dtype=np.uint8)
        bits[1, 7] = 1
        packed = pack_bits(bits)
        assert packed.shape == (2, 1)
        assert packed[1, 0] == 1


class TestRotate:
    @given(byte_arrays, st.integers(min_value=-512, max_value=512))
    def test_roundtrip(self, buf, shift):
        nbits = buf.size * 8
        rotated = rotate_bits(buf, shift)
        back = rotate_bits(rotated, -shift % nbits)
        assert np.array_equal(back, buf)

    @given(byte_arrays)
    def test_full_rotation_is_identity(self, buf):
        assert np.array_equal(rotate_bits(buf, buf.size * 8), buf)

    def test_rotate_preserves_popcount(self, rng):
        buf = rng.integers(0, 256, 8, dtype=np.uint8)
        for shift in (1, 7, 13, 63):
            assert popcount(rotate_bits(buf, shift)) == popcount(buf)

    def test_known_rotation(self):
        # 0b10000000_00000000 rotated left by 1 -> 0b00000000_00000001
        buf = np.array([0x80, 0x00], dtype=np.uint8)
        assert rotate_bits(buf, 1).tolist() == [0x00, 0x01]

    def test_empty_buffer(self):
        out = rotate_bits(np.array([], dtype=np.uint8), 3)
        assert out.size == 0


class TestConversions:
    def test_bytes_roundtrip(self):
        data = b"hello world"
        assert array_to_bytes(bytes_to_array(data)) == data

    def test_padding(self):
        arr = bytes_to_array(b"ab", size=4)
        assert arr.tolist() == [97, 98, 0, 0]

    def test_oversize_raises(self):
        with pytest.raises(ValueError, match="exceeds bucket size"):
            bytes_to_array(b"abcde", size=4)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_int_roundtrip(self, value):
        assert buffer_to_int(int_to_buffer(value, 8)) == value

    def test_negative_int_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            int_to_buffer(-1, 8)

    def test_int_too_large_raises(self):
        with pytest.raises(OverflowError):
            int_to_buffer(2**64, 8)

"""Tests for the Fig. 9 baseline K/V stores (FPTree, NoveLSM, PathHash)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.stores import FPTreeStore, NoveLSMStore, PathHashKVStore

STORE_FACTORIES = {
    "fptree": lambda: FPTreeStore(8, 24, capacity=512, leaf_fanout=8),
    "novelsm": lambda: NoveLSMStore(8, 24, capacity=512, memtable_entries=16),
    "pathhash": lambda: PathHashKVStore(8, 24, capacity=512),
}


@pytest.fixture(params=sorted(STORE_FACTORIES))
def store(request):
    return STORE_FACTORIES[request.param]()


def value_of(i: int) -> bytes:
    return f"value-{i:06d}".encode().ljust(24, b".")


class TestStoreContract:
    def test_put_get(self, store):
        store.put(b"k1", b"hello")
        assert store.get(b"k1").startswith(b"hello")

    def test_update(self, store):
        store.put(b"k1", b"one")
        store.put(b"k1", b"two")
        assert store.get(b"k1").startswith(b"two")

    def test_delete(self, store):
        store.put(b"k1", b"x")
        store.delete(b"k1")
        with pytest.raises(KeyNotFoundError):
            store.get(b"k1")

    def test_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get(b"ghost")
        with pytest.raises(KeyNotFoundError):
            store.delete(b"ghost")

    def test_many_sequential(self, store):
        for i in range(300):
            store.put(f"k{i:05d}".encode(), value_of(i))
        for i in range(300):
            assert store.get(f"k{i:05d}".encode()) == value_of(i)

    def test_interleaved_inserts_deletes(self, store):
        for i in range(200):
            store.put(f"k{i:05d}".encode(), value_of(i))
            if i % 3 == 0 and i > 0:
                store.delete(f"k{i - 1:05d}".encode())
        assert store.get(b"k00000") == value_of(0)
        with pytest.raises(KeyNotFoundError):
            store.get(b"k00002")

    def test_lines_per_request_positive(self, store):
        store.put(b"k", b"v")
        assert store.lines_per_request > 0

    def test_oversized_inputs_rejected(self, store):
        with pytest.raises(ValueError):
            store.put(b"123456789", b"v")
        with pytest.raises(ValueError):
            store.put(b"k", b"x" * 25)

@pytest.mark.parametrize("factory_name", sorted(STORE_FACTORIES))
@given(ops=st.lists(
    st.tuples(st.sampled_from([b"a", b"b", b"c", b"d"]),
              st.sampled_from(["put", "delete"]),
              st.binary(min_size=0, max_size=8)),
    max_size=50,
))
@settings(max_examples=20, deadline=None)
def test_model_based_vs_dict(factory_name, ops):
    """Random op sequences behave exactly like a dict (fresh store per
    generated example, hence no fixture)."""
    store = STORE_FACTORIES[factory_name]()
    reference: dict[bytes, bytes] = {}
    for key, op, value in ops:
        padded_key = key.ljust(8, b"\x00")
        if op == "put":
            store.put(key, value)
            reference[padded_key] = value.ljust(24, b"\x00")
        else:
            if padded_key in reference:
                store.delete(key)
                del reference[padded_key]
            else:
                with pytest.raises(KeyNotFoundError):
                    store.delete(key)
    for padded_key, expected in reference.items():
        assert store.get(padded_key) == expected


class TestFPTreeSpecifics:
    def test_splits_keep_order(self):
        store = FPTreeStore(8, 24, capacity=256, leaf_fanout=4)
        keys = [f"{i:05d}".encode() for i in range(64)]
        rng = np.random.default_rng(0)
        for key in rng.permutation(keys):
            store.put(bytes(key), b"v")
        # Leaves partition the key space in sorted order.
        all_keys = [k for leaf in store._leaves for k in leaf.keys]
        lows = [leaf.keys[0] for leaf in store._leaves if leaf.keys]
        assert lows == sorted(lows)
        assert len(all_keys) == 64

    def test_split_writes_cost_nvm_lines(self):
        store = FPTreeStore(8, 24, capacity=64, leaf_fanout=4)
        for i in range(4):
            store.put(f"k{i}".encode(), b"v")
        before = store.total_nvm_lines
        store.put(b"k9", b"v")  # forces a split
        assert store.total_nvm_lines - before > 2

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            FPTreeStore(8, 24, capacity=16, leaf_fanout=2)


class TestNoveLSMSpecifics:
    def test_flush_and_compaction_preserve_data(self):
        store = NoveLSMStore(8, 24, capacity=512, memtable_entries=8,
                             l0_runs_limit=2)
        for i in range(100):
            store.put(f"key-{i:04d}".encode(), value_of(i))
        assert store._l1 is not None  # compaction happened
        for i in range(100):
            assert store.get(f"key-{i:04d}".encode()) == value_of(i)

    def test_tombstones_survive_compaction(self):
        store = NoveLSMStore(8, 24, capacity=512, memtable_entries=4,
                             l0_runs_limit=2)
        store.put(b"dead", b"x")
        store.delete(b"dead")
        for i in range(40):  # force flushes + compactions
            store.put(f"k{i}".encode(), b"v")
        with pytest.raises(KeyNotFoundError):
            store.get(b"dead")

    def test_newest_value_wins_across_runs(self):
        store = NoveLSMStore(8, 24, capacity=512, memtable_entries=4)
        for round_no in range(3):
            store.put(b"hot", f"round-{round_no}".encode())
            for i in range(4):  # force a flush between rounds
                store.put(f"pad-{round_no}-{i}".encode(), b"v")
        assert store.get(b"hot").startswith(b"round-2")


class TestPathHashStoreSpecifics:
    def test_delete_is_one_bit(self):
        store = PathHashKVStore(8, 24, capacity=64)
        store.put(b"k", b"v")
        before = store.nvm.stats.total_bit_updates
        store.delete(b"k")
        assert store.nvm.stats.total_bit_updates - before == 1

    def test_no_rehashing_on_collisions(self):
        store = PathHashKVStore(8, 24, capacity=64)
        writes_per_put = []
        for i in range(50):
            before = store.nvm.stats.total_writes
            store.put(f"k{i}".encode(), b"v")
            writes_per_put.append(store.nvm.stats.total_writes - before)
        # Every insert is exactly one slot write: no displacement chains.
        assert set(writes_per_put) == {1}

"""Crash recovery around the ingestion queue.

The queue adds no durability of its own — ops are volatile until their
batch drains through the engine, whose commit stage orders data writes
before flag persistence.  A crash therefore loses exactly the
not-yet-flushed ops (and, inside a torn batch, whole unflagged
operations), and ``recover()`` rebuilds the same state as a store that
executed only the flushed batches directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, PNWStore, ShardedPNWStore
from tests.conftest import clustered_values


def make_config(shards: int = 1, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        persist_flags=True,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def build_store(config: PNWConfig):
    store = (
        PNWStore(config) if config.shards == 1 else ShardedPNWStore(config)
    )
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def pairs_for(rng: np.random.Generator, n: int, prefix: str):
    values = clustered_values(rng, n, 24, flip_rate=0.05)
    return [
        (f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)
    ]


class TestCrashMidFlush:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_unflushed_ops_lost_flushed_ops_survive(self, shards):
        """Crash between flushes: exactly the flushed prefix recovers."""
        queue_store = build_store(make_config(shards))
        direct_store = build_store(make_config(shards))
        rng = np.random.default_rng(1)
        flushed = pairs_for(rng, 60, "f")
        pending = pairs_for(rng, 40, "p")

        queue = IngestQueue(queue_store, autostart=False, max_batch=4096)
        futures = [queue.put(key, value) for key, value in flushed]
        queue.flush()
        for future in futures:
            future.result(timeout=10)
        # These never flush before the power failure.
        pending_futures = [queue.put(key, value) for key, value in pending]

        queue_store.crash()
        queue_store.recover()

        direct_store.put_many(flushed)
        direct_store.crash()
        direct_store.recover()

        assert len(queue_store) == len(direct_store)
        for key, value in flushed:
            assert queue_store.get(key) == value.ljust(24, b"\x00")
        for key, _ in pending:
            assert key not in queue_store
        assert not any(future.done() for future in pending_futures)

    def test_flush_after_recovery_applies_pending_ops(self):
        """The queue can drain its backlog into the recovered store."""
        queue_store = build_store(make_config())
        direct_store = build_store(make_config())
        rng = np.random.default_rng(2)
        flushed = pairs_for(rng, 50, "a")
        pending = pairs_for(rng, 30, "b")

        queue = IngestQueue(queue_store, autostart=False, max_batch=4096)
        for key, value in flushed:
            queue.put(key, value)
        queue.flush()
        pending_futures = [queue.put(key, value) for key, value in pending]

        queue_store.crash()
        queue_store.recover()
        queue.flush()  # drain the backlog into the recovered store
        for future in pending_futures:
            assert future.result(timeout=10).op == "put"

        direct_store.put_many(flushed)
        direct_store.crash()
        direct_store.recover()
        direct_store.put_many(pending)

        assert len(queue_store) == len(direct_store)
        for key, value in flushed + pending:
            assert queue_store.get(key) == direct_store.get(key)

    def test_torn_batch_loses_only_unflagged_ops(self):
        """Crash *inside* a coalesced batch: the engine's commit stage
        writes data before flags, so recovery lands on the consistent
        flagged prefix — wherever the batch was cut."""
        queue_store = build_store(make_config())
        rng = np.random.default_rng(3)
        batch = pairs_for(rng, 40, "t")

        queue = IngestQueue(queue_store, autostart=False, max_batch=4096)
        for key, value in batch:
            queue.put(key, value)
        queue.flush()

        # Tear the tail of the batch the way the recovery suite does:
        # clear the validity bits of the last ops (their data may have
        # landed, but the flags — persisted after the data — did not).
        torn_keys = [key for key, _ in batch[-10:]]
        torn_addresses = [
            queue_store.index.peek(key.ljust(8, b"\x00")) for key in torn_keys
        ]
        for address in torn_addresses:
            queue_store._set_valid(address, False)

        queue_store.crash()
        queue_store.recover()

        survivors = {key for key, _ in batch[:-10]}
        assert len(queue_store) == len(survivors)
        for key, value in batch[:-10]:
            assert queue_store.get(key) == value.ljust(24, b"\x00")
        for key in torn_keys:
            assert key not in queue_store

    def test_sharded_torn_shard_loses_only_its_ops(self):
        """A single shard torn mid-flush recovers alone; siblings keep
        every flushed op."""
        store = build_store(make_config(shards=4))
        rng = np.random.default_rng(4)
        batch = pairs_for(rng, 80, "s")

        queue = IngestQueue(store, autostart=False, max_batch=4096)
        for key, value in batch:
            queue.put(key, value)
        queue.flush()

        torn_shard = 0
        torn_store = store.stores[torn_shard]
        torn_keys = {
            key
            for key, _ in batch
            if store.shard_of_key(key) == torn_shard
        }
        assert torn_keys  # the stream hits every shard
        # Tear the whole shard: wipe its flags as if no op persisted.
        for address in range(torn_store.config.num_buckets):
            if torn_store._is_valid(address):
                torn_store._set_valid(address, False)

        store.crash()
        store.recover()

        for key, value in batch:
            if key in torn_keys:
                assert key not in store
            else:
                assert store.get(key) == value.ljust(24, b"\x00")

"""Coalesced ingestion equivalence: the IngestQueue must be invisible.

Single ops submitted through :class:`~repro.ingest.IngestQueue` are
coalesced into per-shard ``put_many`` / ``update_many`` / ``delete_many``
batches; these tests pin that the coalesced execution leaves the store
byte-identical — device state, flag bitmap, index, pool order, wear
accounting — to direct hand-batched calls over the same per-shard op
sequences, and that every future resolves to a report matching the
direct call's (modulo the measured ``predict_ns`` timing).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, PNWStore, ShardedPNWStore
from repro.errors import KeyNotFoundError, PoolExhaustedError
from tests.conftest import clustered_values


def make_config(shards: int = 1, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def build_store(config: PNWConfig) -> PNWStore | ShardedPNWStore:
    store = (
        PNWStore(config) if config.shards == 1 else ShardedPNWStore(config)
    )
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def store_pair(shards: int = 1, **overrides):
    return (
        build_store(make_config(shards, **overrides)),
        build_store(make_config(shards, **overrides)),
    )


def zone_snapshots(store) -> list[np.ndarray]:
    if isinstance(store, ShardedPNWStore):
        return [shard.nvm.snapshot() for shard in store.stores]
    return [store.nvm.snapshot()]


def assert_stores_equal(direct, coalesced) -> None:
    """Byte-identical data zones, flags, indexes, pools, and wear."""
    direct_shards = (
        direct.stores if isinstance(direct, ShardedPNWStore) else [direct]
    )
    coalesced_shards = (
        coalesced.stores
        if isinstance(coalesced, ShardedPNWStore)
        else [coalesced]
    )
    for a, b in zip(direct_shards, coalesced_shards):
        assert np.array_equal(a.nvm.snapshot(), b.nvm.snapshot())
        assert np.array_equal(a.flags_nvm.snapshot(), b.flags_nvm.snapshot())
        assert dict(a.index.items()) == dict(b.index.items())
        assert np.array_equal(
            a.nvm.stats.writes_per_address, b.nvm.stats.writes_per_address
        )
        assert a.pool._free_lists == b.pool._free_lists
        assert len(a) == len(b)


REPORT_FIELDS = (
    "op",
    "key",
    "address",
    "cluster",
    "fallback_used",
    "bit_updates",
    "words_touched",
    "lines_touched",
    "index_lines",
    "retrained",
)


def assert_reports_match(direct_reports, futures) -> None:
    """Futures resolve to the direct call's reports (timing excluded)."""
    assert len(direct_reports) == len(futures)
    for expected, future in zip(direct_reports, futures):
        actual = future.result(timeout=10)
        for field in REPORT_FIELDS:
            assert getattr(actual, field) == getattr(expected, field), field


def random_ops(rng: np.random.Generator, n: int, value_bytes: int):
    """A mixed op stream: fresh puts, updates/deletes of live keys."""
    ops = []
    live: list[int] = []
    fresh = 0
    values = clustered_values(rng, n, value_bytes, flip_rate=0.05)
    for i in range(n):
        value = values[i].tobytes()
        choice = rng.random()
        if not live or choice < 0.55:
            ops.append(("put", f"k{fresh}".encode(), value))
            live.append(fresh)
            fresh += 1
        elif choice < 0.8:
            victim = live[int(rng.integers(len(live)))]
            ops.append(("update", f"k{victim}".encode(), value))
        else:
            victim = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", f"k{victim}".encode(), None))
    return ops


def submit(queue: IngestQueue, op):
    kind, key, value = op
    if kind == "put":
        return queue.put(key, value)
    if kind == "update":
        return queue.update(key, value)
    return queue.delete(key)


def run_direct(store, ops) -> list:
    """Hand-batched reference: one ``*_many`` per consecutive kind run."""
    reports = []
    i = 0
    while i < len(ops):
        kind = ops[i][0]
        j = i
        while j < len(ops) and ops[j][0] == kind:
            j += 1
        chunk = ops[i:j]
        if kind == "put":
            reports.extend(
                store.put_many([(key, value) for _, key, value in chunk])
            )
        elif kind == "update":
            reports.extend(
                store.update_many([(key, value) for _, key, value in chunk])
            )
        else:
            reports.extend(store.delete_many([key for _, key, _ in chunk]))
        i = j
    return reports


class TestPutEquivalence:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_coalesced_puts_byte_identical(self, shards):
        direct, coalesced = store_pair(shards)
        rng = np.random.default_rng(3)
        values = clustered_values(rng, 150, 24, flip_rate=0.05)
        pairs = [(f"k{i}".encode(), values[i].tobytes()) for i in range(150)]
        direct_reports = direct.put_many(pairs)
        with IngestQueue(coalesced, max_batch=64, max_delay=60.0) as queue:
            futures = [queue.put(key, value) for key, value in pairs]
            queue.flush()
            assert_reports_match(direct_reports, futures)
        assert_stores_equal(direct, coalesced)

    def test_size_trigger_flushes_without_explicit_flush(self):
        direct, coalesced = store_pair()
        pairs = [(f"k{i}".encode(), b"v%d" % i) for i in range(8)]
        direct.put_many(pairs)
        with IngestQueue(coalesced, max_batch=8, max_delay=600.0) as queue:
            futures = [queue.put(key, value) for key, value in pairs]
            for future in futures:
                future.result(timeout=10)  # resolved by the size trigger
        assert_stores_equal(direct, coalesced)

    def test_deadline_trigger_flushes(self):
        direct, coalesced = store_pair()
        direct.put(b"solo", b"value")
        with IngestQueue(
            coalesced, max_batch=4096, max_delay=0.02
        ) as queue:
            future = queue.put(b"solo", b"value")
            report = future.result(timeout=10)
            assert report.op == "put"
        assert_stores_equal(direct, coalesced)


class TestMixedStreamEquivalence:
    @pytest.mark.parametrize("shards", [1, 4])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_randomized_mixed_ops(self, shards, seed):
        direct, coalesced = store_pair(shards)
        ops = random_ops(np.random.default_rng(seed), 180, 24)
        direct_reports = run_direct(direct, ops)
        with IngestQueue(coalesced, max_batch=4096, max_delay=60.0) as queue:
            futures = [submit(queue, op) for op in ops]
            queue.flush()
            assert_reports_match(direct_reports, futures)
        assert_stores_equal(direct, coalesced)

    def test_mixed_ops_with_mid_stream_retrains(self):
        overrides = dict(load_factor=0.3, retrain_check_interval=16)
        direct, coalesced = store_pair(**overrides)
        ops = random_ops(np.random.default_rng(7), 250, 24)
        direct_reports = run_direct(direct, ops)
        assert direct.metrics.retrains > 1  # policy fired past warm-up
        with IngestQueue(coalesced, max_batch=4096, max_delay=60.0) as queue:
            futures = [submit(queue, op) for op in ops]
            queue.flush()
            assert_reports_match(direct_reports, futures)
        assert_stores_equal(direct, coalesced)


class TestFailureRouting:
    def test_missing_key_fails_only_its_run_suffix(self):
        store = build_store(make_config())
        with IngestQueue(store, max_batch=4096, max_delay=60.0) as queue:
            ok = queue.put(b"a", b"1")
            doomed_prefix = queue.delete(b"a")
            doomed = queue.delete(b"missing")
            also_doomed = queue.delete(b"gone2")
            ok2 = queue.put(b"b", b"2")
            queue.flush()
            assert ok.result(timeout=10).op == "put"
            # The delete run's committed prefix resolves from
            # committed_reports; the miss and everything after it in the
            # run fail with the batch call's exception.
            assert doomed_prefix.result(timeout=10).op == "delete"
            with pytest.raises(KeyNotFoundError):
                doomed.result(timeout=10)
            with pytest.raises(KeyNotFoundError):
                also_doomed.result(timeout=10)
            # A later run on the same shard still executes.
            assert ok2.result(timeout=10).op == "put"
        assert b"b" in store

    def test_pool_exhaustion_resolves_committed_prefix(self):
        config = make_config(num_buckets=8, n_clusters=2, probe_limit=-1)
        store = build_store(config)
        with IngestQueue(store, max_batch=4096, max_delay=60.0) as queue:
            futures = [
                queue.put(f"k{i}".encode(), b"v%d" % i) for i in range(12)
            ]
            queue.flush()
            for future in futures[:8]:
                assert future.result(timeout=10).op == "put"
            for future in futures[8:]:
                with pytest.raises(PoolExhaustedError):
                    future.result(timeout=10)

    def test_submit_after_close_raises(self):
        store = build_store(make_config())
        queue = IngestQueue(store, max_batch=16, max_delay=60.0)
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.put(b"k", b"v")

    def test_close_flushes_pending(self):
        direct, coalesced = store_pair()
        direct.put(b"k", b"v")
        queue = IngestQueue(coalesced, max_batch=4096, max_delay=600.0)
        future = queue.put(b"k", b"v")
        queue.close()
        assert future.result(timeout=10).op == "put"
        assert_stores_equal(direct, coalesced)


class TestPausedQueue:
    def test_autostart_false_defers_until_flush(self):
        direct, coalesced = store_pair()
        direct.put(b"k", b"v")
        queue = IngestQueue(coalesced, autostart=False, max_batch=4096)
        future = queue.put(b"k", b"v")
        assert not future.done()
        assert queue.pending_ops == 1
        queue.flush()
        assert future.result(timeout=10).op == "put"
        assert queue.pending_ops == 0
        assert_stores_equal(direct, coalesced)
        queue.close()

    def test_paused_queue_size_trigger_drains_inline(self):
        store = build_store(make_config())
        queue = IngestQueue(store, autostart=False, max_batch=4)
        futures = [queue.put(f"k{i}".encode(), b"v") for i in range(4)]
        # The 4th submission hit max_batch with no flusher: it drained
        # inline so a paused queue still bounds its backlog.
        assert all(future.done() for future in futures)
        queue.close()

"""Multi-producer ingestion stress: N threads, one sequential oracle.

The admission layer's contract under concurrency: whatever interleaving
the producers race into, the *admitted order* (each lane's run sequence,
recorded at dispatch time) is the serialization — replaying exactly
those per-shard runs on a fresh store sequentially must reproduce the
stressed store byte for byte (device bytes, flags, index, pool order,
wear counters), including mid-stream retrains firing at the same
points.  Racing ops on one key resolve to exactly one winner: the one
admitted last (for puts) or first (for deletes).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, PNWStore, ShardedPNWStore
from repro.errors import (
    DeadlineExceededError,
    KeyNotFoundError,
    QueueFullError,
)
from tests.conftest import clustered_values

N_PRODUCERS = 8
OPS_PER_PRODUCER = 40


def make_config(shards: int = 4, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=512,
        value_bytes=24,
        key_bytes=12,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def build_store(config: PNWConfig):
    store = (
        PNWStore(config) if config.shards == 1 else ShardedPNWStore(config)
    )
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def assert_stores_equal(direct, stressed) -> None:
    """Byte-identical data zones, flags, indexes, pools, and wear."""
    direct_shards = (
        direct.stores if isinstance(direct, ShardedPNWStore) else [direct]
    )
    stressed_shards = (
        stressed.stores
        if isinstance(stressed, ShardedPNWStore)
        else [stressed]
    )
    for a, b in zip(direct_shards, stressed_shards):
        assert np.array_equal(a.nvm.snapshot(), b.nvm.snapshot())
        assert np.array_equal(a.flags_nvm.snapshot(), b.flags_nvm.snapshot())
        assert dict(a.index.items()) == dict(b.index.items())
        assert np.array_equal(
            a.nvm.stats.writes_per_address, b.nvm.stats.writes_per_address
        )
        assert a.pool._free_lists == b.pool._free_lists
        assert len(a) == len(b)


class RecordingQueue(IngestQueue):
    """IngestQueue that journals the runs it hands the store, in order.

    ``_dispatch`` always runs under the drain lock, so the journal is
    an exact, race-free record of each shard's dispatched sequence —
    the sequential oracle's script.
    """

    def __init__(self, *args, **kwargs) -> None:
        self.journal: dict[int, list[tuple[str, list]]] = {}
        super().__init__(*args, **kwargs)

    def _dispatch(self, batches) -> None:
        for shard_id, runs in sorted(batches.items()):
            shard_journal = self.journal.setdefault(shard_id, [])
            for run in runs:
                shard_journal.append((run.kind, list(run.items)))
        super()._dispatch(batches)


def replay(store, journal) -> None:
    """Execute the journal sequentially — the oracle the stress run
    must be byte-identical to.

    Mirrors the queue's failure semantics: a run dying mid-batch keeps
    its committed prefix and the shard's later runs still execute.
    """
    shards = store.stores if isinstance(store, ShardedPNWStore) else [store]
    for shard_id in sorted(journal):
        target = shards[shard_id]
        ops = {
            "put": target.put_many,
            "update": target.update_many,
            "delete": target.delete_many,
        }
        for kind, items in journal[shard_id]:
            try:
                ops[kind](items)
            except KeyNotFoundError:
                pass


def race_pairs(config: PNWConfig, n: int = 8):
    rng = np.random.default_rng(9)
    values = clustered_values(rng, n, config.value_bytes, flip_rate=0.05)
    return [(f"race-{i}".encode(), values[i].tobytes()) for i in range(n)]


def producer_stream(producer: int, config: PNWConfig, n_race: int):
    """An infallible mixed stream: private puts/updates/deletes plus
    updates of shared (pre-inserted, never-deleted) race keys."""
    rng = np.random.default_rng(100 + producer)
    values = clustered_values(
        rng, OPS_PER_PRODUCER, config.value_bytes, flip_rate=0.05
    )
    ops = []
    live: list[int] = []
    fresh = 0
    for i in range(OPS_PER_PRODUCER):
        value = values[i].tobytes()
        roll = rng.random()
        if not live or roll < 0.5:
            ops.append(("put", f"p{producer}-k{fresh}".encode(), value))
            live.append(fresh)
            fresh += 1
        elif roll < 0.65:
            victim = live[int(rng.integers(len(live)))]
            ops.append(("update", f"p{producer}-k{victim}".encode(), value))
        elif roll < 0.75:
            victim = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", f"p{producer}-k{victim}".encode(), None))
        elif n_race:
            ops.append(
                ("update", f"race-{int(rng.integers(n_race))}".encode(), value)
            )
        else:
            victim = live[int(rng.integers(len(live)))]
            ops.append(("update", f"p{producer}-k{victim}".encode(), value))
    return ops


def drive(queue: IngestQueue, ops, overload: str):
    """Submit one producer's stream; returns (futures, dropped_count)."""
    futures = []
    dropped = 0
    for kind, key, value in ops:
        submit = (
            (lambda: queue.delete(key))
            if kind == "delete"
            else (lambda: getattr(queue, kind)(key, value))
        )
        if overload == "shed":
            # A real producer retries shed ops after a beat; give up
            # after a bounded number of attempts.
            for _ in range(200):
                try:
                    futures.append(submit())
                    break
                except QueueFullError:
                    time.sleep(0.001)
            else:
                dropped += 1
        else:
            try:
                futures.append(submit())
            except DeadlineExceededError:
                dropped += 1
    return futures, dropped


class TestEightProducerStress:
    @pytest.mark.parametrize("overload", ["block", "shed", "deadline"])
    def test_sharded_byte_identical_to_sequential_oracle(self, overload):
        config = make_config(shards=4)
        stressed = build_store(config)
        oracle = build_store(make_config(shards=4))
        races = race_pairs(config)
        stressed.put_many(races)
        oracle.put_many(races)

        queue = RecordingQueue(
            stressed,
            max_batch=16,
            max_delay=0.002,
            max_pending=32,
            overload=overload,
            admission_timeout=0.05,
        )
        streams = [
            producer_stream(p, config, len(races)) for p in range(N_PRODUCERS)
        ]
        results: list = [None] * N_PRODUCERS
        barrier = threading.Barrier(N_PRODUCERS)

        def run(producer: int) -> None:
            barrier.wait()
            results[producer] = drive(queue, streams[producer], overload)

        threads = [
            threading.Thread(target=run, args=(p,))
            for p in range(N_PRODUCERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()

        resolved = rejected = 0
        for futures, _ in results:
            for future in futures:
                assert future.done()
                exc = future.exception()
                if exc is None:
                    resolved += 1
                else:
                    # Deadline rejections are expected under overload;
                    # once an op is dropped, a later op on the same key
                    # (or its run-mates) can legitimately miss.
                    assert isinstance(
                        exc, (DeadlineExceededError, KeyNotFoundError)
                    ), exc
                    rejected += 1
        assert resolved > 0
        if overload == "block":
            # Nothing may be rejected or dropped under block.
            assert rejected == 0
            assert all(dropped == 0 for _, dropped in results)
            assert resolved == N_PRODUCERS * OPS_PER_PRODUCER

        replay(oracle, queue.journal)
        assert_stores_equal(oracle, stressed)

    def test_single_store_byte_identical_under_block(self):
        config = make_config(shards=1)
        stressed = build_store(config)
        oracle = build_store(make_config(shards=1))
        races = race_pairs(config)
        stressed.put_many(races)
        oracle.put_many(races)

        queue = RecordingQueue(
            stressed, max_batch=16, max_delay=0.002, max_pending=32
        )
        streams = [
            producer_stream(p, config, len(races)) for p in range(N_PRODUCERS)
        ]
        threads = [
            threading.Thread(target=drive, args=(queue, stream, "block"))
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()

        replay(oracle, queue.journal)
        assert_stores_equal(oracle, stressed)

    def test_mid_stream_retrains_stay_deterministic(self):
        """Retrains fired by racing producers replay at the same points."""
        overrides = dict(load_factor=0.3, retrain_check_interval=16)
        config = make_config(shards=4, **overrides)
        stressed = build_store(config)
        oracle = build_store(make_config(shards=4, **overrides))

        queue = RecordingQueue(
            stressed, max_batch=16, max_delay=0.002, max_pending=64
        )
        streams = [
            producer_stream(p, config, 0) for p in range(N_PRODUCERS)
        ]
        # Strip race-key updates (n_race=0 streams never emit them).
        threads = [
            threading.Thread(target=drive, args=(queue, stream, "block"))
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()

        assert stressed.metrics.retrains > 0  # the policy actually fired
        replay(oracle, queue.journal)
        assert_stores_equal(oracle, stressed)


class TestDuplicateKeyRaces:
    def test_racing_puts_resolve_to_exactly_one_winner(self):
        config = make_config(shards=4)
        store = build_store(config)
        queue = RecordingQueue(store, max_batch=64, max_delay=0.002)
        key = b"contested"
        values = [bytes([p]) * config.value_bytes for p in range(N_PRODUCERS)]
        barrier = threading.Barrier(N_PRODUCERS)
        futures: list = [None] * N_PRODUCERS

        def run(producer: int) -> None:
            barrier.wait()
            futures[producer] = queue.put(key, values[producer])

        threads = [
            threading.Thread(target=run, args=(p,))
            for p in range(N_PRODUCERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()

        # Every racing put succeeds (put is an upsert) ...
        for future in futures:
            assert future.result(timeout=10).op == "put"
        # ... but exactly one value — the last admitted — survives.
        shard_id = store.shard_of_key(key)
        admitted = [
            item
            for kind, items in queue.journal[shard_id]
            for item in items
            if kind == "put" and item[0] == key
        ]
        assert len(admitted) == N_PRODUCERS
        assert store.get(key) == admitted[-1][1]
        assert len(store) == 1

    def test_racing_deletes_exactly_one_succeeds(self):
        config = make_config(shards=4)
        store = build_store(config)
        store.put(b"victim", b"x" * config.value_bytes)
        queue = IngestQueue(store, max_batch=64, max_delay=0.002)
        barrier = threading.Barrier(2)
        futures: list = [None, None]

        def run(producer: int) -> None:
            barrier.wait()
            futures[producer] = queue.delete(b"victim")

        threads = [
            threading.Thread(target=run, args=(p,)) for p in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()

        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(timeout=10).op)
            except KeyNotFoundError:
                outcomes.append("miss")
        assert sorted(outcomes) == ["delete", "miss"]
        assert b"victim" not in store

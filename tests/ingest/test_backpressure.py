"""Backpressure and lifecycle properties of the admission window.

Pins the three overload policies' contracts: the pending window never
exceeds its bound, ``block`` preserves per-producer FIFO, ``shed`` and
``deadline`` rejections never leave partially-applied ops in the store,
crash-mid-overload recovery drains cleanly, and ``close()``
deterministically resolves every future — including during an in-flight
flush and when the dispatch machinery itself dies.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import IngestQueue, PNWConfig, PNWStore, ShardedPNWStore
from repro.errors import (
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    ReproError,
)
from tests.conftest import clustered_values


def make_config(shards: int = 1, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def build_store(config: PNWConfig):
    store = (
        PNWStore(config) if config.shards == 1 else ShardedPNWStore(config)
    )
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def assert_stores_equal(direct, other) -> None:
    direct_shards = (
        direct.stores if isinstance(direct, ShardedPNWStore) else [direct]
    )
    other_shards = (
        other.stores if isinstance(other, ShardedPNWStore) else [other]
    )
    for a, b in zip(direct_shards, other_shards):
        assert np.array_equal(a.nvm.snapshot(), b.nvm.snapshot())
        assert np.array_equal(a.flags_nvm.snapshot(), b.flags_nvm.snapshot())
        assert dict(a.index.items()) == dict(b.index.items())
        assert a.pool._free_lists == b.pool._free_lists


def pairs_for(n: int, prefix: str = "k"):
    rng = np.random.default_rng(5)
    values = clustered_values(rng, n, 24, flip_rate=0.05)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


class TestWindowBound:
    def test_shed_rejects_at_the_bound(self):
        store = build_store(make_config())
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=8,
            overload="shed",
        )
        pairs = pairs_for(8)
        futures = [queue.put(key, value) for key, value in pairs]
        assert queue.pending_ops == 8
        with pytest.raises(QueueFullError):
            queue.put(b"overflow", b"v")
        assert queue.ops_rejected == 1
        # Dispatch frees the window; admission works again.
        queue.flush()
        assert queue.pending_ops == 0
        ok = queue.put(b"later", b"v")
        queue.close()
        for future in futures:
            assert future.result(timeout=10).op == "put"
        assert ok.result(timeout=10).op == "put"

    def test_rejected_key_never_consumes_a_window_slot(self):
        """Regression: on a sharded store, a key the router rejects
        (oversized, wrong type) used to leak its admission slot —
        max_pending bad submissions then wedged the queue for good."""
        store = build_store(make_config(shards=4))
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=4,
            overload="shed",
        )
        for _ in range(8):  # 2x the window: a leak would wedge below
            with pytest.raises(ValueError, match="key_bytes"):
                queue.put(b"x" * 64, b"v")
        assert queue.pending_ops == 0
        # Every slot is still available to well-formed keys.
        futures = [queue.put(key, value) for key, value in pairs_for(4)]
        assert queue.pending_ops == 4
        queue.flush()
        queue.close()
        for future in futures:
            assert future.result(timeout=10).op == "put"

    def test_validation(self):
        store = build_store(make_config())
        with pytest.raises(ValueError, match="max_pending"):
            IngestQueue(store, max_pending=0)
        with pytest.raises(ValueError, match="overload"):
            IngestQueue(store, overload="panic")
        with pytest.raises(ValueError, match="admission_timeout"):
            IngestQueue(store, overload="deadline", admission_timeout=0.0)

    @pytest.mark.parametrize("overload", ["block", "shed"])
    def test_window_never_exceeds_bound_under_hammering(self, overload):
        """Property: however many producers race, pending <= max_pending."""
        store = build_store(make_config(shards=4))
        queue = IngestQueue(
            store, max_batch=8, max_delay=0.001, max_pending=16,
            overload=overload,
        )
        pairs = pairs_for(120)
        violations: list[int] = []

        def producer(start: int) -> None:
            for key, value in pairs[start::6]:
                while True:
                    try:
                        queue.put(key, value)
                        break
                    except QueueFullError:
                        time.sleep(0.0005)
                seen = queue.pending_ops
                if seen > 16:
                    violations.append(seen)

        threads = [
            threading.Thread(target=producer, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()
        assert not violations
        store.close()


class TestBlockPolicy:
    def test_blocked_producer_waits_then_proceeds(self):
        store = build_store(make_config())
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=4,
        )
        pairs = pairs_for(5)
        futures = [queue.put(key, value) for key, value in pairs[:4]]
        blocked_entered = threading.Event()
        late: list = []

        def blocked_producer() -> None:
            blocked_entered.set()
            late.append(queue.put(*pairs[4]))

        thread = threading.Thread(target=blocked_producer)
        thread.start()
        blocked_entered.wait(5)
        time.sleep(0.05)
        assert thread.is_alive()  # stuck in the full window
        assert queue.pending_ops == 4
        queue.flush()  # frees the window -> producer admitted
        thread.join(timeout=5)
        assert not thread.is_alive()
        queue.close()
        for future in futures + late:
            assert future.result(timeout=10).op == "put"
        # Per-producer FIFO: the single producer's order is the admitted
        # order, so the store matches a sequential oracle of its stream.
        oracle = build_store(make_config())
        oracle.put_many(pairs)
        assert_stores_equal(oracle, store)

    def test_per_producer_fifo_per_shard(self):
        """Each producer's ops reach its shard in submission order."""
        from tests.ingest.test_concurrent_producers import RecordingQueue

        store = build_store(make_config(shards=4))
        queue = RecordingQueue(
            store, max_batch=8, max_delay=0.001, max_pending=16,
        )
        n_producers, n_ops = 4, 30
        streams = [
            [(f"p{p}-{i}".encode(), bytes([p, i]) * 12) for i in range(n_ops)]
            for p in range(n_producers)
        ]
        threads = [
            threading.Thread(
                target=lambda s=stream: [queue.put(k, v) for k, v in s]
            )
            for stream in streams
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        queue.close()

        for shard_id, runs in queue.journal.items():
            admitted = [
                key for kind, items in runs for key, _ in items
            ]
            for p in range(n_producers):
                mine = [k for k in admitted if k.startswith(f"p{p}-".encode())]
                expected = [
                    k for k, _ in streams[p]
                    if store.shard_of_key(k) == shard_id
                ]
                assert mine == expected
        store.close()


class TestRejectionAtomicity:
    def test_shed_rejection_never_touches_the_store(self):
        store = build_store(make_config())
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=8,
            overload="shed",
        )
        pairs = pairs_for(8)
        for key, value in pairs:
            queue.put(key, value)
        with pytest.raises(QueueFullError):
            queue.put(b"victim", b"never-applied")
        queue.close()
        assert b"victim" not in store
        assert len(store) == 8
        oracle = build_store(make_config())
        oracle.put_many(pairs)
        assert_stores_equal(oracle, store)

    def test_deadline_expired_ops_rejected_not_applied(self):
        store = build_store(make_config())
        queue = IngestQueue(
            store, autostart=False, max_batch=4096,
            overload="deadline", admission_timeout=0.05,
        )
        doomed = queue.put(b"doomed", b"x")
        time.sleep(0.12)  # past the admission deadline
        survivor = queue.put(b"survivor", b"y")
        queue.flush()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=10)
        assert survivor.result(timeout=10).op == "put"
        assert queue.ops_rejected == 1
        queue.close()
        assert b"doomed" not in store
        assert b"survivor" in store
        # Only the survivor's op ever reached the store.
        oracle = build_store(make_config())
        oracle.put(b"survivor", b"y")
        assert_stores_equal(oracle, store)

    def test_deadline_blocked_admission_rejects_after_timeout(self):
        store = build_store(make_config())
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=2,
            overload="deadline", admission_timeout=0.05,
        )
        first = queue.put(b"a", b"1")
        second = queue.put(b"b", b"2")
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            queue.put(b"c", b"3")
        assert time.monotonic() - started >= 0.04
        queue.close()
        # The rejected op never reached the store; the admitted two
        # either made their own deadline (applied) or expired (not
        # applied) — waiting out "c" put them right at the boundary.
        assert b"c" not in store
        for key, future in ((b"a", first), (b"b", second)):
            if future.exception() is None:
                assert key in store
            else:
                assert isinstance(future.exception(), DeadlineExceededError)
                assert key not in store


class TestCrashMidOverload:
    def test_recovery_drains_backlog_and_blocked_producer(self):
        """A full window at crash time drains cleanly into the
        recovered store, and the producer stuck in the window follows."""
        config = make_config(persist_flags=True)
        store = build_store(config)
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=8,
        )
        pairs = pairs_for(12)
        backlog = [queue.put(key, value) for key, value in pairs[:8]]
        blocked: list = []

        def blocked_producer() -> None:
            for key, value in pairs[8:]:
                blocked.append(queue.put(key, value))

        thread = threading.Thread(target=blocked_producer)
        thread.start()
        time.sleep(0.05)
        assert thread.is_alive()  # window full, producer waiting

        store.crash()
        store.recover()
        queue.flush()  # drains the backlog; frees slots for the producer
        thread.join(timeout=5)
        assert not thread.is_alive()
        queue.close()

        for future in backlog + blocked:
            assert future.result(timeout=10).op == "put"
        # Nothing had flushed before the crash, so every op landed in
        # the *recovered* store — the oracle crashes first, then applies
        # the whole admitted sequence.
        oracle = build_store(make_config(persist_flags=True))
        oracle.crash()
        oracle.recover()
        oracle.put_many(pairs[:8])
        oracle.put_many(pairs[8:])
        assert_stores_equal(oracle, store)


class TestCloseDeterminism:
    def test_close_during_flush_resolves_everything(self):
        """Regression: close() racing an in-flight dispatch must wait it
        out and resolve every future — never hang, never drop one."""
        store = build_store(make_config())
        original = store.put_many
        entered = threading.Event()

        def slow_put_many(pairs, **kwargs):
            entered.set()
            time.sleep(0.2)
            return original(pairs, **kwargs)

        store.put_many = slow_put_many
        queue = IngestQueue(store, max_batch=4, max_delay=0.001)
        early = [queue.put(key, value) for key, value in pairs_for(4, "a")]
        assert entered.wait(5)  # flusher is mid-dispatch
        late = [queue.put(key, value) for key, value in pairs_for(3, "b")]
        queue.close()  # must wait out the dispatch and drain the rest
        for future in early + late:
            assert future.result(timeout=1).op == "put"
        assert len(store) == 7

    def test_close_wakes_blocked_producers(self):
        store = build_store(make_config())
        queue = IngestQueue(
            store, autostart=False, max_batch=4096, max_pending=2,
        )
        queue.put(b"a", b"1")
        queue.put(b"b", b"2")
        outcome: list = []

        def blocked_producer() -> None:
            try:
                queue.put(b"c", b"3")
                outcome.append("admitted")
            except QueueClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=blocked_producer)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert outcome == ["closed"]
        # The admitted backlog still drained.
        assert b"a" in store and b"b" in store and b"c" not in store

    def test_dead_dispatch_rejects_instead_of_hanging(self):
        """If the dispatch machinery itself dies, close() rejects the
        affected futures deterministically instead of stranding them."""
        store = build_store(make_config(shards=4))
        queue = IngestQueue(store, autostart=False, max_batch=4096)
        futures = [queue.put(key, value) for key, value in pairs_for(6)]

        def broken(batches):
            raise RuntimeError("shard executor is gone")

        store.run_shard_batches = broken
        queue.close()  # must not raise and must not hang
        for future in futures:
            with pytest.raises(RuntimeError, match="shard executor"):
                future.result(timeout=1)
        store.close()

    def test_flusher_survives_a_dispatch_failure(self):
        """A batch that explodes in dispatch doesn't kill the flusher:
        later submissions still drain."""
        store = build_store(make_config())
        original = store.put_many
        calls = {"n": 0}

        def flaky_put_many(pairs, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient dispatch failure")
            return original(pairs, **kwargs)

        store.put_many = flaky_put_many
        with IngestQueue(store, max_batch=4096, max_delay=0.005) as queue:
            doomed = queue.put(b"doomed", b"x")
            with pytest.raises(RuntimeError, match="transient"):
                doomed.result(timeout=10)
            ok = queue.put(b"fine", b"y")
            assert ok.result(timeout=10).op == "put"
        assert b"fine" in store

    def test_submit_after_close_is_repro_and_runtime_error(self):
        store = build_store(make_config())
        queue = IngestQueue(store, max_batch=16)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put(b"k", b"v")
        assert issubclass(QueueClosedError, ReproError)
        assert issubclass(QueueClosedError, RuntimeError)

    def test_close_is_idempotent_and_concurrent_safe(self):
        store = build_store(make_config())
        queue = IngestQueue(store, max_batch=16, max_delay=0.001)
        future = queue.put(b"k", b"v")
        threads = [
            threading.Thread(target=queue.close) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert future.result(timeout=1).op == "put"

    def test_reads_allowed_after_close(self):
        store = build_store(make_config())
        with IngestQueue(store, max_batch=16, max_delay=0.001) as queue:
            queue.put(b"k", b"value").result(timeout=10)
        assert queue.get(b"k").startswith(b"value")

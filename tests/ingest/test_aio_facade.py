"""Event-loop behavior of :class:`repro.AsyncIngestQueue`.

Awaitable put/update/delete/get bridge the futures-based core without
blocking the loop; cancellation of a pending awaitable never poisons
its batch; ``close()`` under outstanding awaits resolves them all.
Plus a real-socket smoke test of ``examples/serve_http.py``.
"""

from __future__ import annotations

import asyncio
import importlib.util
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import AsyncIngestQueue, IngestQueue, PNWConfig, PNWStore
from repro.errors import KeyNotFoundError, QueueClosedError, QueueFullError
from repro.shard import ShardedPNWStore
from tests.conftest import clustered_values

EXAMPLES = Path(__file__).resolve().parent.parent.parent / "examples"


def make_config(shards: int = 1, **overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=16,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
        shards=shards,
    )
    base.update(overrides)
    return PNWConfig(**base)


def build_store(config: PNWConfig):
    store = (
        PNWStore(config) if config.shards == 1 else ShardedPNWStore(config)
    )
    rng = np.random.default_rng(42)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


class TestAwaitables:
    def test_mutations_and_reads_round_trip(self):
        async def main():
            store = build_store(make_config(shards=4))
            async with AsyncIngestQueue(
                store, max_batch=8, max_delay=0.002
            ) as queue:
                report = await queue.put(b"k1", b"hello")
                assert report.op == "put"
                assert (await queue.get(b"k1")).startswith(b"hello")
                report = await queue.update(b"k1", b"world")
                # Endurance-mode updates report as the delete+put's put.
                assert report.op in ("update", "put")
                assert (await queue.get(b"k1")).startswith(b"world")
                report = await queue.delete(b"k1")
                assert report.op == "delete"
                with pytest.raises(KeyNotFoundError):
                    await queue.get(b"k1")
            store.close()

        asyncio.run(main())

    def test_concurrent_awaits_resolve_in_admission_order(self):
        """Futures of one coalesced batch resolve in submission order."""
        async def main():
            store = build_store(make_config())
            queue = AsyncIngestQueue(
                store, max_batch=4096, max_delay=60.0, autostart=False
            )
            completion_order: list[int] = []

            async def one_put(i: int):
                report = await queue.put(f"k{i}".encode(), b"v%d" % i)
                completion_order.append(i)
                return report

            tasks = [asyncio.ensure_future(one_put(i)) for i in range(12)]
            await asyncio.sleep(0.1)
            assert not any(task.done() for task in tasks)
            assert queue.pending_ops == 12
            await queue.flush()
            reports = await asyncio.gather(*tasks)
            assert [r.op for r in reports] == ["put"] * 12
            assert completion_order == list(range(12))
            await queue.close()

        asyncio.run(main())

    def test_missing_key_raises_through_await(self):
        async def main():
            store = build_store(make_config())
            async with AsyncIngestQueue(
                store, max_batch=8, max_delay=0.002
            ) as queue:
                with pytest.raises(KeyNotFoundError):
                    await queue.delete(b"never-existed")

        asyncio.run(main())

    def test_shed_overload_raises_in_the_coroutine(self):
        async def main():
            store = build_store(make_config())
            queue = AsyncIngestQueue(
                store, max_batch=4096, max_delay=60.0, autostart=False,
                max_pending=2, overload="shed",
            )
            t1 = asyncio.ensure_future(queue.put(b"a", b"1"))
            t2 = asyncio.ensure_future(queue.put(b"b", b"2"))
            await asyncio.sleep(0.05)  # both admitted, window now full
            with pytest.raises(QueueFullError):
                await queue.put(b"c", b"3")
            await queue.close()
            await asyncio.gather(t1, t2)
            assert b"c" not in store

        asyncio.run(main())

    def test_constructor_validation(self):
        store = build_store(make_config())
        queue = IngestQueue(store, autostart=False)
        with pytest.raises(ValueError, match="exactly one"):
            AsyncIngestQueue(store, queue=queue)
        with pytest.raises(ValueError, match="exactly one"):
            AsyncIngestQueue()
        with pytest.raises(ValueError, match="adopted"):
            AsyncIngestQueue(queue=queue, max_batch=8)
        adopted = AsyncIngestQueue(queue=queue)
        assert adopted.queue is queue
        queue.close()


class TestCancellation:
    def test_cancelled_await_does_not_poison_the_batch(self):
        async def main():
            store = build_store(make_config())
            queue = AsyncIngestQueue(
                store, max_batch=4096, max_delay=60.0, autostart=False
            )
            doomed = asyncio.ensure_future(queue.put(b"cancelled", b"1"))
            survivor = asyncio.ensure_future(queue.put(b"kept", b"2"))
            await asyncio.sleep(0.1)  # both admitted into the lane
            doomed.cancel()
            with pytest.raises(asyncio.CancelledError):
                await doomed
            await queue.flush()
            # The cancelled op was already admitted, so it still
            # executed; only its result was abandoned.  Its batch-mate
            # resolved normally and the queue keeps working.
            assert (await survivor).op == "put"
            assert (await queue.get(b"cancelled")).startswith(b"1")
            after = asyncio.ensure_future(queue.put(b"after", b"3"))
            await asyncio.sleep(0.05)  # admitted; paused queue holds it
            await queue.flush()
            assert (await after).op == "put"
            await queue.close()

        asyncio.run(main())


class TestClose:
    def test_close_resolves_outstanding_awaits(self):
        async def main():
            store = build_store(make_config())
            queue = AsyncIngestQueue(
                store, max_batch=4096, max_delay=60.0, autostart=False
            )
            tasks = [
                asyncio.ensure_future(queue.put(f"k{i}".encode(), b"v"))
                for i in range(6)
            ]
            await asyncio.sleep(0.1)
            assert not any(task.done() for task in tasks)
            await queue.close()  # drains; every await finishes
            reports = await asyncio.gather(*tasks)
            assert [r.op for r in reports] == ["put"] * 6
            with pytest.raises(QueueClosedError):
                await queue.put(b"late", b"v")

        asyncio.run(main())

    def test_close_with_dead_dispatch_rejects_awaits(self):
        async def main():
            store = build_store(make_config())

            def broken(pairs, **kwargs):
                raise RuntimeError("store is gone")

            queue = AsyncIngestQueue(
                store, max_batch=4096, max_delay=60.0, autostart=False
            )
            task = asyncio.ensure_future(queue.put(b"k", b"v"))
            await asyncio.sleep(0.1)
            store.put_many = broken
            await queue.close()
            with pytest.raises(RuntimeError, match="store is gone"):
                await task

        asyncio.run(main())


class TestServeHttpExample:
    def test_demo_over_a_real_socket(self):
        """The asyncio HTTP front door serves concurrent mixed traffic
        over an actual TCP socket with zero read-your-write mismatches."""
        result = subprocess.run(
            [
                sys.executable, str(EXAMPLES / "serve_http.py"), "--demo",
                "--clients", "6", "--requests", "12", "--buckets", "512",
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "serving on 127.0.0.1:" in result.stdout
        assert "6 concurrent clients" in result.stdout
        assert "read-your-write mismatches=0" in result.stdout

    def test_hostile_requests_get_400_and_never_wedge_admission(self):
        """Malformed framing answers 400 (not a dead connection task),
        huge Content-Length is rejected before buffering, and oversized
        keys — which the shard router rejects — must not consume
        admission slots: hammering past the window still leaves the
        front door open to valid traffic."""
        spec = importlib.util.spec_from_file_location(
            "serve_http_example", EXAMPLES / "serve_http.py"
        )
        serve_http = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(serve_http)

        async def raw_status(port: int, payload: bytes) -> int:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(payload)
                await writer.drain()
                return int((await reader.readline()).split()[1])
            finally:
                writer.close()

        async def main():
            store = build_store(make_config(shards=2))
            async with AsyncIngestQueue(
                store, max_batch=8, max_delay=0.002, max_pending=4,
                overload="shed",
            ) as queue:
                kv = serve_http.KVServer(queue)
                server = await asyncio.start_server(kv.handle, "127.0.0.1", 0)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    assert await raw_status(
                        port,
                        b"PUT /kv/a HTTP/1.1\r\n"
                        b"Content-Length: banana\r\n\r\n",
                    ) == 400
                    assert await raw_status(
                        port,
                        b"PUT /kv/a HTTP/1.1\r\n"
                        b"Content-Length: 99999999999\r\n\r\n",
                    ) == 400
                    # 10 bad keys > max_pending=4: a leaked slot per
                    # rejection would wedge the shed-policy window...
                    for _ in range(10):
                        status, _ = await serve_http.http_call(
                            "127.0.0.1", port, "PUT", "/kv/" + "x" * 64,
                            b"v",
                        )
                        assert status == 400
                    # ...yet valid traffic still round-trips.
                    status, _ = await serve_http.http_call(
                        "127.0.0.1", port, "PUT", "/kv/ok", b"value"
                    )
                    assert status == 200
                    status, payload = await serve_http.http_call(
                        "127.0.0.1", port, "GET", "/kv/ok"
                    )
                    assert status == 200
                    assert payload.startswith(b"value")
            store.close()

        asyncio.run(main())

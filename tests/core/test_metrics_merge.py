"""StoreMetrics.merge: cross-shard operation-counter aggregation."""

from __future__ import annotations

import pytest

from repro import OperationReport, StoreMetrics


def report_for(key: bytes) -> OperationReport:
    return OperationReport(
        op="put", key=key, address=0, cluster=0, fallback_used=False,
        bit_updates=1, words_touched=1, lines_touched=1,
        nvm_latency_ns=1.0, predict_ns=0.0, index_lines=0, retrained=False,
    )


class TestStoreMetricsMerge:
    def test_counters_sum(self):
        a = StoreMetrics(puts=3, gets=1, deletes=2, updates=1, retrains=1,
                         fallbacks=4)
        b = StoreMetrics(puts=5, gets=2, deletes=0, updates=3, retrains=0,
                         fallbacks=1)
        merged = StoreMetrics.merge([a, b])
        assert (merged.puts, merged.gets, merged.deletes) == (8, 3, 2)
        assert (merged.updates, merged.retrains, merged.fallbacks) == (4, 1, 5)

    def test_reports_concatenate_in_part_order(self):
        a = StoreMetrics(keep_reports=True)
        b = StoreMetrics(keep_reports=True)
        a.record(report_for(b"a1"))
        b.record(report_for(b"b1"))
        a.record(report_for(b"a2"))
        merged = StoreMetrics.merge([a, b])
        assert [r.key for r in merged.reports] == [b"a1", b"a2", b"b1"]
        assert merged.keep_reports

    def test_keep_reports_any(self):
        assert not StoreMetrics.merge([StoreMetrics(), StoreMetrics()]).keep_reports
        assert StoreMetrics.merge(
            [StoreMetrics(), StoreMetrics(keep_reports=True)]
        ).keep_reports

    def test_empty_part_contributes_nothing(self):
        # A shard with zero traffic merges as the identity element.
        busy = StoreMetrics(puts=4, deletes=1, keep_reports=True)
        busy.record(report_for(b"k"))
        merged = StoreMetrics.merge([busy, StoreMetrics()])
        assert (merged.puts, merged.deletes) == (4, 1)
        assert [r.key for r in merged.reports] == [b"k"]

    def test_single_part_round_trips(self):
        a = StoreMetrics(puts=2, gets=3, keep_reports=True)
        a.record(report_for(b"only"))
        merged = StoreMetrics.merge([a])
        assert (merged.puts, merged.gets) == (2, 3)
        assert [r.key for r in merged.reports] == [b"only"]

    def test_merge_is_a_snapshot(self):
        a = StoreMetrics(puts=1)
        merged = StoreMetrics.merge([a])
        a.puts += 1
        assert merged.puts == 1

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            StoreMetrics.merge([])

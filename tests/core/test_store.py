"""Integration tests for the PNW store (Algorithms 1-3, recovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.errors import DuplicateKeyError, KeyNotFoundError, PoolExhaustedError
from tests.conftest import clustered_values


class TestBasicOperations:
    def test_put_get_roundtrip(self, warm_store):
        report = warm_store.put(b"k1", b"hello world")
        value = warm_store.get(b"k1")
        assert value[: len(b"hello world")] == b"hello world"
        assert report.op == "put"
        assert len(warm_store) == 1

    def test_get_missing_raises(self, warm_store):
        with pytest.raises(KeyNotFoundError):
            warm_store.get(b"ghost")

    def test_delete_frees_address(self, warm_store):
        report = warm_store.put(b"k1", b"payload")
        free_before = warm_store.pool.total_free
        warm_store.delete(b"k1")
        assert warm_store.pool.total_free == free_before + 1
        assert b"k1" not in warm_store
        assert len(warm_store) == 0
        assert report.address in warm_store.pool

    def test_delete_missing_raises(self, warm_store):
        with pytest.raises(KeyNotFoundError):
            warm_store.delete(b"ghost")

    def test_put_existing_key_is_update(self, warm_store):
        warm_store.put(b"k1", b"old value")
        warm_store.put(b"k1", b"new value")
        assert warm_store.get(b"k1")[: len(b"new value")] == b"new value"
        assert len(warm_store) == 1
        assert warm_store.metrics.updates == 1

    def test_put_unique_rejects_duplicates(self, warm_store):
        warm_store.put_unique(b"k1", b"v")
        with pytest.raises(DuplicateKeyError):
            warm_store.put_unique(b"k1", b"w")

    def test_oversized_value_rejected(self, warm_store):
        huge = bytes(warm_store.config.value_bytes + 1)
        with pytest.raises(ValueError):
            warm_store.put(b"k1", huge)

    def test_value_as_ndarray(self, warm_store, rng):
        value = rng.integers(0, 256, warm_store.config.value_bytes, dtype=np.uint8)
        warm_store.put(b"arr", value)
        assert warm_store.get(b"arr") == value.tobytes()

    def test_capacity_exhaustion(self, rng):
        config = PNWConfig(num_buckets=4, value_bytes=8, n_clusters=1, seed=0)
        store = PNWStore(config)
        for i in range(4):
            store.put(f"k{i}".encode(), b"x")
        with pytest.raises(PoolExhaustedError):
            store.put(b"overflow", b"x")


class TestSteering:
    def test_put_reuses_similar_content_location(self, small_config, rng):
        """A value identical to warm-up content costs (near) zero flips."""
        old = clustered_values(rng, small_config.num_buckets,
                               small_config.value_bytes, flip_rate=0.0)
        store = PNWStore(small_config)
        store.warm_up(old)
        # Write a value byte-identical to an existing bucket's value part.
        report = store.put(b"\x00" * 8, old[17].tobytes())
        # The key prefix of warm data is zero and our key is zero, so a
        # perfect match exists; probing must find one of the duplicates.
        assert report.bit_updates == 0

    def test_steering_beats_random_placement(self, rng):
        config = PNWConfig(num_buckets=256, value_bytes=24, n_clusters=4,
                           seed=1, n_init=1)
        old = clustered_values(rng, 256, 24)
        new = clustered_values(np.random.default_rng(99), 400, 24)
        store = PNWStore(config)
        store.warm_up(old)
        steered = 0
        for i, item in enumerate(new):
            report = store.put(f"s{i}".encode(), item.tobytes())
            steered += report.bit_updates
            store.delete(f"s{i}".encode())
        # Random in-place replacement baseline on the same data.
        from repro.bench import run_scheme_stream

        random_metrics = run_scheme_stream(None, old, new)
        assert steered / len(new) < 0.8 * (
            random_metrics.bit_updates / random_metrics.items
        )

    def test_fallback_used_when_cluster_empty(self, rng):
        config = PNWConfig(num_buckets=8, value_bytes=24, n_clusters=4, seed=0,
                           n_init=1, auto_train_fraction=0.0)
        old = clustered_values(rng, 8, 24)
        store = PNWStore(config)
        store.warm_up(old)
        # Fill almost the whole zone; eventually predicted clusters empty out.
        for i in range(8):
            store.put(f"k{i}".encode(), clustered_values(rng, 1, 24)[0].tobytes())
        assert store.metrics.puts == 8
        # With every address taken, at least one put must have fallen back
        # unless every prediction happened to match a non-empty cluster.
        assert store.pool.total_free == 0


class TestUpdateModes:
    def test_endurance_update_is_delete_plus_put(self, warm_store, rng):
        warm_store.put(b"k1", b"first")
        value = rng.integers(0, 256, 24, dtype=np.uint8)
        warm_store.update(b"k1", value)
        # Endurance mode re-steers through a DELETE + PUT; the address is
        # whatever the model chose (possibly the same one), but the delete
        # must have happened and the data must be the new value.
        assert warm_store.metrics.deletes == 1
        assert warm_store.metrics.puts == 2
        assert warm_store.get(b"k1") == value.tobytes()
        assert len(warm_store) == 1

    def test_latency_update_stays_in_place(self, rng):
        config = PNWConfig(num_buckets=32, value_bytes=24, n_clusters=2,
                           seed=0, update_mode="latency", n_init=1)
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 32, 24))
        store.put(b"k1", b"first")
        addr_before = store.index.get(b"k1".ljust(8, b"\x00"))
        report = store.update(b"k1", b"second")
        assert report.op == "update"
        assert store.index.get(b"k1".ljust(8, b"\x00")) == addr_before
        assert store.metrics.deletes == 0

    def test_update_missing_key_raises(self, warm_store):
        with pytest.raises(KeyNotFoundError):
            warm_store.update(b"ghost", b"v")


class TestRetraining:
    def test_load_factor_triggers_retrain(self, rng):
        config = PNWConfig(
            num_buckets=64, value_bytes=24, n_clusters=2, seed=0, n_init=1,
            load_factor=0.5, retrain_check_interval=1, auto_train_fraction=0.0,
        )
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 64, 24))
        retrains_before = store.metrics.retrains
        for i in range(40):
            store.put(f"k{i}".encode(), b"v")
        assert store.metrics.retrains > retrains_before

    def test_retrain_preserves_live_data(self, warm_store, rng):
        for i in range(10):
            warm_store.put(f"k{i}".encode(), f"value-{i}".encode())
        warm_store.retrain()
        for i in range(10):
            assert warm_store.get(f"k{i}".encode()).startswith(
                f"value-{i}".encode()
            )

    def test_retrain_refiles_free_addresses(self, warm_store):
        warm_store.retrain()
        assert warm_store.pool.total_free == warm_store.config.num_buckets

    def test_first_training_is_automatic(self, rng):
        config = PNWConfig(
            num_buckets=64, value_bytes=24, n_clusters=2, seed=0, n_init=1,
            auto_train_fraction=0.1, retrain_check_interval=1,
        )
        store = PNWStore(config)  # cold start, no warm_up
        assert not store.manager.is_trained
        for i in range(12):
            store.put(f"k{i}".encode(), bytes([i]) * 8)
        assert store.manager.is_trained


class TestRecovery:
    def test_crash_and_recover_restores_index(self, warm_store, rng):
        payloads = {}
        for i in range(12):
            key = f"key-{i}".encode()
            value = rng.integers(0, 256, 24, dtype=np.uint8).tobytes()
            warm_store.put(key, value)
            payloads[key] = value
        warm_store.crash()
        assert len(warm_store) == 0
        warm_store.recover()
        assert len(warm_store) == 12
        for key, value in payloads.items():
            assert warm_store.get(key) == value

    def test_recover_rebuilds_model_and_pool(self, warm_store):
        warm_store.put(b"live", b"v")
        warm_store.crash()
        warm_store.recover()
        assert warm_store.manager.is_trained
        assert (
            warm_store.pool.total_free
            == warm_store.config.num_buckets - 1
        )
        live_addr = warm_store.index.get(b"live".ljust(8, b"\x00"))
        assert live_addr not in warm_store.pool

    def test_nvm_index_survives_crash(self, rng):
        config = PNWConfig(num_buckets=32, value_bytes=24, n_clusters=2,
                           seed=0, n_init=1, index_placement="nvm")
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 32, 24))
        store.put(b"persist", b"v")
        store.crash()
        # The path-hashing index lives on NVM and is still queryable.
        assert store.index.get(b"persist".ljust(8, b"\x00")) >= 0
        store.recover()
        assert store.get(b"persist").startswith(b"v")


class TestAccounting:
    def test_reports_collected_when_enabled(self, warm_store):
        warm_store.metrics.keep_reports = True
        warm_store.put(b"k", b"v")
        assert len(warm_store.metrics.reports) == 1
        assert warm_store.metrics.reports[0].op == "put"

    def test_nvm_index_lines_counted(self, rng):
        config = PNWConfig(num_buckets=32, value_bytes=24, n_clusters=2,
                           seed=0, n_init=1, index_placement="nvm")
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 32, 24))
        report = store.put(b"k", b"v")
        assert report.index_lines > 0

    def test_dram_index_lines_zero(self, warm_store):
        report = warm_store.put(b"k", b"v")
        assert report.index_lines == 0

    def test_total_latency_combines_model_and_nvm(self, warm_store):
        report = warm_store.put(b"k", bytes(24))
        assert report.total_latency_ns == pytest.approx(
            report.nvm_latency_ns + report.predict_ns
        )

    def test_validity_bitmap_tracks_liveness(self, warm_store):
        report = warm_store.put(b"k", b"v")
        assert warm_store._is_valid(report.address)
        warm_store.delete(b"k")
        assert not warm_store._is_valid(report.address)

"""Probe-engine pins: cache/device synchrony and old-pool oracle.

The engine replaced the pool's ``list[list[int]]`` free lists and
per-candidate scorer callbacks with array-backed FIFOs plus a DRAM
content cache.  Two things must hold forever:

* the cache is a byte-exact mirror of the device for every free address,
  across any interleaving of rebuild / release / pop / crash-recover;
* the pop *sequence* (addresses and free-list order) is identical to the
  pre-engine list-based implementation scoring candidates through the
  device one pop at a time.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PNWConfig, PNWStore
from repro.core import DynamicAddressPool
from repro.errors import PoolExhaustedError

from tests.conftest import clustered_values


class ListPoolOracle:
    """The pre-engine pool: plain Python lists, scorer callbacks, device
    gathers per pop.  Vendored as the behavioral oracle."""

    def __init__(self, n_clusters: int, num_addresses: int) -> None:
        self.n_clusters = n_clusters
        self.free_lists: list[list[int]] = [[] for _ in range(n_clusters)]
        self.available = np.zeros(num_addresses, dtype=bool)

    def rebuild(self, labels, free_addresses) -> None:
        for free_list in self.free_lists:
            free_list.clear()
        self.available[:] = False
        for address, label in zip(free_addresses, labels):
            self.free_lists[label].append(int(address))
            self.available[address] = True

    def release(self, address: int, cluster: int) -> None:
        self.free_lists[cluster].append(int(address))
        self.available[address] = True

    def get_best(self, cluster, scorer, probe_limit, fallback_order=None):
        candidates = (
            [cluster] + [c for c in range(self.n_clusters) if c != cluster]
            if fallback_order is None
            else [int(c) for c in fallback_order]
        )
        for candidate in candidates:
            free_list = self.free_lists[candidate]
            if not free_list:
                continue
            if probe_limit == 0:
                best = 0
            else:
                probes = free_list if probe_limit < 0 else free_list[:probe_limit]
                best = int(np.argmin(scorer(np.asarray(probes, dtype=np.int64))))
            address = free_list.pop(best)
            self.available[address] = False
            return address
        raise PoolExhaustedError("oracle exhausted")


def reader_over(contents: np.ndarray):
    def reader(addresses, out):
        np.take(contents, addresses, axis=0, out=out)

    return reader


def assert_cache_synced(pool: DynamicAddressPool, contents: np.ndarray) -> None:
    """Every cluster's cache rows must equal the device bytes of its
    addresses, row for row, and cover exactly the free addresses."""
    seen: list[int] = []
    for cluster in range(pool.n_clusters):
        addresses, rows = pool.cache_rows(cluster)
        assert np.array_equal(rows, contents[addresses])
        seen.extend(addresses.tolist())
    assert sorted(seen) == pool.free_addresses().tolist()


class TestOracleEquivalence:
    """Randomized drives: the engine's pop sequence must match the old
    list-based implementation op for op."""

    N_ADDRESSES = 48
    WIDTH = 16
    N_CLUSTERS = 4

    def drive(self, seed: int, probe_limit: int) -> None:
        rng = np.random.default_rng(seed)
        contents = rng.integers(
            0, 256, (self.N_ADDRESSES, self.WIDTH), dtype=np.uint8
        )
        pool = DynamicAddressPool(
            self.N_CLUSTERS,
            self.N_ADDRESSES,
            content_reader=reader_over(contents),
            row_bytes=self.WIDTH,
        )
        oracle = ListPoolOracle(self.N_CLUSTERS, self.N_ADDRESSES)
        labels = rng.integers(0, self.N_CLUSTERS, self.N_ADDRESSES)
        pool.rebuild(labels, np.arange(self.N_ADDRESSES))
        oracle.rebuild(labels, np.arange(self.N_ADDRESSES))

        held: list[int] = []
        for step in range(120):
            op = rng.random()
            if op < 0.55 and pool.total_free:
                # Single or batched pops, grouped clusters included.
                n = int(rng.integers(1, min(6, pool.total_free) + 1))
                clusters = rng.integers(0, self.N_CLUSTERS, n)
                payloads = rng.integers(0, 256, (n, self.WIDTH), dtype=np.uint8)
                orders = np.array(
                    [rng.permutation(self.N_CLUSTERS) for _ in range(n)]
                )
                expected = [
                    oracle.get_best(
                        int(clusters[i]),
                        lambda addrs, i=i: np.unpackbits(
                            contents[addrs] ^ payloads[i], axis=1
                        ).sum(axis=1),
                        probe_limit,
                        orders[i],
                    )
                    for i in range(n)
                ]
                got, _ = pool.get_best_many(clusters, payloads, probe_limit, orders)
                assert got.tolist() == expected
                held.extend(expected)
            elif op < 0.8 and held:
                address = held.pop(int(rng.integers(0, len(held))))
                # The device wrote this bucket while it was live.
                contents[address] = rng.integers(0, 256, self.WIDTH, dtype=np.uint8)
                cluster = int(rng.integers(0, self.N_CLUSTERS))
                pool.release(address, cluster)
                oracle.release(address, cluster)
            elif op < 0.9:
                free = pool.free_addresses()
                labels = rng.integers(0, self.N_CLUSTERS, free.size)
                pool.rebuild(labels, free)
                oracle.rebuild(labels, free)
            assert pool._free_lists == oracle.free_lists
            assert np.array_equal(pool._available, oracle.available)
            assert_cache_synced(pool, contents)

    @pytest.mark.parametrize("probe_limit", [-1, 4, 0])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_drive_matches_oracle(self, seed, probe_limit):
        self.drive(seed, probe_limit)


class TestCacheSyncProperty:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["pop", "release", "rebuild"]),
                      st.integers(0, 10 ** 6)),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_cache_mirrors_device(self, ops):
        """Any interleaving of pops, releases (after the device rewrote
        the bucket), and rebuilds keeps cache == device for every free
        address."""
        rng = np.random.default_rng(99)
        contents = rng.integers(0, 256, (24, 8), dtype=np.uint8)
        pool = DynamicAddressPool(
            3, 24, content_reader=reader_over(contents), row_bytes=8
        )
        pool.rebuild(np.arange(24) % 3, np.arange(24))
        held: list[int] = []
        for op, salt in ops:
            r = np.random.default_rng(salt)
            if op == "pop" and pool.total_free:
                payload = r.integers(0, 256, 8, dtype=np.uint8)
                held.append(pool.get_best(int(r.integers(0, 3)), payload, -1))
            elif op == "release" and held:
                address = held.pop()
                contents[address] = r.integers(0, 256, 8, dtype=np.uint8)
                pool.release(address, int(r.integers(0, 3)))
            elif op == "rebuild":
                free = pool.free_addresses()
                pool.rebuild(r.integers(0, 3, free.size), free)
            assert_cache_synced(pool, contents)


class TestStoreCacheSync:
    """The store upholds the cache contract end to end: across puts,
    deletes, updates, retrains, and crash-recovery, the pool's cached
    rows always equal the data zone's bytes."""

    @staticmethod
    def assert_store_synced(store: PNWStore) -> None:
        assert store.pool.has_content_cache
        assert_cache_synced(store.pool, np.asarray(store.nvm.contents))

    def test_put_delete_update_interleavings(self, rng):
        config = PNWConfig(
            num_buckets=96, value_bytes=8, n_clusters=3, seed=3,
            n_init=1, max_iter=20, retrain_check_interval=16,
            probe_limit=-1,
        )
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 96, 8))
        self.assert_store_synced(store)
        live: list[bytes] = []
        op_rng = np.random.default_rng(17)
        for step in range(8):
            n = int(op_rng.integers(2, 8))
            fresh = [
                (b"k%d-%d" % (step, j),
                 op_rng.integers(0, 256, 8, dtype=np.uint8).tobytes())
                for j in range(n)
            ]
            store.put_many(fresh)
            live.extend(key for key, _ in fresh)
            self.assert_store_synced(store)
            if len(live) > 4:
                victims = [live.pop(0) for _ in range(2)]
                store.delete_many(victims)
                self.assert_store_synced(store)
            if live:
                store.update_many(
                    [(live[0], op_rng.integers(0, 256, 8, dtype=np.uint8).tobytes())]
                )
                self.assert_store_synced(store)
        store.retrain()
        self.assert_store_synced(store)

    def test_crash_recover_resyncs(self, rng):
        config = PNWConfig(
            num_buckets=64, value_bytes=8, n_clusters=3, seed=5,
            n_init=1, max_iter=20, probe_limit=-1,
        )
        store = PNWStore(config)
        store.warm_up(clustered_values(rng, 64, 8))
        store.put_many(
            [(b"key%d" % i, b"v%d" % i) for i in range(20)]
        )
        store.crash()
        store.recover()
        self.assert_store_synced(store)
        # And the recovered pool keeps probing correctly.
        store.put_many([(b"after%d" % i, b"w%d" % i) for i in range(8)])
        self.assert_store_synced(store)

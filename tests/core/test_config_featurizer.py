"""Tests for PNWConfig validation and the featurizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig
from repro.core.featurizer import BitFeaturizer, ByteFeaturizer, make_featurizer
from repro.errors import ConfigError, NotFittedError


class TestConfig:
    def test_defaults_valid(self):
        config = PNWConfig(num_buckets=64, value_bytes=24)
        assert config.bucket_bytes == 32
        assert config.resolved_featurizer == "bit"

    def test_auto_featurizer_switches_on_size(self):
        small = PNWConfig(num_buckets=4, value_bytes=56)
        large = PNWConfig(num_buckets=4, value_bytes=1016)
        assert small.resolved_featurizer == "bit"
        assert large.resolved_featurizer == "byte"

    def test_explicit_featurizer_respected(self):
        config = PNWConfig(num_buckets=4, value_bytes=1016, featurizer="bit")
        assert config.resolved_featurizer == "bit"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_buckets": 0, "value_bytes": 8},
            {"num_buckets": 4, "value_bytes": 0},
            {"num_buckets": 4, "value_bytes": 8, "key_bytes": 0},
            {"num_buckets": 4, "value_bytes": 8, "n_clusters": 0},
            {"num_buckets": 4, "value_bytes": 8, "index_placement": "disk"},
            {"num_buckets": 4, "value_bytes": 8, "featurizer": "magic"},
            {"num_buckets": 4, "value_bytes": 8, "update_mode": "fast"},
            {"num_buckets": 4, "value_bytes": 8, "load_factor": 0.0},
            {"num_buckets": 4, "value_bytes": 8, "load_factor": 1.5},
            {"num_buckets": 4, "value_bytes": 8, "auto_train_fraction": -0.1},
            {"num_buckets": 4, "value_bytes": 7},  # bucket not word aligned
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            PNWConfig(**kwargs)

    def test_frozen(self):
        config = PNWConfig(num_buckets=4, value_bytes=8)
        with pytest.raises(AttributeError):
            config.num_buckets = 8


class TestFeaturizers:
    def test_bit_features_are_unpacked_bits(self, rng):
        rows = rng.integers(0, 256, (5, 4), dtype=np.uint8)
        feats = BitFeaturizer().fit_transform(rows)
        assert feats.shape == (5, 32)
        assert set(np.unique(feats)) <= {0.0, 1.0}

    def test_bit_euclidean_equals_hamming(self, rng):
        from repro._bitops import hamming_distance

        rows = rng.integers(0, 256, (2, 8), dtype=np.uint8)
        feats = BitFeaturizer().fit_transform(rows)
        squared = float(((feats[0] - feats[1]) ** 2).sum())
        assert squared == hamming_distance(rows[0], rows[1])

    def test_byte_features_are_byte_values(self, rng):
        rows = rng.integers(0, 256, (3, 6), dtype=np.uint8)
        feats = ByteFeaturizer().fit_transform(rows)
        assert feats.shape == (3, 6)
        assert np.array_equal(feats, rows.astype(np.float64))

    def test_pca_composition_reduces_dims(self, rng):
        rows = rng.integers(0, 256, (50, 32), dtype=np.uint8)
        feats = ByteFeaturizer(pca_components=5).fit_transform(rows)
        assert feats.shape == (50, 5)

    def test_transform_one_matches_batch(self, rng):
        rows = rng.integers(0, 256, (10, 16), dtype=np.uint8)
        featurizer = BitFeaturizer().fit(rows)
        assert np.array_equal(
            featurizer.transform_one(rows[3]), featurizer.transform(rows)[3]
        )

    def test_unfitted_raises(self, rng):
        with pytest.raises(NotFittedError):
            BitFeaturizer().transform(rng.integers(0, 256, (2, 4), dtype=np.uint8))

    def test_factory(self):
        assert isinstance(make_featurizer("bit"), BitFeaturizer)
        assert isinstance(make_featurizer("byte"), ByteFeaturizer)
        with pytest.raises(ValueError):
            make_featurizer("nope")

"""Crash recovery around the batch write pipeline.

``recover()`` rebuilds the DRAM index, model, and pool purely from NVM
state (data zone + persistent validity bitmap).  The batch pipeline
orders a chunk's data writes *before* its flag-bit persistence, so a
crash inside ``put_many`` can only lose whole not-yet-flagged
operations — recovery always lands on a consistent prefix, never on a
bucket whose flag is set but whose data never arrived.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PNWConfig, PNWStore
from repro.nvm.device import SimulatedNVM
from tests.conftest import clustered_values


def make_store(**overrides) -> PNWStore:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
    )
    base.update(overrides)
    config = PNWConfig(**base)
    rng = np.random.default_rng(42)
    store = PNWStore(config)
    store.warm_up(clustered_values(rng, config.num_buckets, config.value_bytes))
    return store


def batch_of(rng: np.random.Generator, n: int,
             prefix: str = "b") -> list[tuple[bytes, bytes]]:
    values = clustered_values(rng, n, 24, flip_rate=0.05)
    return [(f"{prefix}{i}".encode(), values[i].tobytes()) for i in range(n)]


class TestRecoveryAfterBatchPuts:
    def test_recover_rebuilds_index_model_pool(self):
        store = make_store()
        pairs = batch_of(np.random.default_rng(1), 100)
        store.put_many(pairs)
        expected = {key: store.get(key) for key, _ in pairs}
        addresses = {
            key: store.index.peek(key.ljust(8, b"\x00")) for key, _ in pairs
        }
        store.crash()
        assert len(store) == 0
        store.recover()
        assert len(store) == 100
        for key, value in expected.items():
            assert store.get(key) == value
        assert store.manager.is_trained
        assert store.pool.total_free == store.config.num_buckets - 100
        for address in addresses.values():
            assert address not in store.pool

    def test_recover_after_batch_updates_and_deletes(self):
        store = make_store()
        rng = np.random.default_rng(2)
        pairs = batch_of(rng, 80)
        store.put_many(pairs)
        new_values = clustered_values(rng, 40, 24, flip_rate=0.1)
        store.update_many(
            [(pairs[i][0], new_values[i].tobytes()) for i in range(40)]
        )
        store.delete_many([key for key, _ in pairs[60:]])
        expected = {key: store.get(key) for key, _ in pairs[:60]}
        store.crash()
        store.recover()
        assert len(store) == 60
        for key, value in expected.items():
            assert store.get(key) == value
        for key, _ in pairs[60:]:
            assert key not in store

    def test_recovered_store_keeps_serving_batches(self):
        store = make_store()
        store.put_many(batch_of(np.random.default_rng(3), 50))
        store.crash()
        store.recover()
        more = batch_of(np.random.default_rng(4), 50, prefix="post")
        store.put_many(more)
        assert len(store) == 100
        for key, value in more:
            assert store.get(key) == value


class TestMidBatchCrash:
    def test_interrupted_batch_loses_only_the_torn_chunk(self, monkeypatch):
        """A crash during the multi-row flush leaves no flags set for the
        chunk, so recovery resurrects none of its keys."""
        store = make_store()
        committed = batch_of(np.random.default_rng(5), 30, prefix="ok")
        store.put_many(committed)

        original = SimulatedNVM.write_many

        def torn_write_many(self, addresses, rows, scheme=None):
            half = len(addresses) // 2
            original(self, addresses[:half], rows[:half], scheme)
            raise RuntimeError("simulated power failure mid-flush")

        monkeypatch.setattr(SimulatedNVM, "write_many", torn_write_many)
        torn = batch_of(np.random.default_rng(6), 20, prefix="torn")
        with pytest.raises(RuntimeError, match="power failure"):
            store.put_many(torn)
        monkeypatch.setattr(SimulatedNVM, "write_many", original)

        store.crash()
        store.recover()
        assert len(store) == 30
        for key, value in committed:
            assert store.get(key) == value
        for key, _ in torn:
            assert key not in store
        # The torn chunk's addresses were never flagged, so they are all
        # back in the pool and immediately reusable.
        assert store.pool.total_free == store.config.num_buckets - 30
        store.put_many(torn)
        for key, value in torn:
            assert store.get(key) == value

    def test_partial_flag_bitmap(self):
        """Flags that never persisted (crash between flag-word writes)
        lose exactly their operations and nothing else."""
        store = make_store()
        pairs = batch_of(np.random.default_rng(7), 40)
        reports = store.put_many(pairs)
        # Simulate a torn flag flush: the last 15 ops' validity bits never
        # reached NVM.
        for report in reports[25:]:
            store._set_valid(report.address, False)
        store.crash()
        store.recover()
        assert len(store) == 25
        for key, value in pairs[:25]:
            assert store.get(key) == value
        for key, _ in pairs[25:]:
            assert key not in store
        # Unflagged addresses were refiled as free under their contents'
        # clusters.
        for report in reports[25:]:
            assert report.address in store.pool

    def test_recovery_equivalent_to_sequential_crash(self):
        """After identical op streams and a crash, batch-built and
        sequentially-built stores recover to identical state."""
        a = make_store()
        b = make_store()
        pairs = batch_of(np.random.default_rng(8), 60)
        for key, value in pairs:
            a.put(key, value)
        b.put_many(pairs)
        for store in (a, b):
            store.crash()
            store.recover()
        assert np.array_equal(a.nvm.snapshot(), b.nvm.snapshot())
        assert dict(a.index.items()) == dict(b.index.items())
        assert a.pool._free_lists == b.pool._free_lists
        assert len(a) == len(b) == 60


class TestRecoveryGuards:
    def test_recover_requires_persistent_flags(self):
        config = PNWConfig(
            num_buckets=32, value_bytes=24, key_bytes=8, n_clusters=2,
            seed=0, n_init=1, persist_flags=False,
        )
        store = PNWStore(config)
        store.put_many([(b"k", b"v")])
        store.crash()
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="persist_flags"):
            store.recover()

"""Incremental model refresh: MiniBatchKMeans.partial_fit in the manager.

With ``refresh_mode="incremental"`` the load-factor policy's retrains
(§V-C) nudge the existing centroids with one deterministic mini-batch
pass instead of a full Lloyd refit: ``n_clusters`` never changes, the
featurizer stays frozen, and the pool rebuild that follows keeps one
consistent free list per cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MiniBatchKMeans, PNWConfig, PNWStore
from repro.core.model_manager import ModelManager
from repro.errors import ConfigError, NotFittedError
from tests.conftest import clustered_values


def make_config(**overrides) -> PNWConfig:
    base = dict(
        num_buckets=256,
        value_bytes=24,
        key_bytes=8,
        n_clusters=4,
        seed=7,
        n_init=1,
        max_iter=20,
    )
    base.update(overrides)
    return PNWConfig(**base)


class TestWarmStart:
    def test_seeds_centroids(self):
        centers = np.arange(12, dtype=np.float64).reshape(4, 3)
        model = MiniBatchKMeans(4, seed=0).warm_start(centers)
        assert np.array_equal(model.cluster_centers_, centers)
        labels = model.predict(centers)
        assert np.array_equal(labels, np.arange(4))

    def test_partial_fit_continues_from_warm_start(self):
        centers = np.zeros((2, 3))
        centers[1] = 10.0
        model = MiniBatchKMeans(2, seed=0).warm_start(centers)
        model.partial_fit(np.array([[1.0, 1.0, 1.0]]))
        # One sample assigned to centroid 0 with one pre-seen sample:
        # eta = 1/2, so the centroid moves halfway toward it.
        assert np.allclose(model.cluster_centers_[0], [0.5, 0.5, 0.5])
        assert np.allclose(model.cluster_centers_[1], 10.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="warm-start centers"):
            MiniBatchKMeans(3, seed=0).warm_start(np.zeros((2, 4)))
        with pytest.raises(ValueError, match="counts shape"):
            MiniBatchKMeans(2, seed=0).warm_start(
                np.zeros((2, 4)), counts=np.ones(3)
            )


class TestManagerRefresh:
    def test_first_train_is_always_full(self):
        config = make_config(refresh_mode="incremental")
        manager = ModelManager(config)
        rng = np.random.default_rng(0)
        manager.train(clustered_values(rng, 256, 32))
        assert manager.train_count == 1
        assert manager.refresh_count == 0
        assert manager.model is not None

    def test_second_train_routes_through_refresh(self):
        config = make_config(refresh_mode="incremental")
        manager = ModelManager(config)
        rng = np.random.default_rng(0)
        rows = clustered_values(rng, 256, 32)
        manager.train(rows)
        featurizer = manager.featurizer
        model = manager.model
        version = manager.model_version
        manager.train(clustered_values(rng, 256, 32))
        assert manager.train_count == 1  # no second full fit
        assert manager.refresh_count == 1
        assert manager.model is model  # same estimator, nudged in place
        assert manager.featurizer is featurizer  # frozen feature space
        assert manager.model_version == version + 1

    def test_refresh_keeps_n_clusters(self):
        config = make_config(refresh_mode="incremental")
        manager = ModelManager(config)
        rng = np.random.default_rng(1)
        manager.train(clustered_values(rng, 256, 32))
        k = manager.model.n_clusters
        for _ in range(3):
            manager.train(clustered_values(rng, 256, 32))
        assert manager.model.n_clusters == k
        labels = manager.labels_for(clustered_values(rng, 64, 32))
        assert labels.min() >= 0 and labels.max() < k

    def test_refresh_moves_centroids_toward_new_distribution(self):
        config = make_config(refresh_mode="incremental", n_clusters=2)
        manager = ModelManager(config)
        low = np.zeros((64, 32), dtype=np.uint8)
        high = np.full((64, 32), 255, dtype=np.uint8)
        manager.train(np.vstack([low, high]))
        before = manager.model.cluster_centers_.copy()
        # Drift the low population upward (0x03 = two set bits per byte):
        # its centroid must follow while the high one stays put.
        manager.train(np.full((128, 32), 0x03, dtype=np.uint8))
        after = manager.model.cluster_centers_
        assert not np.array_equal(before, after)
        assert after.mean() > before.mean()

    def test_refresh_requires_fitted_model(self):
        manager = ModelManager(make_config(refresh_mode="incremental"))
        with pytest.raises(NotFittedError):
            manager.refresh(np.zeros((8, 32), dtype=np.uint8))

    def test_full_mode_unchanged(self):
        manager = ModelManager(make_config(refresh_mode="full"))
        rng = np.random.default_rng(0)
        manager.train(clustered_values(rng, 256, 32))
        manager.train(clustered_values(rng, 256, 32))
        assert manager.train_count == 2
        assert manager.refresh_count == 0

    def test_refresh_is_deterministic(self):
        managers = []
        for _ in range(2):
            manager = ModelManager(make_config(refresh_mode="incremental"))
            rng = np.random.default_rng(3)
            manager.train(clustered_values(rng, 256, 32))
            manager.train(clustered_values(rng, 256, 32))
            managers.append(manager)
        assert np.array_equal(
            managers[0].model.cluster_centers_,
            managers[1].model.cluster_centers_,
        )


class TestStoreWithIncrementalRefresh:
    def build(self) -> PNWStore:
        config = make_config(
            refresh_mode="incremental",
            load_factor=0.5,
            retrain_check_interval=16,
        )
        store = PNWStore(config)
        rng = np.random.default_rng(42)
        store.warm_up(clustered_values(rng, 256, 24))
        return store

    def test_policy_retrains_keep_pools_consistent(self):
        store = self.build()
        rng = np.random.default_rng(5)
        values = clustered_values(rng, 180, 24)
        for i in range(180):
            store.put(f"k{i}".encode(), values[i].tobytes())
        manager = store.manager
        assert store.metrics.retrains > 1  # policy fired past warm-up
        assert manager.train_count == 1  # only warm-up was a full fit
        assert manager.refresh_count == store.metrics.retrains - 1
        # Pool consistency: one free list per (unchanged) cluster, and
        # every address is either live or pooled.
        assert store.pool.n_clusters == manager.model.n_clusters
        assert manager.model.n_clusters == store.config.n_clusters
        assert store.pool.total_free + len(store) == store.config.num_buckets
        for cluster, size in enumerate(store.pool.cluster_sizes()):
            assert size >= 0
        # Refreshed model still predicts in range for steering
        # (bucket rows are key_bytes + value_bytes = 32 wide).
        labels = manager.labels_for(clustered_values(rng, 32, 32))
        assert labels.max() < manager.model.n_clusters

    def test_round_trip_survives_refresh(self):
        store = self.build()
        rng = np.random.default_rng(6)
        values = clustered_values(rng, 170, 24)
        for i in range(170):
            store.put(f"k{i}".encode(), values[i].tobytes())
        assert store.manager.refresh_count > 0
        for i in range(0, 170, 17):
            assert store.get(f"k{i}".encode()) == values[i].tobytes()

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="refresh_mode"):
            make_config(refresh_mode="sometimes")
        with pytest.raises(ConfigError, match="refresh_batch_size"):
            make_config(refresh_batch_size=0)

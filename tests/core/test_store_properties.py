"""Property-based model test: PNWStore behaves like a dict.

Random PUT/UPDATE/DELETE/GET sequences (with steering, recycling, and
retraining happening underneath) must be observationally equivalent to a
plain dictionary, and the pool/index/bitmap invariants must hold after
every sequence.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PNWConfig, PNWStore
from repro.errors import KeyNotFoundError

KEYS = [b"a", b"b", b"c", b"d", b"e"]

operations = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "get", "update"]),
        st.sampled_from(KEYS),
        st.binary(min_size=0, max_size=16),
    ),
    max_size=60,
)


def fresh_store() -> PNWStore:
    config = PNWConfig(
        num_buckets=16, value_bytes=16, key_bytes=8, n_clusters=2,
        seed=0, n_init=1, max_iter=10,
        load_factor=0.8, retrain_check_interval=7,
    )
    return PNWStore(config)


@given(operations)
@settings(max_examples=40, deadline=None)
def test_store_is_observationally_a_dict(ops):
    store = fresh_store()
    reference: dict[bytes, bytes] = {}
    for op, key, value in ops:
        padded = key.ljust(8, b"\x00")
        padded_value = value.ljust(16, b"\x00")
        if op == "put":
            store.put(key, value)
            reference[padded] = padded_value
        elif op == "update":
            if padded in reference:
                store.update(key, value)
                reference[padded] = padded_value
            else:
                with pytest.raises(KeyNotFoundError):
                    store.update(key, value)
        elif op == "delete":
            if padded in reference:
                store.delete(key)
                del reference[padded]
            else:
                with pytest.raises(KeyNotFoundError):
                    store.delete(key)
        else:  # get
            if padded in reference:
                assert store.get(key) == reference[padded]
            else:
                with pytest.raises(KeyNotFoundError):
                    store.get(key)
    # Final state agrees entirely.
    assert len(store) == len(reference)
    for padded, expected in reference.items():
        assert store.get(padded) == expected
    # Structural invariants.
    assert store.pool.total_free + len(store) == store.config.num_buckets
    live_bits = sum(
        store._is_valid(a) for a in range(store.config.num_buckets)
    )
    assert live_bits == len(reference)


@given(operations)
@settings(max_examples=15, deadline=None)
def test_crash_recovery_preserves_any_state(ops):
    """After any op sequence, crash + recover reproduces the live map."""
    store = fresh_store()
    reference: dict[bytes, bytes] = {}
    for op, key, value in ops:
        padded = key.ljust(8, b"\x00")
        if op in ("put", "update"):
            store.put(key, value)
            reference[padded] = value.ljust(16, b"\x00")
        elif op == "delete" and padded in reference:
            store.delete(key)
            del reference[padded]
    store.crash()
    store.recover()
    assert len(store) == len(reference)
    for padded, expected in reference.items():
        assert store.get(padded) == expected
